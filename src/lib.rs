//! # ap1000plus — a reproduction of the AP1000+ PUT/GET architecture
//!
//! This is the facade crate of the workspace reproducing *"AP1000+:
//! Architectural Support of PUT/GET Interface for Parallelizing Compiler"*
//! (Hayashi et al., ASPLOS VI, 1994). It re-exports the component crates:
//!
//! * [`util`] — time, addresses, IDs, errors.
//! * [`sim`] — the discrete-event kernel.
//! * [`mem`] — the MC model (memory, MMU/TLB, flags, communication
//!   registers, DSM map).
//! * [`net`] — T-net / B-net / S-net interconnect models.
//! * [`msc`] — the MSC+ message controller (queues, DMA, stride engine).
//! * [`core`] — the machine emulator and the PUT/GET SPMD interface.
//! * [`trace`] — probe traces and Table-3 statistics.
//! * [`mlsim`] — the trace-driven message-level simulator.
//! * [`apps`] — the paper's workloads (EP, CG, FT, SP, TOMCATV, MatMul,
//!   SCG).
//!
//! See `README.md` for a tour and `examples/quickstart.rs` for first steps.

pub use apcore as core;
pub use apmem as mem;
pub use apmsc as msc;
pub use apnet as net;
pub use apsim as sim;
pub use aptrace as trace;
pub use aputil as util;
pub use mlsim;

pub use apapps as apps;

//! Offline stand-in for the parts of `crossbeam` this workspace uses.
//!
//! The build container has no access to crates.io, so this workspace-local
//! crate shadows the external `crossbeam` dependency. Only
//! [`channel::unbounded`] and the matching sender/receiver types are
//! provided — exactly what `apcore`'s kernel/cell baton protocol needs.
//! `std::sync::mpsc` gives the same FIFO + blocking-receive semantics for
//! the single-consumer channels used there.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded FIFO channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded FIFO channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded multi-producer single-consumer FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_preserved() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || tx2.send(42u32).unwrap());
            h.join().unwrap();
            tx.send(7).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, [7, 42]);
        }
    }
}

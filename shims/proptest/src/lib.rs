//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! The build container has no crates.io access, so this workspace-local
//! crate shadows the external `proptest` dependency with a compatible API:
//! the [`proptest!`] macro (with `#![proptest_config]`), [`Strategy`] with
//! `prop_map`/`prop_flat_map`, integer/float range strategies,
//! [`collection::vec`], [`any`], [`Just`], [`prop_oneof!`], and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! deterministic case number instead of a minimized input), and sampling is
//! derived from a per-test seed so failures are reproducible run to run.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case number `case` of the named test, deterministic
    /// across runs so failures reproduce.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input — skip, don't fail.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// An owned, type-erased strategy (what [`prop_oneof!`] stores).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Boxes a strategy; used by [`prop_oneof!`] so heterogeneous arms unify.
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
}

/// Types with a default "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly centered values; enough for data-generation uses.
        ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 52) as f64)) - 1.0
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Uniform choice among strategy expressions yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}\n  left: {:?}\n right: {:?}",
                file!(), line!(), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}\n  left: {:?}\n right: {:?}\n  {}",
                file!(), line!(), __a, __b, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed at {}:{}\n  both: {:?}",
                file!(),
                line!(),
                __a
            )));
        }
    }};
}

/// Skip the current case without failing when a precondition doesn't hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The test-harness macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(__test_name, __case);
                let ($($arg,)+) = $crate::Strategy::sample(&__strategy, &mut __rng);
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("{} (case {}/{}):\n{}", __test_name, __case, __cfg.cases, msg);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i32..5, f in 0.0..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(0u32..5, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn oneof_maps_and_flat_maps(x in prop_oneof![
            (1u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_flat_map(Just),
        ]) {
            prop_assert!(((2..20).contains(&x) && x % 2 == 0) || (100..110).contains(&x));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_honored(_x in 0u32..10) {
            // Just exercising the config path.
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = crate::collection::vec(0u64..1_000_000, 5..9);
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        assert_eq!(
            Strategy::sample(&strat, &mut a),
            Strategy::sample(&strat, &mut b)
        );
    }
}

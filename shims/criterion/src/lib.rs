//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! Implements `Criterion::bench_function`, benchmark groups with
//! `sample_size`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated-batch loop reporting mean ± stddev per iteration — enough to
//! compare runs of the micro suite, with no statistics machinery or plots.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Wall-clock budget per benchmark (split across samples).
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measurement_time, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }
}

/// A named group of benchmarks (`emulate/EP`, `mlsim_replay/CG`, …).
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.measurement_time, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; the closure calls
/// [`Bencher::iter`] with the code under test.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    mode: Mode,
}

enum Mode {
    /// First call: find an iteration count that takes a measurable time.
    Calibrate { measured: Option<(u64, Duration)> },
    /// Subsequent calls: record one sample of `iters_per_sample` runs.
    Measure,
}

impl Bencher {
    pub fn iter<T, F>(&mut self, mut f: F)
    where
        F: FnMut() -> T,
    {
        match self.mode {
            Mode::Calibrate { ref mut measured } => {
                let mut iters = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let dt = start.elapsed();
                    if dt >= Duration::from_micros(500) || iters >= 1 << 20 {
                        *measured = Some((iters, dt));
                        return;
                    }
                    iters *= 4;
                }
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(f());
                }
                self.samples.push(start.elapsed());
            }
        }
    }
}

fn run_one<F>(name: &str, budget: Duration, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass (also serves as warm-up).
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: Mode::Calibrate { measured: None },
    };
    f(&mut b);
    let (cal_iters, cal_time) = match b.mode {
        Mode::Calibrate { measured: Some(m) } => m,
        _ => {
            println!("{name:<44} (no iter() call)");
            return;
        }
    };
    let per_iter = cal_time.as_secs_f64() / cal_iters as f64;
    let per_sample = budget.as_secs_f64() / sample_size as f64;
    let iters_per_sample = ((per_sample / per_iter) as u64).max(1);

    let mut b = Bencher {
        iters_per_sample,
        samples: Vec::new(),
        mode: Mode::Measure,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }

    let per_iter_ns: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() * 1e9 / iters_per_sample as f64)
        .collect();
    let n = per_iter_ns.len() as f64;
    let mean = per_iter_ns.iter().sum::<f64>() / n;
    let var = per_iter_ns
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / n;
    let sd = var.sqrt();
    println!(
        "{name:<44} time: {} ± {} ({} samples × {} iters)",
        fmt_ns(mean),
        fmt_ns(sd),
        per_iter_ns.len(),
        iters_per_sample
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` invoking each group, skipping work under `cargo test`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; stay quick there.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(10)).sample_size(3);
        let mut hit = false;
        c.bench_function("smoke", |b| {
            hit = true;
            b.iter(|| black_box(2u64 + 2));
        });
        assert!(hit);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("one", |b| b.iter(|| black_box(1)));
        g.finish();
    }
}

//! Offline stand-in for the slice of `rand` 0.8 this workspace uses.
//!
//! Provides [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges. The generator is
//! splitmix64 — not cryptographic, but high-quality and deterministic, which
//! is all the workloads (sparse-matrix generation, test data) require.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here (far
                // below 2^64) and irrelevant for test-data generation.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = SmallRng { state: seed };
            // Discard one output so seed 0 doesn't start at a fixed point.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(12345);
        let mut b = SmallRng::seed_from_u64(12345);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-100i32..100);
            assert!((-100..100).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}

//! Command and packet formats.
//!
//! A [`Command`] is what the processor writes into the MSC+ send queue —
//! eight 4-byte parameter words per PUT/GET (§4.1), which is why issuing
//! one costs only eight store instructions. A [`Packet`] is what the send
//! controller injects into the T-net, and what the receive controller
//! parses on the other side.

use crate::payload::Payload;
use crate::stride::StrideSpec;
use aputil::{CellId, VAddr};

/// Bytes of header on every T-net packet (the 8-word command image plus
/// routing information).
pub const HEADER_BYTES: u64 = 32;

/// Parameters of a PUT operation, as specified in §3.1:
/// `put(node_id, raddr, laddr, size, send_flag, recv_flag, ack)`, with the
/// stride variant folding `size` into the two [`StrideSpec`]s.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PutArgs {
    /// Destination cell.
    pub dst: CellId,
    /// Remote (destination) start address, logical at the destination.
    pub raddr: VAddr,
    /// Local (source) start address.
    pub laddr: VAddr,
    /// How to gather bytes on the sending side.
    pub send_stride: StrideSpec,
    /// How to scatter bytes on the receiving side.
    pub recv_stride: StrideSpec,
    /// Local flag incremented when the send DMA completes (0 = none).
    pub send_flag: VAddr,
    /// Remote flag incremented when the receive DMA completes (0 = none).
    pub recv_flag: VAddr,
    /// Whether the sender wants an acknowledgment (implemented as a
    /// GET-to-null-address round trip, §4.1 "Acknowledge packet").
    pub ack: bool,
}

impl PutArgs {
    /// Payload size in bytes.
    pub fn size(&self) -> u64 {
        self.send_stride.total_bytes()
    }

    /// Validates the argument block the way the MSC+ hardware does before
    /// activating DMA.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: zero-size
    /// transfer, send/recv stride size mismatch, or over-large DMA (the
    /// send DMA controller moves at most 4 MB in one operation, §4.1).
    pub fn validate(&self) -> Result<(), String> {
        validate_pair(self.send_stride, self.recv_stride)
    }

    /// `true` if either side is a non-contiguous stride (this is what
    /// Table 3 counts as `PUTS` rather than `PUT`).
    pub fn is_stride(&self) -> bool {
        !self.send_stride.is_contiguous() || !self.recv_stride.is_contiguous()
    }
}

/// Parameters of a GET operation (§3.1): data flows from the *remote*
/// cell's `raddr` to the *local* `laddr`. `send_flag` is updated on the
/// remote (data-source) cell when its reply has been sent; `recv_flag` is
/// updated locally when the reply lands — "flags on both sending and
/// receiving nodes" (§1.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GetArgs {
    /// Cell owning the data.
    pub src_cell: CellId,
    /// Remote start address (logical at `src_cell`); [`VAddr::NULL`] makes
    /// this a pure acknowledge round-trip that copies nothing.
    pub raddr: VAddr,
    /// Local destination address.
    pub laddr: VAddr,
    /// How the remote side gathers the data.
    pub send_stride: StrideSpec,
    /// How the local side scatters the reply.
    pub recv_stride: StrideSpec,
    /// Flag at the remote cell, incremented when the reply is sent (0 = none).
    pub send_flag: VAddr,
    /// Local flag, incremented when the reply data has landed (0 = none).
    pub recv_flag: VAddr,
}

impl GetArgs {
    /// Payload size in bytes.
    pub fn size(&self) -> u64 {
        self.send_stride.total_bytes()
    }

    /// `true` for the GET-to-address-0 acknowledge idiom.
    pub fn is_ack_probe(&self) -> bool {
        self.raddr.is_null()
    }

    /// Validates stride compatibility (see [`PutArgs::validate`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        validate_pair(self.send_stride, self.recv_stride)
    }

    /// `true` if either side is a non-contiguous stride (Table 3's `GETS`).
    pub fn is_stride(&self) -> bool {
        !self.send_stride.is_contiguous() || !self.recv_stride.is_contiguous()
    }
}

/// Maximum single-DMA transfer: "from 1 word (4 byte) to 1 megaword
/// (4 megabytes)" (§4.1).
pub const MAX_DMA_BYTES: u64 = 4 << 20;

fn validate_pair(send: StrideSpec, recv: StrideSpec) -> Result<(), String> {
    // The specs themselves may be hand-built (the 8-word command image is
    // plain memory), so validate each side before comparing them.
    send.check().map_err(|e| format!("send stride: {e}"))?;
    recv.check().map_err(|e| format!("recv stride: {e}"))?;
    let total = send.total_bytes();
    if total == 0 {
        return Err("zero-length transfer".to_string());
    }
    if total != recv.total_bytes() {
        return Err(format!(
            "send side describes {total} bytes but recv side {}",
            recv.total_bytes()
        ));
    }
    if total > MAX_DMA_BYTES {
        return Err(format!(
            "transfer of {total} bytes exceeds the 4 MB DMA limit"
        ));
    }
    Ok(())
}

/// A command in the MSC+ send queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Command {
    /// One-sided write.
    Put(PutArgs),
    /// One-sided read request.
    Get(GetArgs),
}

impl Command {
    /// The destination cell the command's first packet travels to.
    pub fn dst(&self) -> CellId {
        match self {
            Command::Put(p) => p.dst,
            Command::Get(g) => g.src_cell,
        }
    }
}

/// A packet travelling on the T-net or B-net.
#[derive(Clone, PartialEq, Debug)]
pub enum Packet {
    /// PUT data: carries the payload plus enough header for the receiving
    /// MSC+ to scatter it and update the flag.
    PutData {
        /// Sending cell.
        src: CellId,
        /// Remote destination address.
        raddr: VAddr,
        /// Receiver-side scatter spec.
        recv_stride: StrideSpec,
        /// Receiver flag (0 = none).
        recv_flag: VAddr,
        /// The gathered payload bytes.
        payload: Payload,
    },
    /// GET request: no payload, asks the remote MSC+ to reply.
    GetReq {
        /// Requesting cell (reply destination).
        src: CellId,
        /// Address to gather at the remote cell (0 = ack probe).
        raddr: VAddr,
        /// Remote gather spec.
        send_stride: StrideSpec,
        /// Remote flag to bump when the reply leaves (0 = none).
        send_flag: VAddr,
        /// Where the reply payload lands at the requester.
        reply_laddr: VAddr,
        /// Requester-side scatter spec.
        reply_stride: StrideSpec,
        /// Requester flag to bump when the reply lands (0 = none).
        reply_flag: VAddr,
    },
    /// GET reply: the payload coming back.
    GetReply {
        /// Cell that served the GET.
        src: CellId,
        /// Local destination at the requester.
        laddr: VAddr,
        /// Requester-side scatter spec.
        recv_stride: StrideSpec,
        /// Requester flag (0 = none).
        recv_flag: VAddr,
        /// Gathered payload (empty for an ack probe).
        payload: Payload,
    },
    /// SEND-model message bound for the destination's ring buffer (§4.3).
    RingMsg {
        /// Sending cell.
        src: CellId,
        /// Message body.
        payload: Payload,
    },
    /// Hardware-generated remote store (distributed shared memory, §4.2).
    RemoteStore {
        /// Storing cell.
        src: CellId,
        /// Local physical offset at the owner (already DSM-resolved).
        raddr: VAddr,
        /// The stored bytes.
        payload: Payload,
    },
    /// Acknowledge for a remote store (automatic, §4.2).
    RemoteStoreAck {
        /// Cell that performed the store.
        src: CellId,
    },
    /// Hardware-generated remote load request.
    RemoteLoadReq {
        /// Loading cell (reply destination).
        src: CellId,
        /// Address at the owner.
        raddr: VAddr,
        /// Bytes requested.
        size: u64,
    },
    /// Remote load reply.
    RemoteLoadReply {
        /// Owner cell that served the load.
        src: CellId,
        /// The loaded bytes.
        payload: Payload,
    },
    /// Store into a remote cell's communication register (§4.4: the
    /// registers live in shared memory space, so a store to one is a small
    /// remote store on the T-net).
    RegStore {
        /// Storing cell.
        src: CellId,
        /// Register index at the destination.
        reg: u16,
        /// The 4-byte value.
        value: u32,
    },
}

impl Packet {
    /// Originating cell.
    pub fn src(&self) -> CellId {
        match self {
            Packet::PutData { src, .. }
            | Packet::GetReq { src, .. }
            | Packet::GetReply { src, .. }
            | Packet::RingMsg { src, .. }
            | Packet::RemoteStore { src, .. }
            | Packet::RemoteStoreAck { src }
            | Packet::RemoteLoadReq { src, .. }
            | Packet::RemoteLoadReply { src, .. }
            | Packet::RegStore { src, .. } => *src,
        }
    }

    /// Payload bytes carried (0 for requests/acks).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Packet::PutData { payload, .. }
            | Packet::GetReply { payload, .. }
            | Packet::RingMsg { payload, .. }
            | Packet::RemoteStore { payload, .. }
            | Packet::RemoteLoadReply { payload, .. } => payload.len() as u64,
            Packet::GetReq { .. }
            | Packet::RemoteStoreAck { .. }
            | Packet::RemoteLoadReq { .. } => 0,
            Packet::RegStore { .. } => 4,
        }
    }

    /// Bytes on the wire: header + payload, what the network serializes.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + self.payload_bytes()
    }

    /// The payload bytes the envelope checksum covers (empty for
    /// payload-free packets; a `RegStore`'s value travels in the header).
    pub fn payload_slice(&self) -> &[u8] {
        match self {
            Packet::PutData { payload, .. }
            | Packet::GetReply { payload, .. }
            | Packet::RingMsg { payload, .. }
            | Packet::RemoteStore { payload, .. }
            | Packet::RemoteLoadReply { payload, .. } => payload,
            Packet::GetReq { .. }
            | Packet::RemoteStoreAck { .. }
            | Packet::RemoteLoadReq { .. }
            | Packet::RegStore { .. } => &[],
        }
    }

    /// Static name of the packet kind, for per-op retry attribution.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Packet::PutData { .. } => "PutData",
            Packet::GetReq { .. } => "GetReq",
            Packet::GetReply { .. } => "GetReply",
            Packet::RingMsg { .. } => "RingMsg",
            Packet::RemoteStore { .. } => "RemoteStore",
            Packet::RemoteStoreAck { .. } => "RemoteStoreAck",
            Packet::RemoteLoadReq { .. } => "RemoteLoadReq",
            Packet::RemoteLoadReply { .. } => "RemoteLoadReply",
            Packet::RegStore { .. } => "RegStore",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(send: StrideSpec, recv: StrideSpec) -> PutArgs {
        PutArgs {
            dst: CellId::new(1),
            raddr: VAddr::new(0x2000),
            laddr: VAddr::new(0x1000),
            send_stride: send,
            recv_stride: recv,
            send_flag: VAddr::NULL,
            recv_flag: VAddr::NULL,
            ack: false,
        }
    }

    #[test]
    fn validation_catches_mismatch() {
        let ok = put(StrideSpec::contiguous(64), StrideSpec::contiguous(64));
        assert!(ok.validate().is_ok());
        assert!(!ok.is_stride());
        let bad = put(StrideSpec::contiguous(64), StrideSpec::contiguous(32));
        assert!(bad.validate().unwrap_err().contains("64 bytes"));
    }

    #[test]
    fn validation_enforces_dma_limit() {
        let too_big = put(
            StrideSpec::new(1 << 20, 5, 1 << 20),
            StrideSpec::new(1 << 20, 5, 1 << 20),
        );
        assert!(too_big.validate().unwrap_err().contains("4 MB"));
        let max_ok = put(
            StrideSpec::contiguous(4 << 20),
            StrideSpec::contiguous(4 << 20),
        );
        assert!(max_ok.validate().is_ok());
    }

    #[test]
    fn validation_rejects_hand_built_degenerate_strides() {
        // Fields are public, so an argument block can carry specs that
        // StrideSpec::new would have refused; validation must catch them.
        let zero_item = StrideSpec {
            item_size: 0,
            count: 4,
            skip: 8,
        };
        let bad = put(zero_item, StrideSpec::contiguous(1));
        assert!(bad.validate().unwrap_err().starts_with("send stride:"));
        let overlap = StrideSpec {
            item_size: 16,
            count: 2,
            skip: 8,
        };
        let bad = put(StrideSpec::contiguous(32), overlap);
        let err = bad.validate().unwrap_err();
        assert!(err.starts_with("recv stride:") && err.contains("overlap"));
        // count == 0 on either side is an empty stream: rejected as a
        // zero-length transfer, not an assert deep in the DMA path.
        let empty = StrideSpec::new(8, 0, 8);
        let bad = put(empty, empty);
        assert!(bad.validate().unwrap_err().contains("zero-length"));
        // A mismatched empty side reports the mismatch.
        let bad = put(StrideSpec::contiguous(8), empty);
        assert!(bad.validate().unwrap_err().contains("recv side 0"));
    }

    #[test]
    fn stride_detection_matches_table3_classification() {
        let s = put(StrideSpec::new(8, 10, 80), StrideSpec::contiguous(80));
        assert!(s.is_stride(), "either side strided counts as PUTS");
        let g = GetArgs {
            src_cell: CellId::new(2),
            raddr: VAddr::new(0x100),
            laddr: VAddr::new(0x200),
            send_stride: StrideSpec::contiguous(16),
            recv_stride: StrideSpec::new(4, 4, 100),
            send_flag: VAddr::NULL,
            recv_flag: VAddr::NULL,
        };
        assert!(g.is_stride());
        assert!(!g.is_ack_probe());
    }

    #[test]
    fn ack_probe_is_null_raddr() {
        let g = GetArgs {
            src_cell: CellId::new(2),
            raddr: VAddr::NULL,
            laddr: VAddr::NULL,
            send_stride: StrideSpec::contiguous(4),
            recv_stride: StrideSpec::contiguous(4),
            send_flag: VAddr::NULL,
            recv_flag: VAddr::new(0x3000),
        };
        assert!(g.is_ack_probe());
    }

    #[test]
    fn wire_bytes_includes_header() {
        let p = Packet::PutData {
            src: CellId::new(0),
            raddr: VAddr::new(0x100),
            recv_stride: StrideSpec::contiguous(100),
            recv_flag: VAddr::NULL,
            payload: Payload::from(vec![0u8; 100]),
        };
        assert_eq!(p.payload_bytes(), 100);
        assert_eq!(p.wire_bytes(), 100 + HEADER_BYTES);
        let req = Packet::GetReq {
            src: CellId::new(0),
            raddr: VAddr::new(0x1),
            send_stride: StrideSpec::contiguous(8),
            send_flag: VAddr::NULL,
            reply_laddr: VAddr::new(0x2),
            reply_stride: StrideSpec::contiguous(8),
            reply_flag: VAddr::NULL,
        };
        assert_eq!(req.wire_bytes(), HEADER_BYTES);
    }

    #[test]
    fn command_dst_routes_correctly() {
        let c = Command::Put(put(StrideSpec::contiguous(4), StrideSpec::contiguous(4)));
        assert_eq!(c.dst(), CellId::new(1));
    }
}

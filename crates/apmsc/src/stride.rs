//! The one-dimensional stride engine.
//!
//! §4.1 "Stride data transfer": the AP1000+ supports one-dimensional stride
//! transfer in hardware "as a compromise between the hardware cost of
//! implementing high-dimensional stride data transfer and the processing
//! overhead"; higher dimensions are built by repeating 1-D strides. A
//! stride is described by `(item_size, count, skip)` on each side, and the
//! two sides may re-block the same byte stream differently (Figure 3 shows
//! `send_cnt = 3`, `recv_cnt = 2`).

use crate::dma::{read_virtual, write_virtual};
use apmem::{MemError, Memory, Mmu};
use aputil::VAddr;

/// One side of a stride transfer: `count` items of `item_size` bytes, the
/// start of each item `skip` bytes after the start of the previous one.
///
/// `skip == item_size` (or `count == 1`) degenerates to a contiguous
/// block.
///
/// `count == 0` consistently describes an *empty* stream:
/// [`StrideSpec::total_bytes`] and [`StrideSpec::span_bytes`] are 0,
/// [`gather`] produces no bytes and [`scatter`] writes none. Issue-time
/// validation rejects empty transfers (a zero-length PUT/GET is a program
/// error), but the spec itself stays well-defined so hand-built argument
/// blocks fail validation instead of tripping asserts deep in the DMA
/// path.
///
/// The fields are public (the 8-word command image is just memory on the
/// real machine), so degenerate specs can be constructed without going
/// through [`StrideSpec::new`]; [`StrideSpec::check`] is the non-panicking
/// validation the MSC+ applies before activating DMA.
///
/// # Examples
///
/// ```
/// use apmsc::StrideSpec;
///
/// let s = StrideSpec::new(8, 100, 800); // a column of a 100×100 f64 matrix
/// assert_eq!(s.total_bytes(), 800);
/// assert!(!s.is_contiguous());
/// assert!(StrideSpec::contiguous(64).is_contiguous());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StrideSpec {
    /// Bytes per item.
    pub item_size: u32,
    /// Number of items.
    pub count: u32,
    /// Bytes from the start of one item to the start of the next.
    pub skip: u32,
}

impl StrideSpec {
    /// Creates a stride spec.
    ///
    /// # Panics
    ///
    /// Panics if `item_size` is 0, or `count > 1` with `skip < item_size`
    /// (overlapping items).
    pub fn new(item_size: u32, count: u32, skip: u32) -> Self {
        let spec = StrideSpec {
            item_size,
            count,
            skip,
        };
        if let Err(e) = spec.check() {
            panic!("{e}");
        }
        spec
    }

    /// Validates a (possibly hand-constructed) spec the way the MSC+
    /// does before activating DMA, without panicking.
    ///
    /// # Errors
    ///
    /// Describes the first problem found: zero `item_size`, or
    /// overlapping items (`count > 1` with `skip < item_size`).
    pub fn check(&self) -> Result<(), String> {
        if self.item_size == 0 {
            return Err("stride item_size must be nonzero".to_string());
        }
        if self.count > 1 && self.skip < self.item_size {
            return Err(format!(
                "stride items overlap: skip {} < item_size {}",
                self.skip, self.item_size
            ));
        }
        Ok(())
    }

    /// A contiguous block of `bytes` bytes as a single-item "stride".
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or exceeds `u32::MAX` (the descriptor's
    /// field width); use [`StrideSpec::try_contiguous`] where the size is
    /// not statically known, or let the `Cell` PUT/GET API chunk large
    /// transfers transparently.
    pub fn contiguous(bytes: u64) -> Self {
        match StrideSpec::try_contiguous(bytes) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`StrideSpec::contiguous`]: a single-item stride of
    /// `bytes` bytes.
    ///
    /// # Errors
    ///
    /// `bytes == 0` (empty transfers are rejected at issue time) or
    /// `bytes > u32::MAX` (the descriptor stores sizes in 4-byte words of
    /// the 8-word command image; larger transfers must be chunked).
    pub fn try_contiguous(bytes: u64) -> Result<Self, String> {
        if bytes == 0 {
            return Err("bad contiguous size 0".to_string());
        }
        if bytes > u32::MAX as u64 {
            return Err(format!(
                "contiguous block of {bytes} bytes exceeds the u32 descriptor range"
            ));
        }
        Ok(StrideSpec {
            item_size: bytes as u32,
            count: 1,
            skip: bytes as u32,
        })
    }

    /// Total payload bytes the spec describes.
    pub fn total_bytes(&self) -> u64 {
        self.item_size as u64 * self.count as u64
    }

    /// `true` if the described bytes are one contiguous run.
    pub fn is_contiguous(&self) -> bool {
        self.count <= 1 || self.skip == self.item_size
    }

    /// Footprint in memory from the first byte to one past the last.
    pub fn span_bytes(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.count as u64 - 1) * self.skip as u64 + self.item_size as u64
        }
    }
}

/// Gathers the strided bytes starting at `base` into a contiguous payload.
/// Returns `(payload, tlb_misses)`.
///
/// # Errors
///
/// Propagates page faults and physical bounds errors.
pub fn gather(
    mmu: &mut Mmu,
    mem: &Memory,
    base: VAddr,
    spec: StrideSpec,
) -> Result<(Vec<u8>, u64), MemError> {
    let mut out = Vec::with_capacity(spec.total_bytes() as usize);
    let mut misses = 0u64;
    for i in 0..spec.count {
        let at = base + i as u64 * spec.skip as u64;
        let r = read_virtual(mmu, mem, at, spec.item_size as u64)?;
        misses += r.tlb_misses;
        out.extend_from_slice(&r.data);
    }
    Ok((out, misses))
}

/// Scatters a contiguous `payload` to the strided layout at `base`.
/// Returns the TLB miss count.
///
/// # Errors
///
/// `InvalidArg`-style size mismatches are a panic (caller validates);
/// page faults and bounds errors propagate.
///
/// # Panics
///
/// Panics if `payload.len() != spec.total_bytes()`.
pub fn scatter(
    mmu: &mut Mmu,
    mem: &mut Memory,
    base: VAddr,
    spec: StrideSpec,
    payload: &[u8],
) -> Result<u64, MemError> {
    assert_eq!(
        payload.len() as u64,
        spec.total_bytes(),
        "scatter payload does not match stride spec"
    );
    let mut misses = 0u64;
    for i in 0..spec.count {
        let at = base + i as u64 * spec.skip as u64;
        let lo = (i * spec.item_size) as usize;
        let hi = lo + spec.item_size as usize;
        misses += write_virtual(mmu, mem, at, &payload[lo..hi])?;
    }
    Ok(misses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Mmu, Memory, VAddr) {
        let mut mmu = Mmu::new(16 << 20);
        let mem = Memory::new(16 << 20);
        let base = mmu.map_anywhere(1 << 20).unwrap();
        (mmu, mem, base)
    }

    #[test]
    fn gather_reads_columns() {
        let (mut mmu, mut mem, base) = setup();
        // 4×4 matrix of u8 rows of 4: gather column 1 (skip 4).
        let matrix: Vec<u8> = (0..16).collect();
        write_virtual(&mut mmu, &mut mem, base, &matrix).unwrap();
        let spec = StrideSpec::new(1, 4, 4);
        let (col, _) = gather(&mut mmu, &mem, base + 1, spec).unwrap();
        assert_eq!(col, vec![1, 5, 9, 13]);
    }

    #[test]
    fn scatter_then_gather_round_trips() {
        let (mut mmu, mut mem, base) = setup();
        let spec = StrideSpec::new(8, 50, 24);
        let payload: Vec<u8> = (0..spec.total_bytes()).map(|i| (i % 251) as u8).collect();
        scatter(&mut mmu, &mut mem, base, spec, &payload).unwrap();
        let (back, _) = gather(&mut mmu, &mem, base, spec).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn reblocking_send3_recv2_figure3() {
        // Figure 3: sender gathers 3 items, receiver scatters the same
        // bytes as 2 items of 1.5× the size.
        let (mut mmu, mut mem, base) = setup();
        let send = StrideSpec::new(4, 3, 10);
        let recv = StrideSpec::new(6, 2, 20);
        assert_eq!(send.total_bytes(), recv.total_bytes());
        let src: Vec<u8> = (0..40).collect();
        write_virtual(&mut mmu, &mut mem, base, &src).unwrap();
        let (payload, _) = gather(&mut mmu, &mem, base, send).unwrap();
        assert_eq!(payload, vec![0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23]);
        let dst = base + 1000;
        scatter(&mut mmu, &mut mem, dst, recv, &payload).unwrap();
        let r0 = read_virtual(&mut mmu, &mem, dst, 6).unwrap().data;
        let r1 = read_virtual(&mut mmu, &mem, dst + 20, 6).unwrap().data;
        assert_eq!(r0, vec![0, 1, 2, 3, 10, 11]);
        assert_eq!(r1, vec![12, 13, 20, 21, 22, 23]);
    }

    #[test]
    fn contiguous_degenerates() {
        let s = StrideSpec::contiguous(4096);
        assert!(s.is_contiguous());
        assert_eq!(s.total_bytes(), 4096);
        assert_eq!(s.span_bytes(), 4096);
        let t = StrideSpec::new(16, 4, 16);
        assert!(t.is_contiguous(), "skip == item_size is contiguous");
    }

    #[test]
    fn span_accounts_for_gaps() {
        let s = StrideSpec::new(8, 3, 100);
        assert_eq!(s.span_bytes(), 208);
        assert_eq!(s.total_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_stride_panics() {
        let _ = StrideSpec::new(16, 2, 8);
    }

    #[test]
    fn count_zero_is_a_consistent_empty_stream() {
        let (mut mmu, mut mem, base) = setup();
        let empty = StrideSpec::new(8, 0, 8);
        assert_eq!(empty.total_bytes(), 0);
        assert_eq!(empty.span_bytes(), 0);
        assert!(empty.is_contiguous());
        assert!(empty.check().is_ok(), "count 0 is well-formed, just empty");
        let (bytes, misses) = gather(&mut mmu, &mem, base, empty).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(misses, 0);
        // Scatter of the matching (empty) payload writes nothing.
        let before = read_virtual(&mut mmu, &mem, base, 16).unwrap().data;
        scatter(&mut mmu, &mut mem, base, empty, &[]).unwrap();
        let after = read_virtual(&mut mmu, &mem, base, 16).unwrap().data;
        assert_eq!(before, after);
    }

    #[test]
    fn check_rejects_hand_built_degenerate_specs() {
        let zero_item = StrideSpec {
            item_size: 0,
            count: 3,
            skip: 8,
        };
        assert!(zero_item.check().unwrap_err().contains("nonzero"));
        let overlap = StrideSpec {
            item_size: 16,
            count: 2,
            skip: 8,
        };
        assert!(overlap.check().unwrap_err().contains("overlap"));
        // skip < item_size is fine when there is at most one item.
        let single = StrideSpec {
            item_size: 16,
            count: 1,
            skip: 0,
        };
        assert!(single.check().is_ok());
    }

    #[test]
    fn try_contiguous_bounds() {
        assert!(StrideSpec::try_contiguous(0).is_err());
        assert!(StrideSpec::try_contiguous(u32::MAX as u64).is_ok());
        let err = StrideSpec::try_contiguous(u32::MAX as u64 + 1).unwrap_err();
        assert!(err.contains("exceeds"), "unexpected message: {err}");
        assert_eq!(
            StrideSpec::try_contiguous(4096).unwrap(),
            StrideSpec::contiguous(4096)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn contiguous_beyond_u32_panics_with_clear_message() {
        let _ = StrideSpec::contiguous(u32::MAX as u64 + 1);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn scatter_size_mismatch_panics() {
        let (mut mmu, mut mem, base) = setup();
        let _ = scatter(
            &mut mmu,
            &mut mem,
            base,
            StrideSpec::new(8, 2, 8),
            &[0u8; 15],
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// scatter ∘ gather is the identity on the strided footprint, for
        /// any compatible (send, recv) re-blocking of the same stream.
        #[test]
        fn gather_scatter_identity(
            item in 1u32..64,
            count in 1u32..32,
            extra_skip in 0u32..32,
        ) {
            let mut mmu = Mmu::new(16 << 20);
            let mut mem = Memory::new(16 << 20);
            let base = mmu.map_anywhere(1 << 16).unwrap();
            let spec = StrideSpec::new(item, count, item + extra_skip);
            // Fill the whole span with a pattern.
            let span = spec.span_bytes();
            let image: Vec<u8> = (0..span).map(|i| (i * 7 % 251) as u8).collect();
            write_virtual(&mut mmu, &mut mem, base, &image).unwrap();
            let (payload, _) = gather(&mut mmu, &mem, base, spec).unwrap();
            prop_assert_eq!(payload.len() as u64, spec.total_bytes());
            // Scatter elsewhere, gather again: identical payload.
            let dst = base + 40_000;
            scatter(&mut mmu, &mut mem, dst, spec, &payload).unwrap();
            let (again, _) = gather(&mut mmu, &mem, dst, spec).unwrap();
            prop_assert_eq!(again, payload);
        }
    }
}

//! The 8-word command image.
//!
//! §4.1: *"PUT/GET operations are invoked by writing parameters to the
//! send queue in the MSC+. When a program uses PUT/GET, the program writes
//! the parameters one-by-one to the special address. … Since PUT/GET
//! operations require 8-word parameters, the overhead of PUT/GET is the
//! time for 8 store instructions."*
//!
//! This module defines that memory-mapped wire format: a [`Command`]
//! serializes to exactly eight 32-bit words and back. The layout packs the
//! §3.1 argument lists:
//!
//! ```text
//! word 0   kind(4) | ack(1) | reserved | dst cell id (16)
//! word 1   raddr (low 32 bits of the logical address)
//! word 2   laddr (low 32 bits)
//! word 3   send_flag address (low 32)
//! word 4   recv_flag address (low 32)
//! word 5   send stride: item_size(16) | count(16)
//! word 6   send skip(16) | recv skip(16)
//! word 7   recv stride: item_size(16) | count(16)
//! ```
//!
//! Addresses on the AP1000+ are 32-bit logical. Stride fields are 16-bit;
//! contiguous transfers too large for them use the *block* form (flag bit
//! 5/6 of word 0): the item field counts 128-byte granules, spanning
//! exactly the 4 MB single-DMA maximum of §4.1.

use crate::message::{Command, GetArgs, PutArgs};
use crate::stride::StrideSpec;
use aputil::{CellId, VAddr};
use core::fmt;
use std::error::Error;

/// Number of 32-bit parameter words per command.
pub const COMMAND_WORDS: usize = 8;

const KIND_PUT: u32 = 0x1;
const KIND_GET: u32 = 0x2;
const FLAG_ACK: u32 = 1 << 4;
const FLAG_WORD_ITEMS: u32 = 1 << 5;

/// Decode failures for a command image.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum DecodeError {
    /// Word 0 carries an unknown command kind.
    BadKind(u32),
    /// A stride field is zero where the format requires nonzero.
    BadStride,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadKind(k) => write!(f, "unknown command kind {k:#x}"),
            DecodeError::BadStride => write!(f, "malformed stride field"),
        }
    }
}

impl Error for DecodeError {}

/// Whether a stride spec fits the native 16-bit stride fields.
fn fits_native(s: StrideSpec) -> bool {
    s.item_size <= u16::MAX as u32 && s.count <= u16::MAX as u32 && s.skip <= u16::MAX as u32
}

/// Granule of the block (word-items) encoding: 128 bytes, so the 16-bit
/// item field spans exactly the 4 MB DMA maximum (32 768 granules).
const BLOCK_GRANULE: u64 = 128;

/// Whether a stride spec can use the block encoding (contiguous, total a
/// multiple of the granule, within the DMA cap).
fn fits_word_items(s: StrideSpec) -> bool {
    s.is_contiguous()
        && s.total_bytes().is_multiple_of(BLOCK_GRANULE)
        && s.total_bytes() / BLOCK_GRANULE <= u16::MAX as u64
}

/// `true` if `cmd` is representable in the 8-word image. The MSC+ rejects
/// anything else at issue time; the higher-level runtime never produces
/// unencodable commands for transfers within the 4 MB DMA limit because
/// oversized contiguous blocks use the word-items form.
pub fn encodable(cmd: &Command) -> bool {
    let (send, recv) = match cmd {
        Command::Put(p) => (p.send_stride, p.recv_stride),
        Command::Get(g) => (g.send_stride, g.recv_stride),
    };
    (fits_native(send) || fits_word_items(send)) && (fits_native(recv) || fits_word_items(recv))
}

fn encode_stride(s: StrideSpec, flags: &mut u32, which: u32) -> (u16, u16, u16) {
    if fits_native(s) {
        (s.item_size as u16, s.count as u16, s.skip as u16)
    } else {
        // Block form: one contiguous run measured in 128-byte granules.
        debug_assert!(fits_word_items(s));
        *flags |= FLAG_WORD_ITEMS << which;
        let granules = (s.total_bytes() / BLOCK_GRANULE) as u16;
        (granules, 1, granules)
    }
}

fn decode_stride(
    item: u16,
    count: u16,
    skip: u16,
    word_items: bool,
) -> Result<StrideSpec, DecodeError> {
    if word_items {
        if item == 0 {
            return Err(DecodeError::BadStride);
        }
        let bytes = item as u64 * BLOCK_GRANULE;
        Ok(StrideSpec::contiguous(bytes))
    } else {
        if item == 0 || count == 0 {
            return Err(DecodeError::BadStride);
        }
        Ok(StrideSpec::new(item as u32, count as u32, skip as u32))
    }
}

/// Encodes a command into its 8-word queue image.
///
/// # Panics
///
/// Panics if the command is not [`encodable`] — the caller (the issuing
/// library) validates first, like the real run-time system.
pub fn encode(cmd: &Command) -> [u32; COMMAND_WORDS] {
    assert!(
        encodable(cmd),
        "command does not fit the 8-word image: {cmd:?}"
    );
    let mut w = [0u32; COMMAND_WORDS];
    let (kind, dst, raddr, laddr, sflag, rflag, send, recv, ack) = match cmd {
        Command::Put(p) => (
            KIND_PUT,
            p.dst,
            p.raddr,
            p.laddr,
            p.send_flag,
            p.recv_flag,
            p.send_stride,
            p.recv_stride,
            p.ack,
        ),
        Command::Get(g) => (
            KIND_GET,
            g.src_cell,
            g.raddr,
            g.laddr,
            g.send_flag,
            g.recv_flag,
            g.send_stride,
            g.recv_stride,
            false,
        ),
    };
    let mut flags = kind | if ack { FLAG_ACK } else { 0 };
    let (si, sc, ss) = encode_stride(send, &mut flags, 1);
    let (ri, rc, rs) = encode_stride(recv, &mut flags, 2);
    w[0] = flags | (dst.as_u32() << 16);
    w[1] = raddr.as_u64() as u32;
    w[2] = laddr.as_u64() as u32;
    w[3] = sflag.as_u64() as u32;
    w[4] = rflag.as_u64() as u32;
    w[5] = (si as u32) << 16 | sc as u32;
    w[6] = (ss as u32) << 16 | rs as u32;
    w[7] = (ri as u32) << 16 | rc as u32;
    w
}

/// Per-packet payload checksum (FNV-1a, 32-bit), carried in the packet
/// envelope under fault injection so the receive controller can detect
/// in-flight corruption before scattering a single byte. Requests and
/// acks carry the checksum of the empty payload.
///
/// Deliberately cheap and order-sensitive; it guards against the injected
/// bit-flips of the fault model, not an adversary.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Decodes an 8-word queue image back into a command — what the MSC+ send
/// controller does when it pops the queue.
///
/// # Errors
///
/// [`DecodeError`] on corrupted images.
pub fn decode(w: &[u32; COMMAND_WORDS]) -> Result<Command, DecodeError> {
    let kind = w[0] & 0xF;
    let ack = w[0] & FLAG_ACK != 0;
    let dst = CellId::new(w[0] >> 16);
    let send_words = w[0] & (FLAG_WORD_ITEMS << 1) != 0;
    let recv_words = w[0] & (FLAG_WORD_ITEMS << 2) != 0;
    let send = decode_stride(
        (w[5] >> 16) as u16,
        (w[5] & 0xFFFF) as u16,
        (w[6] >> 16) as u16,
        send_words,
    )?;
    let recv = decode_stride(
        (w[7] >> 16) as u16,
        (w[7] & 0xFFFF) as u16,
        (w[6] & 0xFFFF) as u16,
        recv_words,
    )?;
    let raddr = VAddr::new(w[1] as u64);
    let laddr = VAddr::new(w[2] as u64);
    let send_flag = VAddr::new(w[3] as u64);
    let recv_flag = VAddr::new(w[4] as u64);
    match kind {
        KIND_PUT => Ok(Command::Put(PutArgs {
            dst,
            raddr,
            laddr,
            send_stride: send,
            recv_stride: recv,
            send_flag,
            recv_flag,
            ack,
        })),
        KIND_GET => Ok(Command::Get(GetArgs {
            src_cell: dst,
            raddr,
            laddr,
            send_stride: send,
            recv_stride: recv,
            send_flag,
            recv_flag,
        })),
        other => Err(DecodeError::BadKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(send: StrideSpec, recv: StrideSpec, ack: bool) -> Command {
        Command::Put(PutArgs {
            dst: CellId::new(513),
            raddr: VAddr::new(0x0012_3450),
            laddr: VAddr::new(0x00ab_cd00),
            send_stride: send,
            recv_stride: recv,
            send_flag: VAddr::new(0x1000),
            recv_flag: VAddr::NULL,
            ack,
        })
    }

    #[test]
    fn put_round_trips() {
        let cmd = put(
            StrideSpec::new(8, 100, 800),
            StrideSpec::contiguous(800),
            true,
        );
        let image = encode(&cmd);
        assert_eq!(decode(&image).unwrap(), cmd);
    }

    #[test]
    fn get_round_trips() {
        let cmd = Command::Get(GetArgs {
            src_cell: CellId::new(7),
            raddr: VAddr::new(0x100),
            laddr: VAddr::new(0x200),
            send_stride: StrideSpec::new(16, 32, 64),
            recv_stride: StrideSpec::new(32, 16, 128),
            send_flag: VAddr::NULL,
            recv_flag: VAddr::new(0x300),
        });
        assert_eq!(decode(&encode(&cmd)).unwrap(), cmd);
    }

    #[test]
    fn large_contiguous_uses_word_items() {
        // 1 MB contiguous transfer exceeds 16-bit stride fields but must
        // still encode (word-items form).
        let cmd = put(
            StrideSpec::contiguous(1 << 20),
            StrideSpec::contiguous(1 << 20),
            false,
        );
        assert!(encodable(&cmd));
        assert_eq!(decode(&encode(&cmd)).unwrap(), cmd);
    }

    #[test]
    fn max_dma_transfer_encodes() {
        let cmd = put(
            StrideSpec::contiguous(4 << 20),
            StrideSpec::contiguous(4 << 20),
            false,
        );
        assert!(encodable(&cmd), "the 4 MB DMA cap must be encodable");
        assert_eq!(decode(&encode(&cmd)).unwrap(), cmd);
    }

    #[test]
    fn unencodable_stride_detected() {
        // 70 000 non-contiguous items exceed the 16-bit count.
        let cmd = put(
            StrideSpec::new(8, 70_000, 16),
            StrideSpec::new(8, 70_000, 16),
            false,
        );
        assert!(!encodable(&cmd));
    }

    #[test]
    fn checksum_detects_flips_and_reorders() {
        let base = checksum(b"put/get payload");
        assert_eq!(base, checksum(b"put/get payload"), "deterministic");
        assert_ne!(base, checksum(b"put/get pay1oad"), "bit flip detected");
        assert_ne!(checksum(b"ab"), checksum(b"ba"), "order-sensitive");
        assert_ne!(checksum(&[]), 0, "empty payload has a nonzero tag");
    }

    #[test]
    fn corrupted_image_is_rejected() {
        let cmd = put(
            StrideSpec::contiguous(64),
            StrideSpec::contiguous(64),
            false,
        );
        let mut image = encode(&cmd);
        image[0] = (image[0] & !0xF) | 0xE; // bogus kind
        assert!(matches!(decode(&image), Err(DecodeError::BadKind(0xE))));
        let mut image = encode(&cmd);
        image[5] = 0; // zero item/count
        assert_eq!(decode(&image), Err(DecodeError::BadStride));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_stride() -> impl Strategy<Value = StrideSpec> {
        prop_oneof![
            // Native strided form.
            (1u32..=u16::MAX as u32, 1u32..=2000).prop_flat_map(|(item, count)| {
                (Just(item), Just(count), item..=u16::MAX as u32)
                    .prop_map(|(i, c, skip)| StrideSpec::new(i, c, skip))
            }),
            // Contiguous small (native) form.
            (1u64..=u16::MAX as u64).prop_map(StrideSpec::contiguous),
            // Contiguous block form, up to the 4 MB DMA cap.
            (1u64..=u16::MAX as u64).prop_map(|g| StrideSpec::contiguous(g * 128)),
        ]
    }

    proptest! {
        /// encode ∘ decode is the identity for every encodable command.
        #[test]
        fn round_trip(
            dst in 0u32..1024,
            raddr in 1u64..0xFFFF_FFFF,
            laddr in 1u64..0xFFFF_FFFF,
            sflag in 0u64..0xFFFF_FFFF,
            rflag in 0u64..0xFFFF_FFFF,
            send in arb_stride(),
            recv in arb_stride(),
            ack in any::<bool>(),
            is_put in any::<bool>(),
        ) {
            let cmd = if is_put {
                Command::Put(PutArgs {
                    dst: CellId::new(dst),
                    raddr: VAddr::new(raddr),
                    laddr: VAddr::new(laddr),
                    send_stride: send,
                    recv_stride: recv,
                    send_flag: VAddr::new(sflag),
                    recv_flag: VAddr::new(rflag),
                    ack,
                })
            } else {
                Command::Get(GetArgs {
                    src_cell: CellId::new(dst),
                    raddr: VAddr::new(raddr),
                    laddr: VAddr::new(laddr),
                    send_stride: send,
                    recv_stride: recv,
                    send_flag: VAddr::new(sflag),
                    recv_flag: VAddr::new(rflag),
                })
            };
            prop_assume!(encodable(&cmd));
            let decoded = decode(&encode(&cmd)).unwrap();
            prop_assert_eq!(decoded, cmd);
        }
    }
}

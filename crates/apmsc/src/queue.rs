//! MSC+ hardware command queues with DRAM spill.
//!
//! Paper §4.1: *"The MSC+ contains five queues in its own RAM. … Since the
//! maximum queue size is 64 words, it is possible that an MSC+ queue may
//! become full. In this case, the MSC+ is able to automatically write the
//! data directly to a previously allocated buffer in DRAM. All data written
//! by the processor after the queue becomes full is written into the buffer
//! in DRAM. When the queue empties, the MSC+ interrupts the operating
//! system, which then loads data from the buffer in DRAM back into the
//! queue in the MSC+."*
//!
//! The model keeps the *ordering* semantics exact (FIFO across the RAM part
//! and the spill part) and surfaces the events the timing layer must
//! charge: how many entries went to DRAM, and how many OS refill
//! interrupts fired.

use aputil::SimTime;
use std::collections::VecDeque;

/// Words of on-chip RAM per queue (§4.1).
pub const QUEUE_RAM_WORDS: usize = 64;
/// Words per PUT/GET command (§4.1: "PUT/GET operations require 8-word
/// parameters").
pub const COMMAND_WORDS: usize = 8;

/// Where a pushed entry landed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushOutcome {
    /// Entry fit in the on-chip RAM.
    Ram,
    /// RAM was full; the entry was written to the DRAM spill buffer.
    Spilled,
}

/// Counters for one queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct QueueStats {
    /// Entries pushed in total.
    pub pushed: u64,
    /// Entries that had to spill to DRAM.
    pub spilled: u64,
    /// OS interrupts taken to reload spilled entries into RAM.
    pub refill_interrupts: u64,
    /// High-water mark of total occupancy (RAM + spill), in entries.
    pub high_water: usize,
}

/// One MSC+ command queue: a fixed-size on-chip FIFO backed by an
/// unbounded DRAM spill buffer.
///
/// `entry_words` is the size of one entry (8 words for PUT/GET commands,
/// fewer for remote-access descriptors); capacity in entries is
/// `QUEUE_RAM_WORDS / entry_words`.
///
/// # Examples
///
/// ```
/// use apmsc::{HwQueue, PushOutcome};
///
/// let mut q: HwQueue<u32> = HwQueue::new("user send", 8);
/// assert_eq!(q.ram_capacity(), 8);
/// for i in 0..8 {
///     assert_eq!(q.push(i), PushOutcome::Ram);
/// }
/// assert_eq!(q.push(8), PushOutcome::Spilled);
/// assert_eq!(q.pop(), Some(0)); // FIFO across RAM and spill
/// ```
#[derive(Clone, Debug)]
pub struct HwQueue<T> {
    name: &'static str,
    ram: VecDeque<(T, SimTime)>,
    spill: VecDeque<(T, SimTime)>,
    ram_capacity: usize,
    stats: QueueStats,
    occupancy: apobs::Hist,
    wait: apobs::Hist,
}

impl<T> HwQueue<T> {
    /// Creates a queue whose entries occupy `entry_words` words each.
    ///
    /// # Panics
    ///
    /// Panics if `entry_words` is 0 or exceeds [`QUEUE_RAM_WORDS`].
    pub fn new(name: &'static str, entry_words: usize) -> Self {
        assert!(
            entry_words > 0 && entry_words <= QUEUE_RAM_WORDS,
            "invalid entry size {entry_words} words"
        );
        HwQueue {
            name,
            ram: VecDeque::new(),
            spill: VecDeque::new(),
            ram_capacity: QUEUE_RAM_WORDS / entry_words,
            stats: QueueStats::default(),
            occupancy: apobs::Hist::new(),
            wait: apobs::Hist::new(),
        }
    }

    /// Queue name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// On-chip capacity in entries.
    pub fn ram_capacity(&self) -> usize {
        self.ram_capacity
    }

    /// Entries currently queued (RAM + spill).
    pub fn len(&self) -> usize {
        self.ram.len() + self.spill.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ram.is_empty() && self.spill.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Log2 histogram of total occupancy (RAM + spill) observed after each
    /// enqueue.
    pub fn occupancy(&self) -> &apobs::Hist {
        &self.occupancy
    }

    /// Log2 histogram of nanoseconds each entry sat queued before being
    /// popped (timestamped by [`HwQueue::push_at`] / [`HwQueue::pop_at`]).
    pub fn wait(&self) -> &apobs::Hist {
        &self.wait
    }

    /// Pushes an entry without a timestamp; reports whether it landed in
    /// RAM or spilled.
    pub fn push(&mut self, entry: T) -> PushOutcome {
        self.push_at(entry, SimTime::ZERO)
    }

    /// Pushes an entry stamped with its enqueue time `now`, so the
    /// matching [`HwQueue::pop_at`] can report how long it waited.
    pub fn push_at(&mut self, entry: T, now: SimTime) -> PushOutcome {
        self.stats.pushed += 1;
        let outcome = if self.spill.is_empty() && self.ram.len() < self.ram_capacity {
            self.ram.push_back((entry, now));
            PushOutcome::Ram
        } else {
            // Once anything has spilled, later entries must also go to DRAM
            // to preserve FIFO order ("all data written by the processor
            // after the queue becomes full is written into the buffer").
            self.spill.push_back((entry, now));
            self.stats.spilled += 1;
            PushOutcome::Spilled
        };
        self.stats.high_water = self.stats.high_water.max(self.len());
        self.occupancy.record(self.len() as u64);
        outcome
    }

    /// Pops the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.pop_at(SimTime::ZERO).map(|(e, _)| e)
    }

    /// Pops the oldest entry at time `now`, returning it with how long it
    /// sat queued (`now -` its enqueue stamp; recorded in
    /// [`HwQueue::wait`]). When popping drains the RAM part while entries
    /// remain in DRAM, the OS refill interrupt fires and up to a RAM's
    /// worth of spilled entries are reloaded — visible in
    /// [`QueueStats::refill_interrupts`].
    pub fn pop_at(&mut self, now: SimTime) -> Option<(T, SimTime)> {
        let (entry, since) = self.ram.pop_front().or_else(|| {
            // RAM empty but spill non-empty can only happen transiently
            // inside refill; treat as direct DRAM pop.
            self.spill.pop_front()
        })?;
        if self.ram.is_empty() && !self.spill.is_empty() {
            self.stats.refill_interrupts += 1;
            for _ in 0..self.ram_capacity {
                match self.spill.pop_front() {
                    Some(e) => self.ram.push_back(e),
                    None => break,
                }
            }
        }
        let waited = now.saturating_sub(since);
        self.wait.record(waited.as_nanos());
        Some((entry, waited))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_without_spill() {
        let mut q: HwQueue<u32> = HwQueue::new("t", 8);
        for i in 0..5 {
            assert_eq!(q.push(i), PushOutcome::Ram);
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.stats().spilled, 0);
        assert_eq!(q.stats().refill_interrupts, 0);
    }

    #[test]
    fn spill_preserves_global_fifo() {
        let mut q: HwQueue<u32> = HwQueue::new("t", 8);
        for i in 0..50 {
            q.push(i);
        }
        assert_eq!(q.stats().spilled, 50 - 8);
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..50).collect::<Vec<_>>());
        assert!(q.stats().refill_interrupts >= 1);
        assert_eq!(q.stats().high_water, 50);
    }

    #[test]
    fn entries_keep_spilling_until_refill() {
        let mut q: HwQueue<u32> = HwQueue::new("t", 8);
        for i in 0..9 {
            q.push(i); // 8 RAM + 1 spill
        }
        // RAM has room only after pops; a push *now* must spill to keep order.
        assert_eq!(q.push(9), PushOutcome::Spilled);
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn remote_access_queue_has_different_geometry() {
        let q: HwQueue<u32> = HwQueue::new("remote access", 4);
        assert_eq!(q.ram_capacity(), 16);
    }

    #[test]
    #[should_panic(expected = "invalid entry size")]
    fn zero_entry_words_panics() {
        let _: HwQueue<u32> = HwQueue::new("t", 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under any interleaving of pushes and pops the queue behaves like
        /// an unbounded FIFO; spill machinery never reorders or loses
        /// entries.
        #[test]
        fn equivalent_to_unbounded_fifo(ops in proptest::collection::vec(any::<bool>(), 1..300)) {
            let mut q: HwQueue<u64> = HwQueue::new("t", 8);
            let mut model = std::collections::VecDeque::new();
            let mut next = 0u64;
            for push in ops {
                if push {
                    q.push(next);
                    model.push_back(next);
                    next += 1;
                } else {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
            }
            while let Some(v) = model.pop_front() {
                prop_assert_eq!(q.pop(), Some(v));
            }
            prop_assert!(q.is_empty());
        }
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;

    #[test]
    fn occupancy_histogram_tracks_enqueue_depth() {
        let mut q: HwQueue<u32> = HwQueue::new("t", 8);
        for i in 0..12 {
            q.push(i);
        }
        assert_eq!(q.occupancy().count(), 12);
        assert_eq!(q.occupancy().max(), 12);
        assert_eq!(q.occupancy().min(), 1);
    }

    #[test]
    fn wait_histogram_measures_queueing_delay() {
        let mut q: HwQueue<u32> = HwQueue::new("t", 8);
        q.push_at(1, SimTime::from_nanos(100));
        q.push_at(2, SimTime::from_nanos(150));
        let (e, w) = q.pop_at(SimTime::from_nanos(100)).unwrap();
        assert_eq!((e, w), (1, SimTime::ZERO));
        let (e, w) = q.pop_at(SimTime::from_nanos(400)).unwrap();
        assert_eq!((e, w), (2, SimTime::from_nanos(250)));
        assert_eq!(q.wait().count(), 2);
        assert_eq!(q.wait().max(), 250);
    }
}

//! The MSC+ message controller model.
//!
//! The MSC+ is the heart of the paper's contribution (§4.1, Figure 5): it
//! lets user code issue PUT/GET with a handful of stores, moves data with
//! DMA through the MC's MMU, combines flag updates with transfer
//! completion, and keeps the processor entirely out of message handling.
//! This crate models its mechanical pieces:
//!
//! * [`queue::HwQueue`] — the five on-chip command queues
//!   (64 words of RAM each) with automatic **spill to a DRAM buffer** and
//!   OS-interrupt accounting on refill (§4.1 "Queues and queue overflows").
//! * [`dma`] — DMA copy between logical address ranges, translating through
//!   the MMU page-run by page-run and reporting TLB misses for timing.
//! * [`stride::StrideSpec`] and the gather/scatter engine — the
//!   one-dimensional stride transfer of §3.1/§4.1.
//! * [`message::Command`] and [`message::Packet`] — what
//!   the processor writes into the send queue, and what travels on the
//!   T-net, including header-size accounting for the timing models.

pub mod dma;
pub mod encode;
pub mod message;
pub mod payload;
pub mod queue;
pub mod stride;

pub use encode::{checksum, decode, encodable, encode, DecodeError};
pub use message::{Command, GetArgs, Packet, PutArgs, HEADER_BYTES, MAX_DMA_BYTES};
pub use payload::Payload;
pub use queue::{HwQueue, PushOutcome, QueueStats};
pub use stride::StrideSpec;

//! DMA transfers through the MMU.
//!
//! The MSC+ DMA controllers move data between logical address ranges; the
//! MC's MMU translates page-run by page-run ("the MSC+ can … quickly obtain
//! the converted address from the MMU", §4.1). The functions here perform
//! the data movement functionally and report how many TLB misses occurred
//! so the timing layer can charge the table-walker.

use apmem::{MemError, Memory, Mmu};
use aputil::VAddr;

/// Result of a DMA leg: payload plus translation cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DmaRead {
    /// Bytes read.
    pub data: Vec<u8>,
    /// TLB misses incurred while translating.
    pub tlb_misses: u64,
}

/// Reads `len` logical bytes starting at `vaddr`.
///
/// # Errors
///
/// [`MemError::PageFault`] if any page in the range is unmapped — this is
/// the hardware protection check: "the hardware must check for illegal
/// addresses" (§3.2).
pub fn read_virtual(
    mmu: &mut Mmu,
    mem: &Memory,
    vaddr: VAddr,
    len: u64,
) -> Result<DmaRead, MemError> {
    let mut data = vec![0u8; len as usize];
    let mut misses = 0u64;
    let mut done = 0u64;
    while done < len {
        let t = mmu.translate(vaddr + done)?;
        if !t.tlb_hit {
            misses += 1;
        }
        let n = t.run.min(len - done);
        mem.read(t.paddr, &mut data[done as usize..(done + n) as usize])?;
        done += n;
    }
    Ok(DmaRead {
        data,
        tlb_misses: misses,
    })
}

/// Writes `data` to the logical range starting at `vaddr`; returns the
/// number of TLB misses.
///
/// # Errors
///
/// [`MemError::PageFault`] if any page in the range is unmapped.
pub fn write_virtual(
    mmu: &mut Mmu,
    mem: &mut Memory,
    vaddr: VAddr,
    data: &[u8],
) -> Result<u64, MemError> {
    let len = data.len() as u64;
    let mut misses = 0u64;
    let mut done = 0u64;
    while done < len {
        let t = mmu.translate(vaddr + done)?;
        if !t.tlb_hit {
            misses += 1;
        }
        let n = t.run.min(len - done);
        mem.write(t.paddr, &data[done as usize..(done + n) as usize])?;
        done += n;
    }
    Ok(misses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(bytes: u64) -> (Mmu, Memory, VAddr) {
        let mut mmu = Mmu::new(16 << 20);
        let mem = Memory::new(16 << 20);
        let base = mmu.map_anywhere(bytes).unwrap();
        (mmu, mem, base)
    }

    #[test]
    fn round_trip_within_page() {
        let (mut mmu, mut mem, base) = setup(4096);
        write_virtual(&mut mmu, &mut mem, base + 10, b"hello").unwrap();
        let r = read_virtual(&mut mmu, &mem, base + 10, 5).unwrap();
        assert_eq!(r.data, b"hello");
    }

    #[test]
    fn round_trip_across_pages_counts_misses() {
        let (mut mmu, mut mem, base) = setup(3 * 4096);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 253) as u8).collect();
        let w_miss = write_virtual(&mut mmu, &mut mem, base + 100, &payload).unwrap();
        assert_eq!(w_miss, 3, "first touch of 3 pages misses 3 times");
        let r = read_virtual(&mut mmu, &mem, base + 100, 10_000).unwrap();
        assert_eq!(r.data, payload);
        assert_eq!(r.tlb_misses, 0, "TLB is now warm");
    }

    #[test]
    fn zero_length_transfer_is_noop() {
        let (mut mmu, mut mem, base) = setup(4096);
        assert_eq!(write_virtual(&mut mmu, &mut mem, base, &[]).unwrap(), 0);
        let r = read_virtual(&mut mmu, &mem, base, 0).unwrap();
        assert!(r.data.is_empty());
    }

    #[test]
    fn unmapped_range_faults() {
        let (mut mmu, mut mem, base) = setup(4096);
        // Run off the end of the mapping.
        assert!(matches!(
            write_virtual(&mut mmu, &mut mem, base + 4090, &[0u8; 16]),
            Err(MemError::PageFault { .. })
        ));
        assert!(read_virtual(&mut mmu, &mem, VAddr::new(0xdddd_0000), 1).is_err());
    }

    #[test]
    fn large_page_transfer_is_single_run() {
        let mut mmu = Mmu::new(16 << 20);
        let mut mem = Memory::new(16 << 20);
        let base = mmu.map_anywhere(512 * 1024).unwrap(); // large pages
        let payload = vec![0xa5u8; 200_000];
        let misses = write_virtual(&mut mmu, &mut mem, base, &payload).unwrap();
        assert_eq!(misses, 1, "200 KB inside one 256 KB page: one walk");
        let r = read_virtual(&mut mmu, &mem, base, 200_000).unwrap();
        assert_eq!(r.data, payload);
    }
}

//! Shared, immutable payload buffers for the zero-copy transfer path.
//!
//! A payload is gathered from simulated memory exactly once, when the
//! send DMA activates, and scattered into the destination memory exactly
//! once, when the receive DMA completes. Between those two points it
//! passes through the transmit queue, the active-DMA slot, the network
//! packet and (for SEND) the ring buffer — stations that previously each
//! held their own `Vec<u8>`. Backing the bytes with an [`Arc`] makes
//! every hand-off a pointer move and every retained reference (e.g. a
//! DSM store fanned out to its queue entry and its packet) a reference
//! count bump instead of a copy.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte buffer shared by reference count.
#[derive(Clone, PartialEq, Eq)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// An empty payload (requests, probes, acks).
    pub fn empty() -> Self {
        Payload(Arc::from(&[][..]))
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the payload carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the bytes out into an owned vector (the delivery-side
    /// scatter, or an API boundary that hands bytes to the caller).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(Arc::from(v.into_boxed_slice()))
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_backing_buffer() {
        let p = Payload::from(vec![1u8, 2, 3]);
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.0, &q.0), "clone must not copy the bytes");
        assert_eq!(q.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn empty_and_conversions() {
        let e = Payload::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let p = Payload::from(vec![9u8; 4]);
        assert_eq!(p.to_vec(), vec![9u8; 4]);
        assert_eq!(&p[..2], &[9, 9]);
    }
}

//! Conservative time-windowed PDES scheduling support (DESIGN.md §10).
//!
//! The windowed engine partitions the torus into rectangular tiles —
//! one per simulation thread — and lets every cell program whose wake
//! falls inside the current dispatch window compute concurrently. The
//! window is derived from the T-net's fixed per-hop latency: no packet
//! injected on one side of a tile boundary can arrive on the other side
//! in less than [`apnet::TNetParams::min_crossing_latency`], so a wake
//! scheduled inside `[now, now + window]` can be released before all
//! earlier events have committed without changing what the program
//! observes. Event *commitment* stays in canonical `(sim-time, seq)`
//! order regardless of the window, which is what makes every observable
//! output byte-identical to the serial engine.

use aputil::{CellId, SimTime};

/// Rectangular partition of a `w × h` torus into at most `threads`
/// tiles, as close to square as the dimensions allow.
///
/// # Examples
///
/// ```
/// use apcore::pdes::TilePlan;
///
/// let plan = TilePlan::new(8, 8, 4);
/// assert_eq!(plan.ntiles(), 4);
/// assert_eq!(plan.grid(), (2, 2));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TilePlan {
    torus_w: u32,
    torus_h: u32,
    tiles_x: u32,
    tiles_y: u32,
}

impl TilePlan {
    /// Partitions a `torus_w × torus_h` torus into at most `threads`
    /// rectangular tiles. The factorization favors squareness (a 2×2
    /// grid over a 4×1 grid for 4 threads) because square tiles minimize
    /// the boundary-to-area ratio, and never cuts a dimension into more
    /// pieces than it has cells.
    ///
    /// # Panics
    ///
    /// Panics if either torus dimension or `threads` is zero.
    pub fn new(torus_w: u32, torus_h: u32, threads: u32) -> TilePlan {
        assert!(
            torus_w > 0 && torus_h > 0,
            "torus dimensions must be nonzero"
        );
        assert!(threads > 0, "at least one tile is required");
        let mut best = (1, 1);
        for ty in 1..=threads.min(torus_h) {
            let tx = (threads / ty).min(torus_w);
            if tx == 0 {
                continue;
            }
            let better_count = tx * ty > best.0 * best.1;
            // Among equal tile counts, prefer the squarer grid (smaller
            // |tx - ty| once scaled by the torus aspect).
            let better_shape =
                tx * ty == best.0 * best.1 && tx.abs_diff(ty) < best.0.abs_diff(best.1);
            if better_count || better_shape {
                best = (tx, ty);
            }
        }
        TilePlan {
            torus_w,
            torus_h,
            tiles_x: best.0,
            tiles_y: best.1,
        }
    }

    /// `(tiles_x, tiles_y)` of the tile grid.
    pub fn grid(&self) -> (u32, u32) {
        (self.tiles_x, self.tiles_y)
    }

    /// Number of tiles actually formed (may be less than the requested
    /// thread count when the torus is small).
    pub fn ntiles(&self) -> u32 {
        self.tiles_x * self.tiles_y
    }

    /// The tile that owns `cell` (row-major over the tile grid).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the torus.
    pub fn tile_of(&self, cell: CellId) -> u32 {
        let i = cell.as_u32();
        assert!(
            i < self.torus_w * self.torus_h,
            "{cell} outside {}x{} torus",
            self.torus_w,
            self.torus_h
        );
        let (x, y) = (i % self.torus_w, i / self.torus_w);
        let tx = x * self.tiles_x / self.torus_w;
        let ty = y * self.tiles_y / self.torus_h;
        ty * self.tiles_x + tx
    }

    /// Whether `cell` has a torus neighbor in a different tile — i.e. it
    /// sits on a tile boundary and its packets can cross tiles in one
    /// hop. The minimum over these crossings is what bounds the
    /// conservative lookahead.
    pub fn is_boundary(&self, cell: CellId) -> bool {
        let i = cell.as_u32();
        let (x, y) = (i % self.torus_w, i / self.torus_w);
        let home = self.tile_of(cell);
        let neighbors = [
            ((x + 1) % self.torus_w, y),
            ((x + self.torus_w - 1) % self.torus_w, y),
            (x, (y + 1) % self.torus_h),
            (x, (y + self.torus_h - 1) % self.torus_h),
        ];
        neighbors
            .iter()
            .any(|&(nx, ny)| self.tile_of(CellId::new(ny * self.torus_w + nx)) != home)
    }

    /// Count of cells sitting on a tile boundary (reported in the
    /// scaling artifact so the surface-to-volume cost is visible).
    pub fn boundary_cells(&self) -> u32 {
        (0..self.torus_w * self.torus_h)
            .filter(|&i| self.is_boundary(CellId::new(i)))
            .count() as u32
    }
}

/// The dispatch window: how far past the canonical commit frontier a
/// wake may be released for concurrent execution. Any multiple of the
/// lookahead is *safe* (commit order is canonical either way); larger
/// windows keep more cell threads runnable between frontier advances,
/// at the price of more in-flight host state. The default multiplier
/// was picked by measuring the 1024-cell CG scaling curve.
pub fn window(lookahead: SimTime, mult: u32) -> SimTime {
    lookahead.saturating_mul(mult.max(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_favor_square_grids() {
        assert_eq!(TilePlan::new(8, 8, 4).grid(), (2, 2));
        assert_eq!(TilePlan::new(8, 8, 8).grid(), (4, 2));
        assert_eq!(TilePlan::new(32, 32, 16).grid(), (4, 4));
    }

    #[test]
    fn plans_never_overcut_a_dimension() {
        // A 4×1 ring cannot form a 2×2 grid; the plan degrades to 4×1.
        assert_eq!(TilePlan::new(4, 1, 4).grid(), (4, 1));
        // A 2×2 torus asked for 8 tiles can only form 4.
        assert_eq!(TilePlan::new(2, 2, 8).ntiles(), 4);
        // One thread is one tile.
        assert_eq!(TilePlan::new(8, 8, 1).ntiles(), 1);
    }

    #[test]
    fn tile_of_partitions_every_cell_once() {
        let plan = TilePlan::new(8, 4, 4);
        let mut counts = vec![0u32; plan.ntiles() as usize];
        for i in 0..32 {
            counts[plan.tile_of(CellId::new(i)) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 8), "{counts:?}");
    }

    #[test]
    fn boundary_cells_exist_whenever_there_are_two_tiles() {
        let plan = TilePlan::new(8, 8, 4);
        assert!(plan.boundary_cells() > 0);
        assert!(plan.boundary_cells() < 64, "not every cell is boundary");
        // A single tile has no boundary (and hence unbounded lookahead).
        assert_eq!(TilePlan::new(8, 8, 1).boundary_cells(), 0);
    }

    #[test]
    fn window_scales_the_lookahead() {
        let la = SimTime::from_nanos(320);
        assert_eq!(window(la, 1), la);
        assert_eq!(window(la, 4).as_nanos(), 1280);
        assert_eq!(window(la, 0), la, "multiplier clamps to 1");
    }
}

//! Per-cell time accounting and the run report.
//!
//! The emulator splits each cell's wall-clock into the same four buckets
//! the paper's Figure 8 uses (§5.2): **execution** (user computation),
//! **run-time system** (VPP Fortran RTS work), **overhead** (CPU time in
//! communication library calls), and **idle** (waiting for messages, flags,
//! or barriers).

use aputil::SimTime;

/// Time breakdown of one cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellTimes {
    /// User computation time.
    pub exec: SimTime,
    /// Run-time-system time (address calculation, stride discovery, …).
    pub rts: SimTime,
    /// Communication-library CPU overhead (issue costs, copies, checks).
    pub overhead: SimTime,
    /// Time spent blocked (flag waits, receives, barriers, reductions).
    pub idle: SimTime,
    /// Time the cell finished its program.
    pub finish: SimTime,
}

impl CellTimes {
    /// Sum of the accounted buckets (≤ `finish`; untracked gaps are times
    /// when the CPU was free between events).
    pub fn accounted(&self) -> SimTime {
        self.exec + self.rts + self.overhead + self.idle
    }
}

/// Result of running one SPMD program on the emulator.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-cell program return values, indexed by cell.
    pub outputs: Vec<T>,
    /// Per-cell time breakdown.
    pub times: Vec<CellTimes>,
    /// Total simulated execution time (max cell finish time).
    pub total_time: SimTime,
    /// The recorded probe trace (empty ops if tracing was disabled).
    pub trace: aptrace::Trace,
    /// T-net statistics.
    pub tnet: apnet::tnet::TNetStats,
    /// Number of S-net barrier epochs.
    pub barriers: u64,
    /// Unified hardware counters: queue spills/refills, ring overflows,
    /// and the message-size / flag-wait / queue-occupancy / net-latency
    /// histograms.
    pub counters: apobs::Counters,
    /// Sim-time event timeline (empty unless
    /// [`MachineConfig::record_timeline`](crate::MachineConfig) was set);
    /// export with [`apobs::chrome_trace`].
    pub timeline: apobs::Timeline,
    /// The fault-injection report of a survived faulted run (`None` on
    /// fault-free runs). Unsurvivable schedules never get here — they
    /// abort with [`aputil::ApError::Fault`], which carries the report.
    pub fault: Option<aputil::FaultReport>,
    /// Sampled telemetry (`None` unless
    /// [`MachineConfig::metrics_interval`](crate::MachineConfig) was set):
    /// the gauge time series, torus heatmaps, per-link busy times, and
    /// host self-profiling.
    pub metrics: Option<Box<apmon::RunMetrics>>,
}

impl<T> RunReport<T> {
    /// Mean of a bucket across cells, as a fraction of total time.
    pub fn mean_fraction(&self, f: impl Fn(&CellTimes) -> SimTime) -> f64 {
        if self.times.is_empty() || self.total_time == SimTime::ZERO {
            return 0.0;
        }
        let sum: u128 = self.times.iter().map(|t| f(t).as_nanos() as u128).sum();
        sum as f64 / (self.times.len() as f64 * self.total_time.as_nanos() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounted_sums_buckets() {
        let t = CellTimes {
            exec: SimTime::from_nanos(10),
            rts: SimTime::from_nanos(5),
            overhead: SimTime::from_nanos(3),
            idle: SimTime::from_nanos(2),
            finish: SimTime::from_nanos(25),
        };
        assert_eq!(t.accounted().as_nanos(), 20);
    }
}

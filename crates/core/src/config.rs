//! Machine configuration.

use apnet::Contention;
use aputil::SimTime;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default for [`MachineConfig::record_timeline`], so CLI
/// flags like `--trace-out` can switch every subsequently-built machine to
/// timeline recording without threading a parameter through application
/// code.
static TIMELINE_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Sets the default value of [`MachineConfig::record_timeline`] for
/// configurations created after this call.
pub fn set_timeline_default(on: bool) {
    TIMELINE_DEFAULT.store(on, Ordering::Relaxed);
}

/// The current process-wide timeline default.
pub fn timeline_default() -> bool {
    TIMELINE_DEFAULT.load(Ordering::Relaxed)
}

/// Process-wide default for [`MachineConfig::metrics_interval`] in
/// nanoseconds; 0 means metrics off (same pattern as
/// [`set_timeline_default`], for the `--metrics-out` CLI flags).
static METRICS_INTERVAL_DEFAULT_NS: AtomicU64 = AtomicU64::new(0);

/// Sets the default sampled-metrics interval for configurations created
/// after this call (`None` turns sampling off).
pub fn set_metrics_default(interval: Option<SimTime>) {
    METRICS_INTERVAL_DEFAULT_NS.store(
        interval.map_or(0, |t| t.as_nanos().max(1)),
        Ordering::Relaxed,
    );
}

/// The current process-wide sampled-metrics default.
pub fn metrics_default() -> Option<SimTime> {
    match METRICS_INTERVAL_DEFAULT_NS.load(Ordering::Relaxed) {
        0 => None,
        ns => Some(SimTime::from_nanos(ns)),
    }
}

/// Process-wide default for [`MachineConfig::flight_recorder`]; 0 means
/// unbounded (classic) timeline recording.
static FLIGHT_RECORDER_DEFAULT: AtomicUsize = AtomicUsize::new(0);

/// Sets the default flight-recorder capacity (last-N events per unit
/// category) for configurations created after this call.
pub fn set_flight_recorder_default(cap: Option<NonZeroUsize>) {
    FLIGHT_RECORDER_DEFAULT.store(cap.map_or(0, NonZeroUsize::get), Ordering::Relaxed);
}

/// The current process-wide flight-recorder default.
pub fn flight_recorder_default() -> Option<NonZeroUsize> {
    NonZeroUsize::new(FLIGHT_RECORDER_DEFAULT.load(Ordering::Relaxed))
}

/// Process-wide default for [`MachineConfig::sim_threads`] (the
/// `--sim-threads` CLI flag): 1 keeps the classic serial event loop, 2+
/// selects the conservative time-windowed PDES engine (DESIGN.md §10).
static SIM_THREADS_DEFAULT: AtomicU64 = AtomicU64::new(1);

/// Sets the default simulation-thread count for configurations created
/// after this call (clamped to at least 1).
pub fn set_sim_threads_default(threads: u32) {
    SIM_THREADS_DEFAULT.store(threads.max(1) as u64, Ordering::Relaxed);
}

/// The current process-wide simulation-thread default.
pub fn sim_threads_default() -> u32 {
    SIM_THREADS_DEFAULT.load(Ordering::Relaxed).max(1) as u32
}

/// Process-wide progress-reporting switch (the `--progress` CLI flag):
/// when on, runs print a rate-limited one-line status to stderr.
static PROGRESS_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Enables or disables live progress reporting for subsequent runs.
pub fn set_progress_default(on: bool) {
    PROGRESS_DEFAULT.store(on, Ordering::Relaxed);
}

/// The current process-wide progress default.
pub fn progress_default() -> bool {
    PROGRESS_DEFAULT.load(Ordering::Relaxed)
}

/// Process-wide streaming event sink: when set (by `repro record` on
/// machines too large for an in-memory timeline), every subsequently
/// built machine forwards its timeline events straight to this sink
/// instead of buffering them — O(1) recording memory at any cell count.
/// The owner of the concrete writer keeps its own handle for
/// finalization; this global only carries the type-erased sink into
/// `Machine::new`.
static EVTRACE_SINK: Mutex<Option<apobs::SharedSink>> = Mutex::new(None);

/// Sets (or clears) the process-wide streaming event sink.
pub fn set_evtrace_sink(sink: Option<apobs::SharedSink>) {
    *EVTRACE_SINK.lock().expect("evtrace sink registry poisoned") = sink;
}

/// The current streaming event sink, if any.
pub fn evtrace_sink() -> Option<apobs::SharedSink> {
    EVTRACE_SINK
        .lock()
        .expect("evtrace sink registry poisoned")
        .clone()
}

/// Where to dump the flight-recorder timeline when a run dies with a
/// deadlock / lost-cell / fault error. `None` (the default) disables the
/// automatic post-mortem dump.
static FLIGHT_DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Sets (or clears) the automatic post-mortem flight-recorder dump path.
pub fn set_flight_dump_path(path: Option<PathBuf>) {
    *FLIGHT_DUMP_PATH
        .lock()
        .expect("flight dump registry poisoned") = path;
}

/// The current post-mortem dump path, if any.
pub fn flight_dump_path() -> Option<PathBuf> {
    FLIGHT_DUMP_PATH
        .lock()
        .expect("flight dump registry poisoned")
        .clone()
}

/// Hardware timing parameters of the emulated AP1000+ (per-cell MSC+/MC
/// costs plus the network constants). Defaults follow the paper's AP1000+
/// numbers (Table 1, Figure 6 right column, §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwParams {
    /// Time for one abstract floating-point operation on the cell CPU.
    /// SuperSPARC at 50 MFLOPS (Table 1) ⇒ 20 ns.
    pub flop_time: SimTime,
    /// Time per abstract run-time-system unit (VPP Fortran address
    /// arithmetic etc., executed on the CPU).
    pub rts_unit_time: SimTime,
    /// CPU time to issue one PUT/GET: writing the 8 parameter words into
    /// the MSC+ queue (§4.1 says ≈8 stores; Figure 6's AP1000+ model
    /// charges `put_prolog_time` = 1.0 µs for the whole user-level issue).
    pub issue_time: SimTime,
    /// MSC+ DMA setup per transfer (`put_dma_set_time` / `recv_dma_set_time`
    /// = 0.5 µs in Figure 6).
    pub dma_set_time: SimTime,
    /// DMA streaming time per byte (`put_msg_time` 0.05 µs per 4-byte word
    /// ⇒ 12.5 ns/B; we keep the per-byte form).
    pub dma_per_byte: SimTime,
    /// Extra per-item setup of the stride engine (one descriptor step per
    /// item; "the overhead of stride data transfer is the cost of a few
    /// store instructions", §4.1).
    pub stride_item_time: SimTime,
    /// CPU time for one flag-value check (`flag_check` in Figure 7).
    pub flag_check_time: SimTime,
    /// MC fetch-and-increment latency.
    pub flag_update_time: SimTime,
    /// S-net hardware barrier latency.
    pub barrier_latency: SimTime,
    /// CPU time to store to a (possibly remote) communication register.
    pub reg_store_time: SimTime,
    /// CPU time for a communication-register load that finds the p-bit set.
    pub reg_load_time: SimTime,
    /// Per-byte cost of the RECEIVE-side ring-buffer copy into the user
    /// area (the intrinsic SEND/RECEIVE buffering overhead, §1.3).
    pub recv_copy_per_byte: SimTime,
    /// CPU time of the SEND library call itself (blocking until the send
    /// DMA completes, §5.4).
    pub send_call_time: SimTime,
    /// T-net per-message prolog (`network_prolog_time` = 0.16 µs).
    pub net_prolog: SimTime,
    /// T-net per-hop delay (`network_delay_time` = 0.16 µs).
    pub net_per_hop: SimTime,
    /// T-net per-byte serialization (25 MB/s channels ⇒ 40 ns/B).
    pub net_per_byte: SimTime,
    /// B-net per-byte serialization (50 MB/s ⇒ 20 ns/B).
    pub bnet_per_byte: SimTime,
    /// OS interrupt service time for queue-spill refills (§4.1).
    pub os_interrupt_time: SimTime,
    /// Ring-buffer bytes before the MSC+ interrupts the OS to allocate a
    /// new buffer (§4.3: "If the ring buffer becomes full, the MSC+
    /// interrupts the operating system, which then allocates a new
    /// buffer").
    pub ring_capacity: u64,
}

impl Default for HwParams {
    fn default() -> Self {
        HwParams {
            flop_time: SimTime::from_nanos(20),
            rts_unit_time: SimTime::from_micros_f64(0.5),
            issue_time: SimTime::from_micros_f64(1.0),
            dma_set_time: SimTime::from_micros_f64(0.5),
            dma_per_byte: SimTime::from_nanos(12),
            stride_item_time: SimTime::from_nanos(40),
            flag_check_time: SimTime::from_micros_f64(0.2),
            flag_update_time: SimTime::from_nanos(100),
            barrier_latency: SimTime::from_micros_f64(1.0),
            reg_store_time: SimTime::from_micros_f64(0.5),
            reg_load_time: SimTime::from_micros_f64(0.5),
            recv_copy_per_byte: SimTime::from_nanos(20),
            send_call_time: SimTime::from_micros_f64(1.0),
            net_prolog: SimTime::from_micros_f64(0.16),
            net_per_hop: SimTime::from_micros_f64(0.16),
            net_per_byte: SimTime::from_nanos(40),
            bnet_per_byte: SimTime::from_nanos(20),
            os_interrupt_time: SimTime::from_micros_f64(20.0),
            ring_capacity: 64 << 10,
        }
    }
}

/// Full configuration of an emulated machine.
///
/// # Examples
///
/// ```
/// use apcore::MachineConfig;
///
/// let cfg = MachineConfig::new(16);
/// assert_eq!(cfg.ncells, 16);
/// assert!(cfg.mem_size >= 1 << 20);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of cells (the AP1000+ scales 4–1024; we also allow smaller
    /// machines for tests).
    pub ncells: u32,
    /// DRAM bytes per cell (16 MB or 64 MB on the real machine).
    pub mem_size: u64,
    /// Hardware timing parameters.
    pub hw: HwParams,
    /// T-net contention model.
    pub contention: Contention,
    /// Record a probe trace while running (small overhead; required for
    /// MLSim replay and Table-3 statistics).
    pub record_trace: bool,
    /// Record a sim-time event timeline (for Chrome-trace/Perfetto export).
    /// Off by default: a disabled recorder is a single branch per event.
    pub record_timeline: bool,
    /// Sampled-metrics interval: take one gauge snapshot per this much sim
    /// time. `None` (the default) disables the sampler entirely.
    pub metrics_interval: Option<SimTime>,
    /// Bound `record_timeline` to a flight recorder keeping only the last
    /// N events per unit category per cell (memory stays O(cells), not
    /// O(events)). `None` keeps the classic unbounded timeline.
    pub flight_recorder: Option<NonZeroUsize>,
    /// Simulation-thread count: 1 runs the classic serial event loop; 2+
    /// partitions the torus into rectangular tiles and runs the
    /// conservative time-windowed PDES engine (DESIGN.md §10), which is
    /// byte-identical to the serial loop in every observable output.
    pub sim_threads: u32,
}

impl MachineConfig {
    /// A machine of `ncells` cells with default (paper) parameters and
    /// 16 MB of DRAM per cell.
    ///
    /// # Panics
    ///
    /// Panics if `ncells` is 0 or exceeds 65536.
    pub fn new(ncells: u32) -> Self {
        assert!(
            (1..=65536).contains(&ncells),
            "AP1000+ systems have 1..=1024 cells (the emulator accepts up to 65536), got {ncells}"
        );
        MachineConfig {
            ncells,
            mem_size: 16 << 20,
            hw: HwParams::default(),
            contention: Contention::None,
            record_trace: true,
            // A flight-recorder default implies recording (into the ring),
            // mirroring `with_flight_recorder`.
            record_timeline: timeline_default() || flight_recorder_default().is_some(),
            metrics_interval: metrics_default(),
            flight_recorder: flight_recorder_default(),
            sim_threads: sim_threads_default(),
        }
    }

    /// Sets the DRAM size per cell.
    pub fn with_mem_size(mut self, bytes: u64) -> Self {
        self.mem_size = bytes;
        self
    }

    /// Sets the hardware parameters.
    pub fn with_hw(mut self, hw: HwParams) -> Self {
        self.hw = hw;
        self
    }

    /// Sets the T-net contention model.
    pub fn with_contention(mut self, c: Contention) -> Self {
        self.contention = c;
        self
    }

    /// Enables or disables trace recording.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Enables or disables timeline (Chrome-trace) event recording.
    pub fn with_timeline(mut self, on: bool) -> Self {
        self.record_timeline = on;
        self
    }

    /// Sets the sampled-metrics interval (`None` disables sampling).
    pub fn with_metrics_interval(mut self, interval: Option<SimTime>) -> Self {
        self.metrics_interval = interval;
        self
    }

    /// Bounds timeline recording to a flight recorder of `cap` events per
    /// unit category per cell (`None` restores the unbounded timeline).
    /// Implies [`MachineConfig::record_timeline`] when set.
    pub fn with_flight_recorder(mut self, cap: Option<NonZeroUsize>) -> Self {
        self.flight_recorder = cap;
        if cap.is_some() {
            self.record_timeline = true;
        }
        self
    }

    /// Sets the simulation-thread count (clamped to at least 1).
    pub fn with_sim_threads(mut self, threads: u32) -> Self {
        self.sim_threads = threads.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let hw = HwParams::default();
        assert_eq!(hw.flop_time.as_nanos(), 20, "50 MFLOPS SuperSPARC");
        assert_eq!(hw.net_prolog.as_nanos(), 160);
        assert_eq!(hw.issue_time.as_micros_f64(), 1.0);
        assert_eq!(hw.dma_set_time.as_micros_f64(), 0.5);
    }

    #[test]
    fn builder_chains() {
        let cfg = MachineConfig::new(8)
            .with_mem_size(1 << 22)
            .with_trace(false)
            .with_contention(Contention::Ports);
        assert_eq!(cfg.mem_size, 1 << 22);
        assert!(!cfg.record_trace);
        assert_eq!(cfg.contention, Contention::Ports);
    }

    #[test]
    #[should_panic(expected = "1..=1024")]
    fn zero_cells_panics() {
        let _ = MachineConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "1..=1024")]
    fn oversized_machine_panics() {
        let _ = MachineConfig::new(65537);
    }

    #[test]
    fn huge_machines_are_configurable() {
        // Paper hardware tops out at 1024, but the emulator accepts up to
        // 65536 cells for scaling studies (memory is lazily allocated).
        let cfg = MachineConfig::new(4096);
        assert_eq!(cfg.ncells, 4096);
    }

    #[test]
    fn metrics_and_flight_recorder_builders() {
        let cfg = MachineConfig::new(4)
            .with_metrics_interval(Some(SimTime::from_micros_f64(10.0)))
            .with_flight_recorder(NonZeroUsize::new(64));
        assert_eq!(cfg.metrics_interval, Some(SimTime::from_micros_f64(10.0)));
        assert_eq!(cfg.flight_recorder, NonZeroUsize::new(64));
        assert!(
            cfg.record_timeline,
            "a flight recorder implies timeline recording"
        );
        let off = MachineConfig::new(4);
        assert_eq!(off.metrics_interval, None);
        assert_eq!(off.flight_recorder, None);
    }

    #[test]
    fn sim_threads_defaults_to_serial_and_clamps() {
        assert_eq!(MachineConfig::new(4).sim_threads, 1);
        assert_eq!(MachineConfig::new(4).with_sim_threads(0).sim_threads, 1);
        assert_eq!(MachineConfig::new(4).with_sim_threads(8).sim_threads, 8);
    }
}

//! # apcore — the AP1000+ machine emulator and PUT/GET interface
//!
//! This crate is the heart of the reproduction of *"AP1000+: Architectural
//! Support of PUT/GET Interface for Parallelizing Compiler"* (ASPLOS'94):
//! a deterministic, functional + timing emulator of the AP1000+ machine
//! and the SPMD programming interface the paper's compilers target.
//!
//! A program is an ordinary Rust closure run once per cell; it talks to
//! the machine through a [`Cell`] handle offering `put`/`get` (plain and
//! strided), completion flags, SEND/RECEIVE ring buffers, S-net barriers,
//! communication-register reductions, B-net broadcast, and DSM remote
//! load/store. Data really moves between simulated memories — programs
//! compute real answers — while the kernel simultaneously tracks simulated
//! time through MSC+ queues, DMA engines, and the T-net torus.
//!
//! # Examples
//!
//! Every even cell PUTs eight bytes to its right neighbour, which waits on
//! the receive flag:
//!
//! ```
//! use apcore::{run_with, MachineConfig};
//!
//! let report = run_with(MachineConfig::new(4), |cell| {
//!     let buf = cell.alloc::<f64>(1);
//!     let flag = cell.alloc_flag();
//!     let me = cell.id();
//!     let n = cell.ncells();
//!     cell.write_pod(buf, me as f64);
//!     cell.barrier();
//!     // Ring shift: PUT my value into my right neighbour's buffer.
//!     cell.put((me + 1) % n, buf, buf, 8, aputil::VAddr::NULL, flag, false);
//!     cell.wait_flag(flag, 1);
//!     cell.read_pod::<f64>(buf)
//! })
//! .unwrap();
//! // Cell i now holds the value of its left neighbour.
//! assert_eq!(report.outputs, vec![3.0, 0.0, 1.0, 2.0]);
//! ```

pub mod accounting;
pub mod cell;
pub mod config;
mod kernel;
mod machine;
pub mod pdes;
mod request;

pub use accounting::{CellTimes, RunReport};
pub use cell::{Cell, ReduceOp};
pub use config::{
    evtrace_sink, flight_dump_path, flight_recorder_default, metrics_default, progress_default,
    set_evtrace_sink, set_flight_dump_path, set_flight_recorder_default, set_metrics_default,
    set_progress_default, set_sim_threads_default, set_timeline_default, sim_threads_default,
    timeline_default, HwParams, MachineConfig,
};
pub use request::Mark;

// Re-export the vocabulary types users need at the API boundary.
pub use apfault::{FaultEvent, FaultKind, FaultSpec, RecoveryParams};
pub use apmon::{Heatmap, HostProf, LinkUtil, MetricsSeries, RunMetrics};
pub use apmsc::StrideSpec;
pub use apobs::{Counters, Timeline};
pub use aputil::{
    ApError, ApResult, BlockReason, BlockedCell, CellId, CellLostReport, DeadlockReport,
    FaultReport, SimTime, VAddr,
};

use crossbeam::channel::unbounded;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

/// Runs `program` as an SPMD job: one copy per cell, in simulated
/// lockstep. Returns the per-cell outputs, the time breakdown, the probe
/// trace, and machine statistics.
///
/// # Errors
///
/// * [`ApError::PageFault`] / [`ApError::OutOfRange`] — a program handed
///   the hardware an illegal address (the paper's protection check).
/// * [`ApError::Deadlock`] — every cell is blocked and no hardware events
///   remain.
/// * [`ApError::CellFailed`] — a program panicked.
/// * [`ApError::InvalidArg`] — malformed PUT/GET descriptors, mismatched
///   collectives, or reduction-protocol violations.
///
/// # Examples
///
/// ```
/// use apcore::{run_with, MachineConfig};
///
/// let sums = run_with(MachineConfig::new(8), |cell| {
///     cell.reduce_sum_f64(cell.id() as f64)
/// })
/// .unwrap();
/// assert!(sums.outputs.iter().all(|&s| s == 28.0));
/// ```
pub fn run_with<T, F>(cfg: MachineConfig, program: F) -> ApResult<RunReport<T>>
where
    T: Send + 'static,
    F: Fn(&mut Cell) -> T + Send + Sync + 'static,
{
    run_with_faults(cfg, None, program)
}

/// Like [`run_with`], but with a deterministic fault schedule injected.
///
/// With `faults` set, every non-loopback packet travels in a
/// sequence-numbered, checksummed envelope: the receiver acknowledges it,
/// the sender retransmits on a capped-exponential-backoff timeout, the
/// receiver suppresses replayed duplicates, and the T-net detours around
/// discovered link outages via the deterministic Y-then-X route. A
/// survived run carries its [`aputil::FaultReport`] in
/// [`RunReport::fault`]; an unsurvivable schedule (a fail-stop crash, or
/// an outage outlasting the retry budget) aborts with
/// [`ApError::Fault`] / [`ApError::BarrierAborted`] instead of hanging.
/// `faults: None` is exactly [`run_with`] — same events, same times.
///
/// # Errors
///
/// Everything [`run_with`] raises, plus [`ApError::Fault`],
/// [`ApError::CellLost`], and [`ApError::BarrierAborted`] under an
/// unsurvivable schedule.
///
/// # Examples
///
/// ```
/// use apcore::{run_with_faults, FaultSpec, MachineConfig};
///
/// // A quiet schedule changes nothing but attaches a (empty) report.
/// let spec = FaultSpec::quiet();
/// let r = run_with_faults(MachineConfig::new(4), Some(&spec), |cell| cell.id()).unwrap();
/// assert!(r.fault.unwrap().survived());
/// ```
pub fn run_with_faults<T, F>(
    cfg: MachineConfig,
    faults: Option<&FaultSpec>,
    program: F,
) -> ApResult<RunReport<T>>
where
    T: Send + 'static,
    F: Fn(&mut Cell) -> T + Send + Sync + 'static,
{
    // An unbounded timeline on a huge machine is O(events) memory with no
    // bound — refuse it up front and point at the flight recorder (bounded
    // post-mortem context) or the streaming trace sink (full recording in
    // O(1) memory), either of which lifts the refusal.
    if cfg.record_timeline
        && cfg.flight_recorder.is_none()
        && cfg.ncells > 1024
        && config::evtrace_sink().is_none()
    {
        return Err(ApError::InvalidArg(format!(
            "full timeline recording on {} cells is unbounded; use a flight recorder \
             (MachineConfig::with_flight_recorder / --flight-recorder) or a streaming \
             trace sink (set_evtrace_sink / repro record) for machines over 1024 cells",
            cfg.ncells
        )));
    }
    let machine = machine::Machine::new(cfg);
    let (req_tx, req_rx) = unbounded();
    let program = Arc::new(program);
    // Wide batching is the cell-side half of the windowed engine: only
    // worth it when the kernel can overlap the posted work, and kept off
    // under fault injection so a lost cell's blocked-on request in the
    // post-mortem report matches the classic serial engine.
    let wide_batch = cfg.sim_threads > 1 && faults.is_none();
    let mut resume_txs = Vec::with_capacity(cfg.ncells as usize);
    let mut handles = Vec::with_capacity(cfg.ncells as usize);
    for id in 0..cfg.ncells {
        let (resume_tx, resume_rx) = unbounded();
        resume_txs.push(resume_tx);
        let req_tx = req_tx.clone();
        let program = Arc::clone(&program);
        let ncells = cfg.ncells;
        handles.push(
            thread::Builder::new()
                .name(format!("cell{id}"))
                .spawn(move || -> Result<T, String> {
                    let mut cell =
                        Cell::new(CellId::new(id), ncells, req_tx, resume_rx, wide_batch);
                    cell.wait_boot();
                    match catch_unwind(AssertUnwindSafe(|| program(&mut cell))) {
                        Ok(out) => {
                            cell.finish();
                            Ok(out)
                        }
                        Err(payload) => {
                            let reason = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "panic".to_string());
                            cell.fail(reason.clone());
                            Err(reason)
                        }
                    }
                })
                .expect("spawn cell thread"),
        );
    }
    drop(req_tx);

    let mut kernel = kernel::Kernel::new(machine, resume_txs, req_rx).with_faults(faults);
    let run_result = kernel.run();
    let fault = kernel.take_fault_report();
    let series = kernel.take_metrics();
    let hostprof = kernel.take_hostprof();
    let (machine, resume_txs) = kernel.into_parts();
    // Unblock any threads still parked on their resume channels.
    drop(resume_txs);
    let mut machine = machine;

    // Post-mortem: on the failure modes a flight recorder exists for,
    // dump whatever timeline context survived before propagating the
    // error (best-effort — the error itself must still reach the caller).
    if let Err(e) = &run_result {
        if matches!(
            e,
            ApError::Deadlock(_) | ApError::CellLost(_) | ApError::Fault(_)
        ) {
            if let Some(path) = config::flight_dump_path() {
                let timeline = machine.take_timeline();
                if !timeline.events.is_empty() {
                    match apobs::write_chrome_trace(&path, &[&timeline]) {
                        Ok(()) => eprintln!(
                            "flight recorder: dumped {} events to {}",
                            timeline.events.len(),
                            path.display()
                        ),
                        Err(io) => {
                            eprintln!("flight recorder: failed to write {}: {io}", path.display())
                        }
                    }
                }
            }
        }
    }

    let mut outputs = Vec::with_capacity(handles.len());
    let mut failures: Vec<(CellId, String)> = Vec::new();
    for (id, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(out)) => outputs.push(out),
            Ok(Err(reason)) => failures.push((CellId::new(id as u32), reason)),
            Err(_) => {
                failures.push((
                    CellId::new(id as u32),
                    "program thread panicked".to_string(),
                ));
            }
        }
    }

    let total_time = run_result?;
    // Report every failed cell, not just the first one found.
    match failures.len() {
        0 => {}
        1 => {
            let (cell, reason) = failures.remove(0);
            return Err(ApError::CellFailed { cell, reason });
        }
        _ => return Err(ApError::CellsFailed { failures }),
    }

    let mut counters = machine.collect_counters();
    if let Some(r) = &fault {
        counters.retries = r.total_retries();
        counters.drops = r.drops;
        counters.corrupt_detected = r.corrupt_detected;
        counters.dup_suppressed = r.dup_suppressed;
        counters.detours = r.detours;
        counters.acks = r.acks;
    }
    let timeline = machine.take_timeline();
    let metrics =
        series.map(|series| Box::new(assemble_metrics(series, hostprof, &machine, total_time)));
    Ok(RunReport {
        outputs,
        times: machine.times,
        total_time,
        trace: machine.trace,
        tnet: machine.tnet.stats(),
        barriers: machine.snet.epochs(),
        counters,
        timeline,
        fault,
        metrics,
    })
}

/// Builds the end-of-run [`RunMetrics`] block: the sampled series plus
/// torus heatmaps (per-cell busy fraction, per-cell outgoing-link
/// utilization), the sorted per-link busy table, and host self-profiling.
fn assemble_metrics(
    series: MetricsSeries,
    host: Option<HostProf>,
    machine: &machine::Machine,
    total_time: SimTime,
) -> RunMetrics {
    let torus = machine.tnet.torus();
    let (w, h) = torus.dims();
    let total_ns = total_time.as_nanos().max(1) as f64;
    let busy: Vec<f64> = machine
        .times
        .iter()
        .map(|t| (t.exec + t.rts + t.overhead).as_nanos() as f64 / total_ns)
        .collect();
    let cell_busy = (busy.len() == (w * h) as usize)
        .then(|| Heatmap::new("cell busy fraction", w as usize, h as usize, busy));
    let per_link = machine.tnet.link_busy_per_link();
    // Fold each directed link's busy time onto its transmitting cell; a
    // torus cell drives 4 outgoing links (2 on degenerate 1-wide or
    // 1-tall rings, but the fraction stays comparable within one map).
    let mut out_busy = vec![0.0f64; (w * h) as usize];
    for &(from, _, t) in &per_link {
        if let Some(slot) = out_busy.get_mut(from.index()) {
            *slot += t.as_nanos() as f64;
        }
    }
    let deg = |d: u32| -> f64 {
        match d {
            1 => 0.0,
            2 => 1.0, // both wrap directions reach the same neighbour
            _ => 2.0,
        }
    };
    let links_per_cell = (deg(w) + deg(h)).max(1.0);
    for v in &mut out_busy {
        *v /= total_ns * links_per_cell;
    }
    let link_util = (!per_link.is_empty())
        .then(|| Heatmap::new("link utilization", w as usize, h as usize, out_busy));
    RunMetrics {
        series,
        cell_busy,
        link_util,
        links: per_link
            .into_iter()
            .map(|(from, to, t)| LinkUtil {
                from: from.as_u32(),
                to: to.as_u32(),
                busy_ns: t.as_nanos(),
            })
            .collect(),
        host,
        final_time: total_time,
    }
}

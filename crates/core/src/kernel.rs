//! The deterministic simulation kernel.
//!
//! One kernel thread owns the whole [`Machine`]; cell programs run on their
//! own host threads but only ever one at a time: the kernel wakes a cell by
//! sending it a [`Response`], then blocks until that cell's next
//! [`Request`] arrives. All hardware activity (DMA, packets, flags,
//! barriers) is driven through a single time-ordered event queue with FIFO
//! tie-breaking, so a given program and configuration always produces the
//! identical execution.

use crate::machine::{ActiveTx, Machine, TxEntry, TxJob};
use crate::pdes::TilePlan;
use crate::request::{Mark, Request, Response};
use apfault::{FaultPlan, FaultSpec, ReplayGuard};
use apmon::{HostPhase, HostProf, MetricsSample, MetricsSeries, Progress, Sampler};
use apmsc::{checksum, Packet, Payload, PushOutcome, HEADER_BYTES};
use apnet::Delivery;
use apobs::{Bucket, Unit, XferKind, XferLat};
use apsim::{Clock, EventQueue};
use aptrace::Op;
use aputil::{
    ApError, ApResult, BlockReason, BlockedCell, CellId, CellLostReport, DeadlockReport,
    DeliveryFailure, FaultReport, SimTime, VAddr,
};
use crossbeam::channel::{Receiver, Sender};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Dispatch-window width of the PDES engine, in units of the cross-tile
/// lookahead. Any value is *safe* — events commit in canonical order
/// regardless — so this only controls how many cell programs can be
/// computing concurrently between frontier advances. Chosen by
/// measuring the 1024-cell CG scaling curve (EXPERIMENTS.md).
const WINDOW_MULT: u32 = 64;

/// Kernel events.
#[derive(Debug)]
enum Ev {
    /// Deliver `resp` to `cell` and take its next request.
    Wake { cell: u32, resp: Response },
    /// Try to start the send DMA of `cell`.
    SendPop { cell: u32 },
    /// `cell`'s send DMA finished its active job.
    SendDone { cell: u32 },
    /// A packet reached `dst`'s MSC+ (`tid` = transfer-chain id).
    Arrive { dst: u32, pkt: Packet, tid: u64 },
    /// `dst`'s receive DMA finished landing a packet.
    RecvDone { dst: u32, pkt: Packet, tid: u64 },
    /// Fault layer: a sequence-numbered envelope reached `dst`'s MSC+.
    /// `tag` is the FNV checksum the sender stamped (possibly flipped in
    /// flight by an injected corruption).
    ArriveF {
        dst: u32,
        src: u32,
        seq: u64,
        tag: u32,
        pkt: Packet,
        tid: u64,
    },
    /// Fault layer: the hardware ack for envelope `seq` reached its
    /// original sender.
    AckArrive { seq: u64 },
    /// Fault layer: retransmission timer for envelope `seq`, armed when
    /// transmission attempt `attempt` departed. Stale once the envelope
    /// is acknowledged (or superseded by a later attempt's timer).
    RetryTimeout { seq: u64, attempt: u32 },
    /// Fault layer: fail-stop crash of `cell`.
    Crash { cell: u32 },
}

/// An envelope awaiting its ack: everything needed to retransmit it.
struct Outstanding {
    src: CellId,
    dst: CellId,
    pkt: Packet,
    tid: u64,
    /// Transmissions so far (1 after the first send).
    attempts: u32,
}

/// The kernel's fault-injection and recovery state (absent on fault-free
/// runs, which keeps their event stream byte-identical).
struct FaultState {
    plan: FaultPlan,
    /// Last sequence number assigned (global, so `(src, seq)` dedup keys
    /// are unique machine-wide).
    next_seq: u64,
    outstanding: HashMap<u64, Outstanding>,
    replay: ReplayGuard,
    /// Cells taken down by a fail-stop crash.
    dead: Vec<bool>,
}

/// Which of a cell's four MSC+ transmit queues to enqueue into.
#[derive(Clone, Copy, Debug)]
enum TxQueue {
    User,
    Remote,
    GetReply,
    RemoteReply,
}

/// An in-flight transfer's latency record plus its attribution cursor —
/// the sim time up to which the end-to-end latency has been segmented.
/// Stages that overlap earlier ones (the emulator lets a DMA start while
/// the issuing CPU span is still open) charge only the uncovered
/// remainder, so the segments stay contiguous and sum exactly to the
/// total.
struct InFlight {
    x: XferLat,
    cursor: SimTime,
}

/// Figure-6 latency segment a stage charges its time to.
#[derive(Clone, Copy, Debug)]
enum Seg {
    Issue,
    Queue,
    Dma,
    Net,
    Delivery,
}

/// Why a cell is blocked, with everything needed to wake it. A blocked
/// cell waits on exactly one thing, so one slot per cell replaces the old
/// per-reason maps: a wakeup is an indexed slot probe instead of a keyed
/// (or, for the deadlock report, linear) map search, and iteration for
/// the barrier release runs in cell-id order — deterministic, unlike
/// draining a hash map.
#[derive(Clone, Debug)]
enum Waiter {
    /// `wait_flag` until the flag at `flag` reaches `target`.
    Flag {
        flag: u64,
        target: u32,
        since: SimTime,
    },
    /// Blocking RECEIVE from `src`.
    Recv {
        src: CellId,
        laddr: VAddr,
        max: u64,
        since: SimTime,
    },
    /// Blocking communication-register load (p-bit retry).
    Reg { reg: u16, since: SimTime },
    /// `remote_fence` until all remote stores are acknowledged.
    Fence { since: SimTime },
    /// Blocking DSM remote load.
    Load { since: SimTime },
    /// Blocking SEND, until the send DMA drains the buffer.
    Send { since: SimTime },
    /// Arrived at the S-net barrier.
    Barrier { since: SimTime },
    /// Arrived at the B-net broadcast collective.
    Bcast { since: SimTime },
}

#[derive(Clone, Debug)]
struct BcastState {
    root: CellId,
    bytes: u64,
    arrived: Vec<(u32, VAddr, SimTime)>,
}

/// State of the conservative time-windowed PDES engine (DESIGN.md §10).
///
/// The kernel keeps popping and committing events in the exact serial
/// `(time, seq)` order, so every observable output — timelines, sampler
/// ticks, op traces, final times — is byte-identical to the serial
/// engine *by construction*. Parallelism comes from **eager wake
/// delivery**: a `Wake`'s response content is fixed at schedule time,
/// the program observes nothing but its own responses, and at most one
/// wake per cell is ever in flight — so the response can be handed to
/// the program thread as soon as the sliding dispatch window covers the
/// wake's time. All released programs then compute concurrently on
/// their own host threads while the kernel continues committing; their
/// next requests are stashed and consumed when each wake commits.
struct Eager {
    /// Rectangular tile partition of the torus. Two or more tiles are
    /// what give a *finite* cross-tile lookahead (packets between
    /// tiles spend at least `prolog + per_hop` in the T-net); the plan
    /// is also reported in the scaling artifact.
    plan: TilePlan,
    /// Dispatch-window width (lookahead × [`WINDOW_MULT`]).
    window: SimTime,
    /// Current window edge: wakes at or before this time may have
    /// their response released ahead of commit.
    horizon: SimTime,
    /// Wakes scheduled past the horizon, ordered by `(time, cell)`.
    parked: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// A parked wake's response, held until the window reaches it.
    resp: Vec<Option<Response>>,
    /// Cells whose response went out ahead of the wake's commit.
    sent: Vec<bool>,
    /// Requests that arrived on the shared channel ahead of their
    /// wake's commit. A pipelining cell (`Cell::call_pipelined`) ships
    /// several synchronous requests back-to-back, so each cell gets a
    /// FIFO queue; commits consume it in arrival order, which is the
    /// program's issue order.
    stash: Vec<std::collections::VecDeque<Request>>,
    /// Diagnostics (printed when `AP_EAGER_STATS` is set): eagerly sent
    /// at insert, parked then released, serial fallbacks at commit,
    /// stash hits, and blocking channel reads at commit.
    stats: [u64; 5],
}

pub(crate) struct Kernel {
    pub machine: Machine,
    evq: EventQueue<Ev>,
    clock: Clock,
    resume_tx: Vec<Sender<Response>>,
    req_rx: Receiver<(u32, Request)>,
    /// Per-cell block state (`None` = runnable or done).
    waiters: Vec<Option<Waiter>>,
    /// Posted (asynchronous) requests a cell batched with its next
    /// synchronous call, not yet retired. Dispatched one per wake, at
    /// exactly the times the unbatched protocol would have — the channel
    /// round trip is skipped, not the simulated schedule.
    pending: Vec<std::collections::VecDeque<Request>>,
    /// In-flight PUT/GET Figure-6 latency decompositions, by transfer id.
    xfers: HashMap<u64, InFlight>,
    bcast: Option<BcastState>,
    done: u32,
    /// Per-cell: the program called Finish (distinguishes finished cells
    /// from crashed ones when a fault schedule is active).
    finished: Vec<bool>,
    /// Per-cell: name of the last request dispatched, for the
    /// [`CellLostReport`] raised when a program thread dies.
    last_req: Vec<Option<&'static str>>,
    /// Fault-injection state; `None` on fault-free runs.
    fault: Option<FaultState>,
    /// Sampled-metrics engine (`None` unless `cfg.metrics_interval` is
    /// set, which keeps the metrics-off hot path one branch per event).
    sampler: Option<Sampler>,
    /// Host wall-clock self-profiling of the event loop; runs alongside
    /// the sampler. Never influences simulated time.
    hostprof: Option<HostProf>,
    /// Kernel events handled so far (cumulative; also drives the 1-in-64
    /// host-timing subsample).
    events_handled: u64,
    /// Live one-line progress reporting (the `--progress` flag).
    progress: Option<Progress>,
    /// Windowed PDES engine; `None` runs the classic serial protocol
    /// (one channel round trip per wake).
    eager: Option<Eager>,
}

impl Kernel {
    pub fn new(
        machine: Machine,
        resume_tx: Vec<Sender<Response>>,
        req_rx: Receiver<(u32, Request)>,
    ) -> Self {
        let n = machine.cells.len();
        let mut evq = EventQueue::new();
        // Boot: hand each cell its first baton at t = 0 in id order.
        for cell in 0..n as u32 {
            evq.push(
                SimTime::ZERO,
                Ev::Wake {
                    cell,
                    resp: Response::Unit,
                },
            );
        }
        let sampler = machine.cfg.metrics_interval.map(Sampler::new);
        let hostprof = sampler.as_ref().map(|_| HostProf::start());
        let progress = crate::config::progress_default()
            .then(|| Progress::new(format!("{}c", machine.cfg.ncells)));
        // The windowed engine needs at least two tiles (a single tile
        // has no boundary and hence no finite lookahead) — which a
        // one-cell machine can never form.
        let eager = (machine.cfg.sim_threads > 1 && n > 1)
            .then(|| {
                let (w, h) = machine.tnet.torus().dims();
                let plan = TilePlan::new(w, h, machine.cfg.sim_threads);
                let lookahead = machine.tnet.params().min_crossing_latency();
                Eager {
                    plan,
                    window: crate::pdes::window(lookahead, WINDOW_MULT),
                    horizon: SimTime::ZERO,
                    parked: BinaryHeap::new(),
                    resp: (0..n).map(|_| None).collect(),
                    sent: vec![false; n],
                    stash: vec![std::collections::VecDeque::new(); n],
                    stats: [0; 5],
                }
            })
            // A degenerate partition (one tile) has no boundary and no
            // finite lookahead; only the serial engine is sound there.
            .filter(|e| e.plan.ntiles() > 1);
        Kernel {
            machine,
            evq,
            clock: Clock::new(),
            resume_tx,
            req_rx,
            waiters: vec![None; n],
            pending: vec![std::collections::VecDeque::new(); n],
            xfers: HashMap::new(),
            bcast: None,
            done: 0,
            finished: vec![false; n],
            last_req: vec![None; n],
            fault: None,
            sampler,
            hostprof,
            events_handled: 0,
            progress,
            eager,
        }
    }

    /// Arms a fault schedule: every non-loopback packet now travels in a
    /// sequence-numbered, checksummed, acknowledged envelope, and the
    /// schedule's crashes are queued as sim-time events. `None` leaves the
    /// kernel on the fault-free fast path.
    pub fn with_faults(mut self, spec: Option<&FaultSpec>) -> Self {
        if let Some(spec) = spec {
            let n = self.machine.cells.len();
            let plan = FaultPlan::new(spec);
            for (cell, at) in plan.crash_schedule() {
                if cell.index() < n {
                    self.evq.push(
                        at,
                        Ev::Crash {
                            cell: cell.as_u32(),
                        },
                    );
                }
            }
            self.fault = Some(FaultState {
                plan,
                next_seq: 0,
                outstanding: HashMap::new(),
                replay: ReplayGuard::new(),
                dead: vec![false; n],
            });
            // Fault-armed runs stay on the serial protocol: fail-stop
            // crashes retroactively skip a dead cell's queued wakes, and
            // an eagerly released response cannot be unsent. Fault runs
            // are therefore windowed-engine-invariant trivially.
            self.eager = None;
        }
        self
    }

    /// Consumes the kernel, returning the machine and the resume senders
    /// (dropping the senders unblocks any still-parked program threads).
    pub fn into_parts(self) -> (Machine, Vec<Sender<Response>>) {
        (self.machine, self.resume_tx)
    }

    /// Takes the fault report of a survived faulted run (`None` on
    /// fault-free runs). Call after [`Kernel::run`].
    pub fn take_fault_report(&mut self) -> Option<FaultReport> {
        self.fault.take().map(|f| f.plan.report)
    }

    /// Events that must be discarded without advancing the clock: stale
    /// retry timers (their envelope was acknowledged), crash events for
    /// cells that already finished, and any activity addressed to a dead
    /// cell (fail-stop: its hardware neither sends, receives, nor wakes).
    fn skips(&self, ev: &Ev) -> bool {
        let Some(f) = &self.fault else { return false };
        match ev {
            Ev::RetryTimeout { seq, attempt } => f
                .outstanding
                .get(seq)
                .is_none_or(|o| o.attempts != *attempt),
            Ev::Crash { cell } => self.finished[*cell as usize] || f.dead[*cell as usize],
            Ev::Wake { cell, .. } | Ev::SendPop { cell } | Ev::SendDone { cell } => {
                f.dead[*cell as usize]
            }
            Ev::Arrive { dst, .. } | Ev::RecvDone { dst, .. } | Ev::ArriveF { dst, .. } => {
                f.dead[*dst as usize]
            }
            Ev::AckArrive { .. } => false,
        }
    }

    /// Runs the event loop to completion.
    pub fn run(&mut self) -> ApResult<SimTime> {
        if self.sampler.is_some() || self.progress.is_some() {
            self.run_instrumented()?;
        } else {
            // The metrics-off hot path: identical to the pre-telemetry
            // loop except for one u64 increment.
            while let Some((t, ev)) = self.evq.pop() {
                if self.skips(&ev) {
                    continue;
                }
                self.clock.advance_to(t);
                self.events_handled += 1;
                if self.eager.is_some() {
                    self.slide_window(t);
                }
                self.handle(ev)?;
            }
        }
        if let Some(e) = &self.eager {
            if std::env::var_os("AP_EAGER_STATS").is_some() {
                eprintln!(
                    "eager stats: sent-at-insert {} parked {} fallback {} stash-hit {} chan-read {}",
                    e.stats[0], e.stats[1], e.stats[2], e.stats[3], e.stats[4]
                );
            }
        }
        // Flush every sample tick at or before the final time, so the
        // series always covers the whole run.
        let end = self.clock.now();
        if self.sampler.as_ref().is_some_and(|s| s.due(end)) {
            self.flush_ticks(end);
        }
        let n = self.machine.cells.len() as u32;
        if let Some(f) = &self.fault {
            let dead = f.dead.iter().filter(|&&d| d).count() as u32;
            if dead > 0 {
                // Graceful degradation: surviving cells ran to completion;
                // the run as a whole reports the crashes structurally.
                let mut cause = format!("{dead} cell(s) crashed fail-stop");
                if self.done + dead < n {
                    cause.push_str(&format!(
                        "; {} surviving cell(s) still blocked when the event queue drained",
                        n - self.done - dead
                    ));
                }
                return Err(ApError::Fault(Box::new(self.fault_report(cause))));
            }
        }
        if self.done < n {
            return Err(ApError::Deadlock(Box::new(self.deadlock_report())));
        }
        self.check_drained()?;
        Ok(self.clock.now())
    }

    /// The event loop with telemetry taps: deterministic metric sampling
    /// before the event that crosses each tick, 1-in-64 wall-clock phase
    /// timing, and rate-limited progress lines. Sim-time behavior is
    /// byte-identical to the plain loop — the wall clock is read but
    /// never written back into simulated state.
    fn run_instrumented(&mut self) -> ApResult<()> {
        use std::time::Instant;
        loop {
            let timed = self.events_handled & 63 == 0;
            let t0 = timed.then(Instant::now);
            let Some((t, ev)) = self.evq.pop() else { break };
            if let Some(p) = &mut self.hostprof {
                match t0 {
                    Some(t0) => p.record(HostPhase::Pop, t0.elapsed().as_nanos() as u64),
                    None => p.count(HostPhase::Pop),
                }
            }
            if self.skips(&ev) {
                continue;
            }
            // Sample ticks strictly before handling the event that crosses
            // them: the gauges reflect machine state after every event
            // earlier than the tick, independent of host thread count.
            if self.sampler.as_ref().is_some_and(|s| s.due(t)) {
                self.flush_ticks(t);
            }
            self.clock.advance_to(t);
            if self.eager.is_some() {
                self.slide_window(t);
            }
            let phase = match &ev {
                Ev::Wake { cell, .. } if !self.pending[*cell as usize].is_empty() => {
                    HostPhase::Drain
                }
                Ev::Wake { .. } => HostPhase::Wakeup,
                _ => HostPhase::Dispatch,
            };
            self.events_handled += 1;
            let t0 = timed.then(Instant::now);
            self.handle(ev)?;
            if let Some(p) = &mut self.hostprof {
                match t0 {
                    Some(t0) => p.record(phase, t0.elapsed().as_nanos() as u64),
                    None => p.count(phase),
                }
            }
            // Progress gauges cost O(cells); ask at most every 4096 events
            // and let the reporter's wall-clock gate do the rest.
            if self.progress.is_some() && self.events_handled & 4095 == 0 {
                let blocked = self.waiters.iter().flatten().count() as u32;
                let retries = self
                    .fault
                    .as_ref()
                    .map_or(0, |f| f.plan.report.total_retries());
                let (now, events) = (self.clock.now(), self.events_handled);
                if let Some(pr) = &mut self.progress {
                    pr.maybe_report(now, events, blocked, retries);
                }
            }
        }
        Ok(())
    }

    /// Records one sample row per elapsed tick up to (and excluding any
    /// tick after) time `t`.
    fn flush_ticks(&mut self, t: SimTime) {
        let Some(mut sampler) = self.sampler.take() else {
            return;
        };
        while sampler.due(t) {
            let tick = sampler.next_time();
            sampler.push(self.metrics_sample(tick));
        }
        self.sampler = Some(sampler);
    }

    /// Assembles the gauge snapshot for the tick at sim time `at`.
    fn metrics_sample(&self, at: SimTime) -> MetricsSample {
        let (queue_depth, queue_depth_max, send_dma_busy, recv_dma_busy) =
            self.machine.occupancy(at);
        let (mut puts, mut gets) = (0u32, 0u32);
        for f in self.xfers.values() {
            match f.x.kind {
                XferKind::Put => puts += 1,
                XferKind::Get => gets += 1,
                XferKind::Other => {}
            }
        }
        let (mut blocked, mut barrier) = (0u32, 0u32);
        for w in self.waiters.iter().flatten() {
            blocked += 1;
            if matches!(w, Waiter::Barrier { .. }) {
                barrier += 1;
            }
        }
        let stats = self.machine.tnet.stats();
        let (retries, detours) = self.fault.as_ref().map_or((0, 0), |f| {
            (f.plan.report.total_retries(), f.plan.report.detours)
        });
        MetricsSample {
            t: at,
            events: self.events_handled,
            msgs: stats.messages,
            bytes: stats.bytes,
            puts_inflight: puts,
            gets_inflight: gets,
            cells_blocked: blocked,
            barrier_waiting: barrier,
            queue_depth,
            queue_depth_max: queue_depth_max as u64,
            send_dma_busy,
            recv_dma_busy,
            link_busy_ns: self.machine.tnet.link_busy_total().as_nanos(),
            retries,
            detours,
        }
    }

    /// Consumes the sampler, yielding the finished series (`None` when
    /// metrics were off). Call after [`Kernel::run`].
    pub fn take_metrics(&mut self) -> Option<MetricsSeries> {
        self.sampler.take().map(Sampler::finish)
    }

    /// Stops and takes the host self-profiler. Call after [`Kernel::run`].
    pub fn take_hostprof(&mut self) -> Option<HostProf> {
        let mut p = self.hostprof.take()?;
        p.stop();
        Some(p)
    }

    /// Snapshot of the fault plan's report with an abort `cause` attached.
    fn fault_report(&self, cause: String) -> FaultReport {
        let f = self.fault.as_ref().expect("fault layer active");
        let mut r = f.plan.report.clone();
        r.cause = cause;
        r
    }

    /// Verifies that a completed run left no hardware or bookkeeping state
    /// behind: no queued transmit entries, no busy send DMA, no in-flight
    /// latency attributions, no blocked-cell records, no half-finished
    /// collective. Undelivered ring-buffer messages are *not* a leak — a
    /// program may legitimately finish without receiving every SEND.
    fn check_drained(&self) -> ApResult<()> {
        let mut leaks = Vec::new();
        for (i, hw) in self.machine.cells.iter().enumerate() {
            let pending = hw.total_pending();
            if pending > 0 {
                leaks.push(format!("cell{i}: {pending} queued tx entries"));
            }
            if hw.send_busy || hw.active_tx.is_some() {
                leaks.push(format!("cell{i}: send DMA still active"));
            }
        }
        if !self.xfers.is_empty() {
            let mut tids: Vec<u64> = self.xfers.keys().copied().collect();
            tids.sort_unstable();
            leaks.push(format!("unfinished transfer attributions (tids {tids:?})"));
        }
        let blocked_records = self.waiters.iter().flatten().count();
        if blocked_records > 0 {
            leaks.push(format!("{blocked_records} blocked-cell records"));
        }
        let undispatched: usize = self.pending.iter().map(|q| q.len()).sum();
        if undispatched > 0 {
            leaks.push(format!("{undispatched} undispatched batched requests"));
        }
        if self.bcast.is_some() {
            leaks.push("incomplete bcast collective".to_string());
        }
        if leaks.is_empty() {
            Ok(())
        } else {
            Err(ApError::StateLeak {
                detail: leaks.join("; "),
            })
        }
    }

    /// Snapshot of one cell's block state (`None` if it is runnable or
    /// done): why it is blocked, since when, and what its MSC+ transmit
    /// queues still hold. The per-cell building block of both the
    /// deadlock report and the [`CellLostReport`].
    fn blocked_cell(&self, i: usize) -> Option<BlockedCell> {
        let w = self.waiters[i].as_ref()?;
        let cid = CellId::new(i as u32);
        let (reason, since) = match *w {
            Waiter::Flag {
                flag,
                target,
                since,
            } => {
                let flag = VAddr::new(flag);
                let current = self.machine.read_flag(cid, flag).unwrap_or(0);
                (
                    BlockReason::FlagWait {
                        flag,
                        current,
                        target,
                    },
                    since,
                )
            }
            Waiter::Barrier { since } => (BlockReason::Barrier, since),
            Waiter::Recv { src, since, .. } => (BlockReason::Recv { src }, since),
            Waiter::Send { since } => (BlockReason::Send, since),
            Waiter::Bcast { since } => (BlockReason::Bcast, since),
            Waiter::Reg { reg, since } => (BlockReason::RegLoad { reg }, since),
            Waiter::Load { since } => (BlockReason::RemoteLoad, since),
            Waiter::Fence { since } => {
                let hw = &self.machine.cells[i];
                (
                    BlockReason::RemoteFence {
                        issued: hw.rstore_issued,
                        acked: hw.rstore_acked,
                    },
                    since,
                )
            }
        };
        Some(BlockedCell {
            cell: cid,
            reason,
            since,
            pending_tx: self.machine.cells[i].pending_tx(),
        })
    }

    /// Snapshot of every still-blocked cell, assembled when the event
    /// queue drains with unfinished cells.
    fn deadlock_report(&self) -> DeadlockReport {
        DeadlockReport {
            now: self.clock.now(),
            total_cells: self.machine.cells.len() as u32,
            finished_cells: self.done,
            blocked: (0..self.waiters.len())
                .filter_map(|i| self.blocked_cell(i))
                .collect(),
        }
    }

    /// Structured report for a cell whose program thread died out from
    /// under the kernel: what it last asked for and whether it was
    /// blocked, in the same shape the deadlock report uses.
    fn cell_lost(&self, cell: u32, reason: &str) -> ApError {
        ApError::CellLost(Box::new(CellLostReport {
            cell: CellId::new(cell),
            reason: reason.to_string(),
            now: self.clock.now(),
            last_request: self.last_req[cell as usize],
            blocked: self.blocked_cell(cell as usize),
        }))
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The fault layer, or a structured [`ApError::Internal`] if a
    /// fault-only event fired on an unfaulted run (a kernel bug — fault
    /// events are only scheduled by the fault layer itself).
    fn fault_mut(&mut self) -> ApResult<&mut FaultState> {
        self.fault.as_mut().ok_or_else(|| {
            ApError::internal(
                None,
                "fault-layer",
                "fault event fired without a fault layer",
            )
        })
    }

    /// The windowed-PDES engine, or a structured [`ApError::Internal`]
    /// if a windowed-only path ran under the serial engine.
    fn eager_mut(&mut self) -> ApResult<&mut Eager> {
        self.eager.as_mut().ok_or_else(|| {
            ApError::internal(
                None,
                "pdes-window",
                "windowed-engine path entered with the serial engine active",
            )
        })
    }

    // ---- accounting helpers -------------------------------------------

    fn charge_exec(&mut self, cell: u32, t: SimTime) {
        self.machine.times[cell as usize].exec += t;
    }

    fn charge_rts(&mut self, cell: u32, t: SimTime) {
        self.machine.times[cell as usize].rts += t;
    }

    fn charge_overhead(&mut self, cell: u32, t: SimTime) {
        self.machine.times[cell as usize].overhead += t;
    }

    fn add_idle(&mut self, cell: u32, since: SimTime, until: SimTime) {
        self.machine.times[cell as usize].idle += until.saturating_sub(since);
    }

    fn record(&mut self, cell: u32, op: Op) {
        if self.machine.cfg.record_trace {
            self.machine.trace.pe_mut(CellId::new(cell)).push(op);
        }
    }

    fn wake_at(&mut self, cell: u32, at: SimTime, resp: Response) {
        self.waiters[cell as usize] = None;
        let resp = self.eager_offer(cell, at, resp);
        self.evq.push(at, Ev::Wake { cell, resp });
    }

    /// Windowed engine: tries to hand `resp` to `cell`'s program ahead
    /// of the wake's commit. The response's content is fixed here, the
    /// program can observe nothing else until its own next request, and
    /// only one wake per cell is ever in flight — so releasing it early
    /// changes no observable state, only host-thread overlap. Returns
    /// the response the committed `Wake` event should carry: `Unit`
    /// when the real one was consumed here, `resp` unchanged on the
    /// serial path.
    fn eager_offer(&mut self, cell: u32, at: SimTime, resp: Response) -> Response {
        let i = cell as usize;
        let Some(e) = &mut self.eager else {
            return resp;
        };
        if !self.pending[i].is_empty() {
            // Batched wakes carry no data; the commit pops the queue.
            return resp;
        }
        debug_assert!(
            !e.sent[i] && e.resp[i].is_none(),
            "cell {cell} has more than one wake in flight"
        );
        if at <= e.horizon {
            e.stats[0] += 1;
            match self.resume_tx[i].send(resp) {
                Ok(()) => e.sent[i] = true,
                // The program thread is gone; keep the response so the
                // commit raises the same CellLost the serial engine
                // would, at the same sim time.
                Err(err) => e.resp[i] = Some(err.0),
            }
        } else {
            e.stats[1] += 1;
            e.resp[i] = Some(resp);
            e.parked.push(Reverse((at, cell)));
        }
        Response::Unit
    }

    /// Slides the dispatch window so it covers `[now, now + window]`
    /// and releases every parked wake the new horizon reaches. Called
    /// at each committed event, so the horizon tracks the canonical
    /// commit frontier and a wake is always released no later than its
    /// own commit.
    fn slide_window(&mut self, now: SimTime) {
        let Some(e) = &mut self.eager else { return };
        let horizon = now + e.window;
        if horizon <= e.horizon {
            return;
        }
        e.horizon = horizon;
        while let Some(&Reverse((at, cell))) = e.parked.peek() {
            if at > horizon {
                break;
            }
            e.parked.pop();
            let i = cell as usize;
            let Some(resp) = e.resp[i].take() else {
                continue;
            };
            match self.resume_tx[i].send(resp) {
                Ok(()) => e.sent[i] = true,
                Err(err) => e.resp[i] = Some(err.0),
            }
        }
    }

    /// Removes and returns cell's waiter if `pred` accepts it. The O(1)
    /// wakeup probe: arrival paths check the one slot a blocked cell can
    /// occupy instead of scanning waiter maps.
    fn take_waiter_if(&mut self, cell: u32, pred: impl FnOnce(&Waiter) -> bool) -> Option<Waiter> {
        let slot = &mut self.waiters[cell as usize];
        if slot.as_ref().is_some_and(pred) {
            slot.take()
        } else {
            None
        }
    }

    /// Enqueues a transmit job, emitting the queue's enqueue/spill events.
    fn push_tx(&mut self, cell: u32, queue: TxQueue, tid: u64, job: TxJob, at: SimTime) {
        let hw = &mut self.machine.cells[cell as usize];
        let q = match queue {
            TxQueue::User => &mut hw.user_q,
            TxQueue::Remote => &mut hw.remote_q,
            TxQueue::GetReply => &mut hw.reply_get_q,
            TxQueue::RemoteReply => &mut hw.reply_remote_q,
        };
        let outcome = q.push_at(TxEntry { tid, job }, at);
        let depth = q.len() as u64;
        self.machine
            .obs
            .instant_id(cell, Unit::Queue, "enqueue", at, Bucket::Hw, depth, tid);
        if outcome == PushOutcome::Spilled {
            self.machine
                .obs
                .instant_id(cell, Unit::Queue, "spill", at, Bucket::Hw, depth, tid);
        }
    }

    /// Advances transfer `tid`'s attribution cursor to `to`, charging the
    /// uncovered time to segment `seg`.
    fn charge_xfer(&mut self, tid: u64, seg: Seg, to: SimTime) {
        let Some(f) = self.xfers.get_mut(&tid) else {
            return;
        };
        let d = to.saturating_sub(f.cursor);
        match seg {
            Seg::Issue => f.x.issue += d,
            Seg::Queue => f.x.queue += d,
            Seg::Dma => f.x.dma += d,
            Seg::Net => f.x.net += d,
            Seg::Delivery => f.x.delivery += d,
        }
        f.cursor += d;
    }

    /// Completes the latency record of transfer `tid` at `end` and folds
    /// it into the machine's per-segment histograms.
    fn finish_xfer(&mut self, tid: u64, end: SimTime) {
        let Some(InFlight { mut x, cursor }) = self.xfers.remove(&tid) else {
            return;
        };
        // In the rare overlapped case the issue span can retire after the
        // payload lands; the op is only complete once both have.
        x.end = end.max(cursor);
        debug_assert_eq!(
            x.segment_sum(),
            x.total(),
            "transfer {tid} segments do not cover its latency: {x:?}"
        );
        match x.kind {
            XferKind::Put => self.machine.put_lat.record(&x),
            XferKind::Get => self.machine.get_lat.record(&x),
            XferKind::Other => {}
        }
    }

    // ---- event dispatch ------------------------------------------------

    fn handle(&mut self, ev: Ev) -> ApResult<()> {
        match ev {
            Ev::Wake { cell, resp } => self.deliver_and_take(cell, resp),
            Ev::SendPop { cell } => self.send_pop(cell),
            Ev::SendDone { cell } => self.send_done(cell),
            Ev::Arrive { dst, pkt, tid } => self.arrive(dst, pkt, tid),
            Ev::RecvDone { dst, pkt, tid } => self.recv_done(dst, pkt, tid),
            Ev::ArriveF {
                dst,
                src,
                seq,
                tag,
                pkt,
                tid,
            } => self.arrive_f(dst, src, seq, tag, pkt, tid),
            Ev::AckArrive { seq } => {
                // The envelope is delivered; its pending retry timer is now
                // stale and will be skipped.
                self.fault_mut()?.outstanding.remove(&seq);
                Ok(())
            }
            Ev::RetryTimeout { seq, .. } => self.retry_timeout(seq),
            Ev::Crash { cell } => self.crash(cell),
        }
    }

    fn deliver_and_take(&mut self, cell: u32, resp: Response) -> ApResult<()> {
        // Batched fast path: if the cell posted async requests ahead of its
        // last synchronous one, dispatch the next of those directly instead
        // of a host channel round trip. Every posted request resolves to
        // `Response::Unit`, and dispatching here — at the same wake event
        // where the unbatched kernel would have delivered that Unit and read
        // the request back off the channel — reproduces the unbatched event
        // order and sim times exactly.
        if let Some(req) = self.pending[cell as usize].pop_front() {
            debug_assert_eq!(
                resp,
                Response::Unit,
                "batched request for cell {cell} would have dropped a non-unit response"
            );
            return self.dispatch(cell, req);
        }
        if self.eager.is_some() {
            return self.deliver_eager(cell, resp);
        }
        self.resume_tx[cell as usize]
            .send(resp)
            .map_err(|_| self.cell_lost(cell, "program thread exited unexpectedly"))?;
        let (from, req) = self
            .req_rx
            .recv()
            .map_err(|_| self.cell_lost(cell, "program thread panicked"))?;
        debug_assert_eq!(from, cell, "baton protocol violated");
        self.dispatch(from, req)
    }

    /// Commits a wake under the windowed engine. The response usually
    /// went out when the window first covered the wake time, so the
    /// commit only consumes the program's next request — then the
    /// dispatch happens here, at the canonical time and order, exactly
    /// where the serial engine would have dispatched it.
    fn deliver_eager(&mut self, cell: u32, resp: Response) -> ApResult<()> {
        let i = cell as usize;
        let sent = {
            let e = self.eager_mut()?;
            std::mem::take(&mut e.sent[i])
        };
        if !sent {
            // The window never released this wake ahead of commit (boot
            // wakes precede the first slide, and a failed early send
            // retries here): fall back to the serial exchange.
            if let Some(e) = self.eager.as_mut() {
                e.stats[2] += 1;
            }
            let held = self
                .eager
                .as_mut()
                .and_then(|e| e.resp[i].take())
                .unwrap_or(resp);
            self.resume_tx[i]
                .send(held)
                .map_err(|_| self.cell_lost(cell, "program thread exited unexpectedly"))?;
        }
        let req = self.take_request(cell)?;
        self.dispatch(cell, req)
    }

    /// Returns `cell`'s next request. With several programs computing
    /// concurrently, requests arrive on the shared channel in arbitrary
    /// host order; anything from another cell is stashed (in arrival =
    /// issue order) for its own wakes' commits. `Fail` and `Finish` need
    /// no special casing — a failing cell's next wake commit consumes
    /// the stashed failure at the canonical time.
    fn take_request(&mut self, cell: u32) -> ApResult<Request> {
        let e = self.eager_mut()?;
        if let Some(req) = e.stash[cell as usize].pop_front() {
            e.stats[3] += 1;
            return Ok(req);
        }
        e.stats[4] += 1;
        loop {
            let (from, req) = self
                .req_rx
                .recv()
                .map_err(|_| self.cell_lost(cell, "program thread panicked"))?;
            if from == cell {
                return Ok(req);
            }
            self.eager_mut()?.stash[from as usize].push_back(req);
        }
    }

    // ---- request handling ----------------------------------------------

    fn dispatch(&mut self, cell: u32, req: Request) -> ApResult<()> {
        let now = self.now();
        let hw_params = self.machine.cfg.hw;
        let cid = CellId::new(cell);
        self.last_req[cell as usize] = Some(req_name(&req));
        match req {
            Request::Batch(reqs) => {
                // A run of posted async requests with the cell's next
                // synchronous request appended last. Queue them and start on
                // the first; `deliver_and_take` drains the rest one per wake,
                // at exactly the sim times the unbatched protocol would have
                // dispatched them.
                let q = &mut self.pending[cell as usize];
                debug_assert!(q.is_empty(), "cell {cell} sent a batch with one pending");
                q.extend(reqs);
                let Some(first) = q.pop_front() else {
                    return Err(ApError::InvalidArg(format!("{cid} sent an empty batch")));
                };
                return self.dispatch(cell, first);
            }
            Request::Alloc { bytes } => {
                let hw = &mut self.machine.cells[cell as usize];
                let addr = hw.mmu.map_anywhere(bytes).map_err(|_| {
                    ApError::InvalidArg(format!("{cid} cannot allocate {bytes} bytes"))
                })?;
                self.wake_at(cell, now, Response::Addr(addr));
            }
            Request::ReadMem { addr, len } => {
                let data = self.machine.read_v(cid, addr, len)?;
                self.wake_at(cell, now, Response::Bytes(data));
            }
            Request::WriteMem { addr, data } => {
                self.machine.write_v(cid, addr, &data)?;
                self.wake_at(cell, now, Response::Unit);
            }
            Request::Work { flops } => {
                let t = hw_params.flop_time.saturating_mul(flops);
                self.charge_exec(cell, t);
                self.record(cell, Op::Work { flops });
                self.machine
                    .obs
                    .span(cell, Unit::Cpu, "work", now, t, Bucket::Exec, flops);
                self.wake_at(cell, now + t, Response::Unit);
            }
            Request::Rts { units } => {
                let t = hw_params.rts_unit_time.saturating_mul(units);
                self.charge_rts(cell, t);
                self.record(cell, Op::Rts { units });
                self.machine
                    .obs
                    .span(cell, Unit::Cpu, "rts", now, t, Bucket::Rts, units);
                self.wake_at(cell, now + t, Response::Unit);
            }
            Request::Put(args) => {
                self.machine.check_cell(args.dst)?;
                args.validate().map_err(ApError::InvalidArg)?;
                self.record(
                    cell,
                    Op::Put {
                        dst: args.dst,
                        bytes: args.size(),
                        stride: args.is_stride(),
                        ack: args.ack,
                        send_flag: args.send_flag.as_u64(),
                        recv_flag: args.recv_flag.as_u64(),
                    },
                );
                self.charge_overhead(cell, hw_params.issue_time);
                let tid = self.machine.alloc_tid();
                self.xfers.insert(
                    tid,
                    InFlight {
                        x: XferLat::new(XferKind::Put, args.size(), now),
                        cursor: now,
                    },
                );
                self.charge_xfer(tid, Seg::Issue, now + hw_params.issue_time);
                self.machine.obs.span_id(
                    cell,
                    Unit::Cpu,
                    "put_issue",
                    now,
                    hw_params.issue_time,
                    Bucket::Overhead,
                    args.size(),
                    tid,
                );
                let t = now + hw_params.issue_time;
                self.push_tx(cell, TxQueue::User, tid, TxJob::Put(args), t);
                self.evq.push(t, Ev::SendPop { cell });
                self.wake_at(cell, t, Response::Unit);
            }
            Request::Get(args) => {
                self.machine.check_cell(args.src_cell)?;
                args.validate().map_err(ApError::InvalidArg)?;
                self.record(
                    cell,
                    Op::Get {
                        src: args.src_cell,
                        bytes: if args.is_ack_probe() { 0 } else { args.size() },
                        stride: args.is_stride(),
                        ack_probe: args.is_ack_probe(),
                        send_flag: args.send_flag.as_u64(),
                        recv_flag: args.recv_flag.as_u64(),
                    },
                );
                self.charge_overhead(cell, hw_params.issue_time);
                let bytes = if args.is_ack_probe() { 0 } else { args.size() };
                let tid = self.machine.alloc_tid();
                self.xfers.insert(
                    tid,
                    InFlight {
                        x: XferLat::new(XferKind::Get, bytes, now),
                        cursor: now,
                    },
                );
                self.charge_xfer(tid, Seg::Issue, now + hw_params.issue_time);
                self.machine.obs.span_id(
                    cell,
                    Unit::Cpu,
                    "get_issue",
                    now,
                    hw_params.issue_time,
                    Bucket::Overhead,
                    bytes,
                    tid,
                );
                let t = now + hw_params.issue_time;
                self.push_tx(cell, TxQueue::User, tid, TxJob::GetReq(args), t);
                self.evq.push(t, Ev::SendPop { cell });
                self.wake_at(cell, t, Response::Unit);
            }
            Request::WaitFlag { flag, target } => {
                self.record(
                    cell,
                    Op::WaitFlag {
                        flag: flag.as_u64(),
                        target,
                    },
                );
                let v = self.machine.read_flag(cid, flag)?;
                if v >= target {
                    self.charge_overhead(cell, hw_params.flag_check_time);
                    self.machine.flag_wait.record(0);
                    self.machine.obs.span(
                        cell,
                        Unit::Cpu,
                        "flag_check",
                        now,
                        hw_params.flag_check_time,
                        Bucket::Overhead,
                        flag.as_u64(),
                    );
                    self.wake_at(cell, now + hw_params.flag_check_time, Response::Unit);
                } else {
                    self.waiters[cell as usize] = Some(Waiter::Flag {
                        flag: flag.as_u64(),
                        target,
                        since: now,
                    });
                }
            }
            Request::ReadFlag { flag } => {
                let v = self.machine.read_flag(cid, flag)?;
                self.charge_overhead(cell, hw_params.flag_check_time);
                self.wake_at(cell, now + hw_params.flag_check_time, Response::Value(v));
            }
            Request::Barrier => {
                self.record(cell, Op::Barrier);
                // Eager abort instead of a guaranteed hang: a machine-wide
                // S-net barrier can never release once a participant has
                // crashed fail-stop.
                if let Some(f) = &self.fault {
                    if f.dead.iter().any(|&d| d) {
                        let dead: Vec<CellId> = f
                            .dead
                            .iter()
                            .enumerate()
                            .filter(|&(_, &d)| d)
                            .map(|(i, _)| CellId::new(i as u32))
                            .collect();
                        let mut waiting: Vec<CellId> = self
                            .waiters
                            .iter()
                            .enumerate()
                            .filter(|(_, w)| matches!(w, Some(Waiter::Barrier { .. })))
                            .map(|(i, _)| CellId::new(i as u32))
                            .collect();
                        waiting.push(cid);
                        return Err(ApError::BarrierAborted {
                            at: now,
                            waiting,
                            dead,
                        });
                    }
                }
                if let Some(release) = self.machine.snet.arrive(cid, now)? {
                    let epoch = self.machine.snet.epochs();
                    // Release earlier arrivals in cell-id order (the arriving
                    // cell last) — deterministic, unlike the hash-map drain
                    // this replaces.
                    let mut waiters: Vec<(u32, SimTime)> = Vec::new();
                    for (i, slot) in self.waiters.iter_mut().enumerate() {
                        if let Some(Waiter::Barrier { since }) = slot {
                            waiters.push((i as u32, *since));
                            *slot = None;
                        }
                    }
                    for (c, since) in waiters {
                        self.add_idle(c, since, release);
                        self.machine.obs.span(
                            c,
                            Unit::Cpu,
                            "barrier",
                            since,
                            release.saturating_sub(since),
                            Bucket::Idle,
                            epoch,
                        );
                        self.wake_at(c, release, Response::Unit);
                    }
                    self.add_idle(cell, now, release);
                    self.machine.obs.span(
                        cell,
                        Unit::Cpu,
                        "barrier",
                        now,
                        release.saturating_sub(now),
                        Bucket::Idle,
                        epoch,
                    );
                    self.wake_at(cell, release, Response::Unit);
                } else {
                    self.waiters[cell as usize] = Some(Waiter::Barrier { since: now });
                }
            }
            Request::Send { dst, laddr, bytes } => {
                self.machine.check_cell(dst)?;
                self.record(cell, Op::Send { dst, bytes });
                self.charge_overhead(cell, hw_params.send_call_time);
                let tid = self.machine.alloc_tid();
                self.machine.obs.span_id(
                    cell,
                    Unit::Cpu,
                    "send_call",
                    now,
                    hw_params.send_call_time,
                    Bucket::Overhead,
                    bytes,
                    tid,
                );
                self.push_tx(
                    cell,
                    TxQueue::User,
                    tid,
                    TxJob::Ring {
                        dst,
                        laddr,
                        bytes,
                        wake_sender: true,
                    },
                    now + hw_params.send_call_time,
                );
                self.evq
                    .push(now + hw_params.send_call_time, Ev::SendPop { cell });
                self.waiters[cell as usize] = Some(Waiter::Send {
                    since: now + hw_params.send_call_time,
                });
            }
            Request::Recv { src, laddr, max } => {
                self.machine.check_cell(src)?;
                self.record(cell, Op::Recv { src, bytes: max });
                if let Some(payload) =
                    self.machine.cells[cell as usize].ring[src.index()].pop_front()
                {
                    self.complete_recv(cell, laddr, max, payload, now)?;
                } else {
                    self.waiters[cell as usize] = Some(Waiter::Recv {
                        src,
                        laddr,
                        max,
                        since: now,
                    });
                }
            }
            Request::RegStore { dst, reg, value } => {
                self.machine.check_cell(dst)?;
                self.record(cell, Op::RegStore { dst, reg });
                self.charge_overhead(cell, hw_params.reg_store_time);
                let tid = self.machine.alloc_tid();
                self.machine.obs.span_id(
                    cell,
                    Unit::Cpu,
                    "reg_store",
                    now,
                    hw_params.reg_store_time,
                    Bucket::Overhead,
                    reg as u64,
                    tid,
                );
                if dst == cid {
                    self.reg_store_arrived(cell, reg, value, now + hw_params.reg_store_time, tid)?;
                } else {
                    let pkt = Packet::RegStore {
                        src: cid,
                        reg,
                        value,
                    };
                    self.inject(now + hw_params.reg_store_time, cid, dst, pkt, tid)?;
                }
                self.wake_at(cell, now + hw_params.reg_store_time, Response::Unit);
            }
            Request::RegLoad { reg } => {
                self.record(cell, Op::RegLoad { reg });
                if let Some(v) = self.machine.cells[cell as usize].regs.load(reg as usize) {
                    self.charge_overhead(cell, hw_params.reg_load_time);
                    self.machine.obs.span(
                        cell,
                        Unit::Cpu,
                        "reg_load",
                        now,
                        hw_params.reg_load_time,
                        Bucket::Overhead,
                        reg as u64,
                    );
                    self.wake_at(cell, now + hw_params.reg_load_time, Response::Value(v));
                } else {
                    self.waiters[cell as usize] = Some(Waiter::Reg { reg, since: now });
                }
            }
            Request::Bcast { root, laddr, bytes } => {
                self.machine.check_cell(root)?;
                self.record(cell, Op::Bcast { root, bytes });
                let state = self.bcast.get_or_insert_with(|| BcastState {
                    root,
                    bytes,
                    arrived: Vec::new(),
                });
                if state.root != root || state.bytes != bytes {
                    return Err(ApError::InvalidArg(format!(
                        "mismatched bcast: {cid} gave root {root}/{bytes}B, collective started \
                         with root {}/{}B",
                        state.root, state.bytes
                    )));
                }
                state.arrived.push((cell, laddr, now));
                if state.arrived.len() == self.machine.cells.len() {
                    let state = self.bcast.take().ok_or_else(|| {
                        ApError::internal(cid, "bnet", "bcast completed without collective state")
                    })?;
                    let mut latest =
                        state
                            .arrived
                            .iter()
                            .map(|&(_, _, t)| t)
                            .max()
                            .ok_or_else(|| {
                                ApError::internal(cid, "bnet", "bcast completed with no arrivals")
                            })?;
                    if let Some(f) = self.fault.as_mut() {
                        // A B-net outage defers the broadcast until the
                        // window closes.
                        latest = f.plan.bnet_clear(latest);
                    }
                    let root_laddr = state
                        .arrived
                        .iter()
                        .find(|&&(c, _, _)| c == state.root.as_u32())
                        .ok_or_else(|| {
                            ApError::internal(
                                state.root,
                                "bnet",
                                "bcast root never arrived at its own collective",
                            )
                        })?
                        .1;
                    let payload = self.machine.read_v(state.root, root_laddr, state.bytes)?;
                    let delivery =
                        self.machine
                            .bnet
                            .broadcast(latest, state.root, state.bytes + HEADER_BYTES);
                    let bcast_bytes = state.bytes;
                    for (c, la, since) in state.arrived {
                        if c != state.root.as_u32() {
                            self.machine.write_v(CellId::new(c), la, &payload)?;
                        }
                        self.add_idle(c, since, delivery);
                        self.machine.obs.span(
                            c,
                            Unit::Cpu,
                            "bcast",
                            since,
                            delivery.saturating_sub(since),
                            Bucket::Idle,
                            bcast_bytes,
                        );
                        self.wake_at(c, delivery, Response::Unit);
                    }
                } else {
                    self.waiters[cell as usize] = Some(Waiter::Bcast { since: now });
                }
            }
            Request::RemoteStore { dst, offset, data } => {
                self.machine.check_cell(dst)?;
                self.record(
                    cell,
                    Op::RemoteStore {
                        dst,
                        bytes: data.len() as u64,
                    },
                );
                let bytes = data.len() as u64;
                self.machine.cells[cell as usize].rstore_issued += 1;
                let tid = self.machine.alloc_tid();
                self.push_tx(
                    cell,
                    TxQueue::Remote,
                    tid,
                    TxJob::RemoteStoreTx {
                        dst,
                        offset,
                        data: Payload::from(data),
                    },
                    now,
                );
                let cost = hw_params.reg_store_time + hw_params.dma_per_byte.saturating_mul(bytes);
                self.charge_overhead(cell, cost);
                self.machine.obs.span_id(
                    cell,
                    Unit::Cpu,
                    "remote_store",
                    now,
                    cost,
                    Bucket::Overhead,
                    bytes,
                    tid,
                );
                self.evq.push(now + cost, Ev::SendPop { cell });
                self.wake_at(cell, now + cost, Response::Unit);
            }
            Request::RemoteLoad { dst, offset, len } => {
                self.machine.check_cell(dst)?;
                self.record(
                    cell,
                    Op::RemoteLoad {
                        src: dst,
                        bytes: len,
                    },
                );
                let tid = self.machine.alloc_tid();
                self.push_tx(
                    cell,
                    TxQueue::Remote,
                    tid,
                    TxJob::RemoteLoadReqTx { dst, offset, len },
                    now,
                );
                self.evq.push(now, Ev::SendPop { cell });
                self.waiters[cell as usize] = Some(Waiter::Load { since: now });
            }
            Request::RemoteFence => {
                self.record(cell, Op::RemoteFence);
                let hw = &self.machine.cells[cell as usize];
                if hw.rstore_acked == hw.rstore_issued {
                    self.wake_at(cell, now, Response::Unit);
                } else {
                    self.waiters[cell as usize] = Some(Waiter::Fence { since: now });
                }
            }
            Request::Mark(m) => {
                let op = match m {
                    Mark::GopScalar => Op::MarkGopScalar,
                    Mark::GopVector => Op::MarkGopVector,
                };
                self.record(cell, op);
                self.wake_at(cell, now, Response::Unit);
            }
            Request::Fail(reason) => {
                return Err(ApError::CellFailed { cell: cid, reason });
            }
            Request::Finish => {
                self.machine.times[cell as usize].finish = now;
                self.waiters[cell as usize] = None;
                self.finished[cell as usize] = true;
                self.done += 1;
            }
        }
        Ok(())
    }

    fn complete_recv(
        &mut self,
        cell: u32,
        laddr: VAddr,
        max: u64,
        payload: Payload,
        ready: SimTime,
    ) -> ApResult<()> {
        let hw = &mut self.machine.cells[cell as usize];
        hw.ring_bytes = hw.ring_bytes.saturating_sub(payload.len() as u64);
        let n = (payload.len() as u64).min(max);
        self.machine
            .write_v(CellId::new(cell), laddr, &payload[..n as usize])?;
        let cost = self.machine.cfg.hw.recv_copy_per_byte.saturating_mul(n)
            + self.machine.cfg.hw.flag_check_time;
        self.charge_overhead(cell, cost);
        self.machine.obs.span(
            cell,
            Unit::Cpu,
            "recv_copy",
            ready,
            cost,
            Bucket::Overhead,
            n,
        );
        self.wake_at(cell, ready + cost, Response::Len(n));
        Ok(())
    }

    // ---- hardware: send path -------------------------------------------

    fn send_pop(&mut self, cell: u32) -> ApResult<()> {
        let mut now = self.now();
        if self.machine.cells[cell as usize].send_busy {
            return Ok(());
        }
        let refills_before = self.machine.cells[cell as usize].total_refills();
        let Some((entry, _waited)) = self.machine.cells[cell as usize].pop_tx_at(now) else {
            return Ok(());
        };
        let TxEntry { tid, job } = entry;
        // Queue-overflow recovery: reloading spilled entries from DRAM
        // interrupts the operating system (§4.1) — the CPU pays the
        // service time and the DMA start is pushed back behind it.
        let refills = self.machine.cells[cell as usize].total_refills() - refills_before;
        if refills > 0 {
            let service = self
                .machine
                .cfg
                .hw
                .os_interrupt_time
                .saturating_mul(refills);
            self.charge_overhead(cell, service);
            self.machine.obs.span_id(
                cell,
                Unit::Cpu,
                "queue_refill",
                now,
                service,
                Bucket::Overhead,
                refills,
                tid,
            );
            now += service;
        }
        let remaining = self.machine.cells[cell as usize].total_pending() as u64;
        self.machine.obs.instant_id(
            cell,
            Unit::Queue,
            "dequeue",
            now,
            Bucket::Hw,
            remaining,
            tid,
        );
        self.charge_xfer(tid, Seg::Queue, now);
        let cid = CellId::new(cell);
        // Gather the payload into one shared buffer (functionally
        // instantaneous; timing charged below as DMA duration). This is
        // the only copy out of simulated memory: every later station —
        // packet, ring buffer, delivery — shares the same allocation.
        let (payload, items) = match &job {
            TxJob::Put(a) => (
                Payload::from(self.machine.gather(cid, a.laddr, a.send_stride)?),
                a.send_stride.count,
            ),
            TxJob::GetReq(_) => (Payload::empty(), 1),
            TxJob::Ring { laddr, bytes, .. } => {
                (Payload::from(self.machine.read_v(cid, *laddr, *bytes)?), 1)
            }
            TxJob::GetReply {
                raddr, send_stride, ..
            } => {
                if raddr.is_null() {
                    (Payload::empty(), 1)
                } else {
                    (
                        Payload::from(self.machine.gather(cid, *raddr, *send_stride)?),
                        send_stride.count,
                    )
                }
            }
            TxJob::RemoteStoreTx { data, .. } => (data.clone(), 1),
            TxJob::RemoteLoadReqTx { .. } => (Payload::empty(), 1),
            TxJob::RemoteLoadReplyTx { data, .. } => (data.clone(), 1),
            TxJob::RemoteAckTx { .. } => (Payload::empty(), 1),
        };
        let dur = self.machine.dma_time(payload.len() as u64, items);
        self.charge_xfer(tid, Seg::Dma, now + dur);
        self.machine.obs.span_id(
            cell,
            Unit::SendDma,
            "send_dma",
            now,
            dur,
            Bucket::Hw,
            payload.len() as u64,
            tid,
        );
        let hw = &mut self.machine.cells[cell as usize];
        hw.send_busy = true;
        hw.active_tx = Some(ActiveTx { tid, job, payload });
        self.evq.push(now + dur, Ev::SendDone { cell });
        Ok(())
    }

    fn send_done(&mut self, cell: u32) -> ApResult<()> {
        let now = self.now();
        let cid = CellId::new(cell);
        let ActiveTx { tid, job, payload } = {
            let hw = &mut self.machine.cells[cell as usize];
            hw.send_busy = false;
            hw.active_tx.take().ok_or_else(|| {
                ApError::internal(cid, "send-dma", "send_done fired with no active job")
            })?
        };
        // More work may be queued.
        self.evq.push(now, Ev::SendPop { cell });
        match job {
            TxJob::Put(a) => {
                self.bump_flag(cell, a.send_flag, tid, Unit::SendDma)?;
                let pkt = Packet::PutData {
                    src: cid,
                    raddr: a.raddr,
                    recv_stride: a.recv_stride,
                    recv_flag: a.recv_flag,
                    payload,
                };
                self.inject(now, cid, a.dst, pkt, tid)?;
            }
            TxJob::GetReq(a) => {
                let pkt = Packet::GetReq {
                    src: cid,
                    raddr: a.raddr,
                    send_stride: a.send_stride,
                    send_flag: a.send_flag,
                    reply_laddr: a.laddr,
                    reply_stride: a.recv_stride,
                    reply_flag: a.recv_flag,
                };
                self.inject(now, cid, a.src_cell, pkt, tid)?;
            }
            TxJob::Ring {
                dst, wake_sender, ..
            } => {
                let pkt = Packet::RingMsg { src: cid, payload };
                self.inject(now, cid, dst, pkt, tid)?;
                if wake_sender {
                    if let Some(Waiter::Send { since }) =
                        self.take_waiter_if(cell, |w| matches!(w, Waiter::Send { .. }))
                    {
                        self.add_idle(cell, since, now);
                        self.machine.obs.span_id(
                            cell,
                            Unit::Cpu,
                            "send_wait",
                            since,
                            now.saturating_sub(since),
                            Bucket::Idle,
                            0,
                            tid,
                        );
                        self.wake_at(cell, now, Response::Unit);
                    }
                }
            }
            TxJob::GetReply {
                requester,
                send_flag,
                reply_laddr,
                reply_stride,
                reply_flag,
                ..
            } => {
                self.bump_flag(cell, send_flag, tid, Unit::SendDma)?;
                let pkt = Packet::GetReply {
                    src: cid,
                    laddr: reply_laddr,
                    recv_stride: reply_stride,
                    recv_flag: reply_flag,
                    payload,
                };
                self.inject(now, cid, requester, pkt, tid)?;
            }
            TxJob::RemoteStoreTx { dst, offset, .. } => {
                let pkt = Packet::RemoteStore {
                    src: cid,
                    raddr: VAddr::new(offset),
                    payload,
                };
                self.inject(now, cid, dst, pkt, tid)?;
            }
            TxJob::RemoteLoadReqTx { dst, offset, len } => {
                let pkt = Packet::RemoteLoadReq {
                    src: cid,
                    raddr: VAddr::new(offset),
                    size: len,
                };
                self.inject(now, cid, dst, pkt, tid)?;
            }
            TxJob::RemoteLoadReplyTx { dst, .. } => {
                let pkt = Packet::RemoteLoadReply { src: cid, payload };
                self.inject(now, cid, dst, pkt, tid)?;
            }
            TxJob::RemoteAckTx { dst } => {
                let pkt = Packet::RemoteStoreAck { src: cid };
                self.inject(now, cid, dst, pkt, tid)?;
            }
        }
        Ok(())
    }

    fn inject(
        &mut self,
        at: SimTime,
        src: CellId,
        dst: CellId,
        pkt: Packet,
        tid: u64,
    ) -> ApResult<()> {
        if self.fault.is_some() && src != dst {
            // Fault layer: wrap the packet in a sequence-numbered,
            // checksummed, acknowledged envelope and transmit over the
            // faulty network. (Loopback stays below — the MSC+
            // short-circuit cannot lose a packet to its own cell.)
            let f = self.fault_mut()?;
            f.next_seq += 1;
            let seq = f.next_seq;
            f.outstanding.insert(
                seq,
                Outstanding {
                    src,
                    dst,
                    pkt,
                    tid,
                    attempts: 0,
                },
            );
            return self.transmit_seq(at, seq);
        }
        let arrival = if src == dst {
            // Loopback: the MSC+ short-circuits the network.
            at
        } else {
            self.machine
                .tnet
                .transfer_tagged(at, src, dst, pkt.wire_bytes(), tid)
        };
        self.charge_xfer(tid, Seg::Net, arrival);
        self.evq.push(
            arrival,
            Ev::Arrive {
                dst: dst.as_u32(),
                pkt,
                tid,
            },
        );
        Ok(())
    }

    // ---- fault layer: envelope, ack, retry, crash ------------------------

    /// Transmits envelope `seq` (first attempt or retry) at `at`: stamps
    /// the FNV payload checksum (flipping a bit if an injected corruption
    /// strikes), asks the faulty T-net for a verdict — deliver, detour, or
    /// drop — and arms the attempt's backoff retry timer.
    fn transmit_seq(&mut self, at: SimTime, seq: u64) -> ApResult<()> {
        // Field-level borrow: `f` must stay disjoint from `self.machine`
        // for the faulty-network call below.
        let f = self.fault.as_mut().ok_or_else(|| {
            ApError::internal(
                None,
                "fault-layer",
                "fault event fired without a fault layer",
            )
        })?;
        let o = f.outstanding.get_mut(&seq).ok_or_else(|| {
            ApError::internal(
                None,
                "fault-layer",
                format!("transmit of retired envelope seq {seq}"),
            )
        })?;
        o.attempts += 1;
        let attempt = o.attempts;
        let (src, dst, tid) = (o.src, o.dst, o.tid);
        let bytes = o.pkt.wire_bytes();
        let mut tag = checksum(o.pkt.payload_slice());
        let pkt = o.pkt.clone();
        if f.plan.corrupt(src, dst, at) {
            // One bit flipped in flight; the receiver's recomputation
            // will miss the stamped tag and discard the packet.
            tag ^= 1 << 7;
        }
        let timeout = f.plan.recovery().timeout_for(attempt);
        // The retry clock starts at the packet's expected delivery
        // completion, not its departure: an 11 KB transfer's serialization
        // alone can exceed the base ack timeout, and timing out mid-flight
        // would spuriously retransmit every large packet.
        let deadline =
            match self
                .machine
                .tnet
                .transfer_faulty(at, src, dst, bytes, tid, &mut f.plan)?
            {
                Delivery::Delivered { at: arrival, .. } => {
                    self.evq.push(
                        arrival,
                        Ev::ArriveF {
                            dst: dst.as_u32(),
                            src: src.as_u32(),
                            seq,
                            tag,
                            pkt,
                            tid,
                        },
                    );
                    arrival + timeout
                }
                Delivery::Dropped => at + timeout,
            };
        self.evq.push(deadline, Ev::RetryTimeout { seq, attempt });
        Ok(())
    }

    /// An envelope reached `dst`: verify the checksum, acknowledge, and
    /// deliver unless this `(src, seq)` was already seen (an earlier
    /// attempt got through but its ack was lost — re-ack, deliver nothing,
    /// so a retried PUT cannot double-scatter or double-bump a flag).
    fn arrive_f(
        &mut self,
        dst: u32,
        src: u32,
        seq: u64,
        tag: u32,
        pkt: Packet,
        tid: u64,
    ) -> ApResult<()> {
        let now = self.now();
        if checksum(pkt.payload_slice()) != tag {
            // Detected corruption: discard unacknowledged; the sender's
            // retry timer recovers the transfer.
            self.fault_mut()?.plan.report.corrupt_detected += 1;
            self.machine
                .obs
                .instant(dst, Unit::RecvDma, "corrupt_drop", now, Bucket::Hw, seq);
            return Ok(());
        }
        self.send_ack(dst, src, seq, now)?;
        let f = self.fault_mut()?;
        if !f.replay.first_sighting(CellId::new(src), seq) {
            f.plan.report.dup_suppressed += 1;
            self.machine
                .obs
                .instant(dst, Unit::RecvDma, "dup_suppressed", now, Bucket::Hw, seq);
            return Ok(());
        }
        self.charge_xfer(tid, Seg::Net, now);
        self.arrive(dst, pkt, tid)
    }

    /// The receiver's MSC+ acknowledges envelope `seq` back to `src`.
    /// Acks are hardware-generated header-sized packets: they ride the
    /// same faulty network (and can be lost — the sender then retries and
    /// the receiver re-acks) but are never themselves acknowledged.
    fn send_ack(&mut self, from: u32, to: u32, seq: u64, now: SimTime) -> ApResult<()> {
        // Field-level borrow: `f` must stay disjoint from `self.machine`
        // for the faulty-network call below.
        let f = self.fault.as_mut().ok_or_else(|| {
            ApError::internal(
                None,
                "fault-layer",
                "fault event fired without a fault layer",
            )
        })?;
        f.plan.report.acks += 1;
        if let Delivery::Delivered { at, .. } = self.machine.tnet.transfer_faulty(
            now,
            CellId::new(from),
            CellId::new(to),
            HEADER_BYTES,
            0,
            &mut f.plan,
        )? {
            self.evq.push(at, Ev::AckArrive { seq });
        }
        Ok(())
    }

    /// Envelope `seq`'s ack did not arrive in time: retransmit with the
    /// next backed-off timeout, or — past the retry budget — abort the
    /// run with a structured delivery failure.
    fn retry_timeout(&mut self, seq: u64) -> ApResult<()> {
        let now = self.now();
        let f = self.fault_mut()?;
        let max_retries = f.plan.recovery().max_retries;
        let Some(o) = f.outstanding.get(&seq) else {
            return Err(ApError::internal(
                None,
                "fault-retry",
                format!("retry timer fired for retired envelope seq {seq} (stale timers are skipped before dispatch)"),
            ));
        };
        if o.attempts > max_retries {
            let o = f.outstanding.remove(&seq).ok_or_else(|| {
                ApError::internal(
                    None,
                    "fault-retry",
                    format!("envelope seq {seq} vanished between lookup and removal"),
                )
            })?;
            let failure = DeliveryFailure {
                src: o.src,
                dst: o.dst,
                op: o.pkt.kind_name(),
                attempts: o.attempts,
                at: now,
            };
            let cause = failure.to_string();
            f.plan.report.failures.push(failure);
            return Err(ApError::Fault(Box::new(self.fault_report(cause))));
        }
        f.plan.note_retry(o.pkt.kind_name());
        let src = o.src.as_u32();
        self.machine
            .obs
            .instant(src, Unit::Net, "retry", now, Bucket::Hw, seq);
        self.transmit_seq(now, seq)?;
        Ok(())
    }

    /// Fail-stop crash of `cell`: its hardware goes silent — pending
    /// wakes, DMA completions, and arrivals addressed to it are discarded
    /// (see [`Kernel::skips`]), its unacknowledged envelopes die with it,
    /// and any barrier it participates in can never complete.
    fn crash(&mut self, cell: u32) -> ApResult<()> {
        let now = self.now();
        let f = self.fault_mut()?;
        f.dead[cell as usize] = true;
        f.plan.note_crash(CellId::new(cell), now);
        // Fail-stop: nothing the dead cell had awaiting acknowledgement is
        // ever retransmitted; the orphaned retry timers go stale.
        f.outstanding.retain(|_, o| o.src.as_u32() != cell);
        let dead: Vec<CellId> = f
            .dead
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| CellId::new(i as u32))
            .collect();
        self.pending[cell as usize].clear();
        self.waiters[cell as usize] = None;
        let hw = &mut self.machine.cells[cell as usize];
        hw.send_busy = false;
        hw.active_tx = None;
        self.machine
            .obs
            .instant(cell, Unit::Cpu, "crash", now, Bucket::Hw, 0);
        // Eager barrier abort: cells already parked at the S-net barrier
        // would otherwise wait for a participant that can never arrive.
        let waiting: Vec<CellId> = self
            .waiters
            .iter()
            .enumerate()
            .filter(|(_, w)| matches!(w, Some(Waiter::Barrier { .. })))
            .map(|(i, _)| CellId::new(i as u32))
            .collect();
        if !waiting.is_empty() {
            return Err(ApError::BarrierAborted {
                at: now,
                waiting,
                dead,
            });
        }
        Ok(())
    }

    // ---- hardware: receive path ------------------------------------------

    fn arrive(&mut self, dst: u32, pkt: Packet, tid: u64) -> ApResult<()> {
        let now = self.now();
        match pkt {
            pkt @ (Packet::GetReq { .. } | Packet::RemoteLoadReq { .. }) => {
                // The MSC+ message handler serves arrivals strictly in
                // order: a request may not be answered before every
                // earlier-arriving payload has been deposited by the
                // receive DMA. That ordering is what makes the §4.1
                // acknowledge scheme sound — a PUT's ack-probe reply must
                // not overtake the PUT data it acknowledges — and is
                // equally what lets a DSM remote load observe an
                // earlier-arriving remote store. A zero-duration receive
                // reservation places the request behind all queued
                // deliveries without consuming DMA bandwidth.
                let (_, end) = self.machine.cells[dst as usize]
                    .recv_dma
                    .reserve(now, SimTime::ZERO);
                self.charge_xfer(tid, Seg::Delivery, end);
                self.evq.push(end, Ev::RecvDone { dst, pkt, tid });
            }
            Packet::RemoteStoreAck { .. } => {
                let hw = &mut self.machine.cells[dst as usize];
                hw.rstore_acked += 1;
                if hw.rstore_acked == hw.rstore_issued {
                    if let Some(Waiter::Fence { since }) =
                        self.take_waiter_if(dst, |w| matches!(w, Waiter::Fence { .. }))
                    {
                        self.add_idle(dst, since, now);
                        self.machine.obs.span_id(
                            dst,
                            Unit::Cpu,
                            "remote_fence",
                            since,
                            now.saturating_sub(since),
                            Bucket::Idle,
                            0,
                            tid,
                        );
                        self.wake_at(dst, now, Response::Unit);
                    }
                }
            }
            Packet::RegStore { reg, value, .. } => {
                self.reg_store_arrived(dst, reg, value, now, tid)?;
            }
            Packet::RemoteLoadReply { payload, .. } => {
                if let Some(Waiter::Load { since }) =
                    self.take_waiter_if(dst, |w| matches!(w, Waiter::Load { .. }))
                {
                    self.add_idle(dst, since, now);
                    self.machine.obs.span_id(
                        dst,
                        Unit::Cpu,
                        "remote_load",
                        since,
                        now.saturating_sub(since),
                        Bucket::Idle,
                        payload.len() as u64,
                        tid,
                    );
                    // The one delivery-side copy: the bytes leave the
                    // shared buffer for the caller.
                    self.wake_at(dst, now, Response::Bytes(payload.to_vec()));
                }
            }
            data_pkt @ (Packet::PutData { .. }
            | Packet::GetReply { .. }
            | Packet::RingMsg { .. }
            | Packet::RemoteStore { .. }) => {
                // Receive DMA serializes arriving payloads.
                let items = match &data_pkt {
                    Packet::PutData { recv_stride, .. } => recv_stride.count,
                    Packet::GetReply { recv_stride, .. } => recv_stride.count,
                    _ => 1,
                };
                let bytes = data_pkt.payload_bytes();
                let dur = self.machine.dma_time(bytes, items);
                let (start, end) = self.machine.cells[dst as usize].recv_dma.reserve(now, dur);
                self.charge_xfer(tid, Seg::Delivery, end);
                self.machine.obs.span_id(
                    dst,
                    Unit::RecvDma,
                    "recv_dma",
                    start,
                    end.saturating_sub(start),
                    Bucket::Hw,
                    bytes,
                    tid,
                );
                self.evq.push(
                    end,
                    Ev::RecvDone {
                        dst,
                        pkt: data_pkt,
                        tid,
                    },
                );
            }
        }
        Ok(())
    }

    fn recv_done(&mut self, dst: u32, pkt: Packet, tid: u64) -> ApResult<()> {
        let now = self.now();
        let did = CellId::new(dst);
        match pkt {
            Packet::GetReq {
                src,
                raddr,
                send_stride,
                send_flag,
                reply_laddr,
                reply_stride,
                reply_flag,
            } => {
                // Enter the reply queue; the send controller answers
                // automatically (§3.2 "the message handler must reply to
                // the GET request automatically").
                self.push_tx(
                    dst,
                    TxQueue::GetReply,
                    tid,
                    TxJob::GetReply {
                        requester: src,
                        raddr,
                        send_stride,
                        send_flag,
                        reply_laddr,
                        reply_stride,
                        reply_flag,
                    },
                    now,
                );
                self.evq.push(now, Ev::SendPop { cell: dst });
            }
            Packet::RemoteLoadReq { src, raddr, size } => {
                let data = Payload::from(self.machine.dsm_read(did, raddr.as_u64(), size)?);
                self.push_tx(
                    dst,
                    TxQueue::RemoteReply,
                    tid,
                    TxJob::RemoteLoadReplyTx { dst: src, data },
                    now,
                );
                self.evq.push(now, Ev::SendPop { cell: dst });
            }
            Packet::PutData {
                raddr,
                recv_stride,
                recv_flag,
                payload,
                ..
            } => {
                self.machine.scatter(did, raddr, recv_stride, &payload)?;
                self.bump_flag(dst, recv_flag, tid, Unit::RecvDma)?;
                self.finish_xfer(tid, now);
            }
            Packet::GetReply {
                laddr,
                recv_stride,
                recv_flag,
                payload,
                ..
            } => {
                if !payload.is_empty() {
                    self.machine.scatter(did, laddr, recv_stride, &payload)?;
                }
                self.bump_flag(dst, recv_flag, tid, Unit::RecvDma)?;
                self.finish_xfer(tid, now);
            }
            Packet::RingMsg { src, payload } => {
                let hw = &mut self.machine.cells[dst as usize];
                hw.ring_bytes += payload.len() as u64;
                hw.ring[src.index()].push_back(payload);
                // §4.3: a full ring buffer interrupts the OS to allocate a
                // new one; the receiving CPU pays the service time.
                if hw.ring_bytes > self.machine.cfg.hw.ring_capacity {
                    let buffered = hw.ring_bytes;
                    hw.ring_bytes = 0; // fresh buffer
                    hw.ring_overflows += 1;
                    let service = self.machine.cfg.hw.os_interrupt_time;
                    self.charge_overhead(dst, service);
                    self.machine.obs.instant(
                        dst,
                        Unit::Queue,
                        "ring_overflow",
                        now,
                        Bucket::Hw,
                        buffered,
                    );
                }
                // A blocked receiver found its source queue empty, so the
                // only message that can satisfy it is the one just pushed.
                if let Some(Waiter::Recv {
                    src: wsrc,
                    laddr,
                    max,
                    since,
                }) = self.take_waiter_if(
                    dst,
                    |w| matches!(w, Waiter::Recv { src: s, .. } if *s == src),
                ) {
                    let payload = self.machine.cells[dst as usize].ring[wsrc.index()]
                        .pop_front()
                        .ok_or_else(|| {
                            ApError::internal(
                                CellId::new(dst),
                                "msc-ring",
                                format!(
                                    "message queued from cell{src} vanished before its \
                                     blocked receiver woke"
                                ),
                            )
                        })?;
                    self.add_idle(dst, since, now);
                    self.machine.obs.span_id(
                        dst,
                        Unit::Cpu,
                        "recv_wait",
                        since,
                        now.saturating_sub(since),
                        Bucket::Idle,
                        payload.len() as u64,
                        tid,
                    );
                    self.complete_recv(dst, laddr, max, payload, now)?;
                }
            }
            Packet::RemoteStore {
                src,
                raddr,
                payload,
            } => {
                self.machine.dsm_write(did, raddr.as_u64(), &payload)?;
                self.push_tx(
                    dst,
                    TxQueue::RemoteReply,
                    tid,
                    TxJob::RemoteAckTx { dst: src },
                    now,
                );
                self.evq.push(now, Ev::SendPop { cell: dst });
            }
            other => unreachable!("recv_done got non-payload packet {other:?}"),
        }
        Ok(())
    }

    // ---- flags and registers ---------------------------------------------

    /// Fetch-and-increment `flag` on `cell` and wake a satisfied waiter.
    /// `tid` and `unit` identify the transfer chain and hardware unit
    /// performing the update, so the release is attributable.
    fn bump_flag(&mut self, cell: u32, flag: VAddr, tid: u64, unit: Unit) -> ApResult<()> {
        let now = self.now();
        let Some(new) = self.machine.incr_flag(CellId::new(cell), flag)? else {
            return Ok(());
        };
        self.machine.obs.instant_id(
            cell,
            unit,
            "flag_update",
            now,
            Bucket::Hw,
            flag.as_u64(),
            tid,
        );
        let flag_u = flag.as_u64();
        if let Some(Waiter::Flag { since, .. }) = self.take_waiter_if(
            cell,
            |w| matches!(w, Waiter::Flag { flag: f, target, .. } if *f == flag_u && new >= *target),
        ) {
            let check = self.machine.cfg.hw.flag_check_time;
            self.add_idle(cell, since, now);
            let waited = now.saturating_sub(since);
            self.machine.flag_wait.record(waited.as_nanos());
            self.machine.obs.span_id(
                cell,
                Unit::Cpu,
                "wait_flag",
                since,
                waited,
                Bucket::Idle,
                flag_u,
                tid,
            );
            self.charge_overhead(cell, check);
            self.wake_at(cell, now + check, Response::Unit);
        }
        Ok(())
    }

    /// A communication-register store reached `cell` at `at`.
    fn reg_store_arrived(
        &mut self,
        cell: u32,
        reg: u16,
        value: u32,
        at: SimTime,
        tid: u64,
    ) -> ApResult<()> {
        let clobbered = self.machine.cells[cell as usize]
            .regs
            .store(reg as usize, value);
        if clobbered {
            return Err(ApError::InvalidArg(format!(
                "communication register {reg} on cell{cell} overwritten while p-bit set \
                 (reduction protocol violation)"
            )));
        }
        if let Some(Waiter::Reg { since, .. }) = self.take_waiter_if(
            cell,
            |w| matches!(w, Waiter::Reg { reg: r, .. } if *r == reg),
        ) {
            let v = self.machine.cells[cell as usize]
                .regs
                .load(reg as usize)
                .ok_or_else(|| {
                    ApError::internal(
                        CellId::new(cell),
                        "cregs",
                        format!("communication register {reg} lost its p-bit between store and waiter wake"),
                    )
                })?;
            let cost = self.machine.cfg.hw.reg_load_time;
            self.add_idle(cell, since, at);
            self.machine.obs.span_id(
                cell,
                Unit::Cpu,
                "reg_load_wait",
                since,
                at.saturating_sub(since),
                Bucket::Idle,
                reg as u64,
                tid,
            );
            self.charge_overhead(cell, cost);
            self.wake_at(cell, at + cost, Response::Value(v));
        }
        Ok(())
    }
}

/// Static name of a request variant, recorded per cell so a lost cell's
/// report can say what it last asked the machine to do.
fn req_name(req: &Request) -> &'static str {
    match req {
        Request::Batch(_) => "batch",
        Request::Alloc { .. } => "alloc",
        Request::ReadMem { .. } => "read_mem",
        Request::WriteMem { .. } => "write_mem",
        Request::Work { .. } => "work",
        Request::Rts { .. } => "rts",
        Request::Put(_) => "put",
        Request::Get(_) => "get",
        Request::WaitFlag { .. } => "wait_flag",
        Request::ReadFlag { .. } => "read_flag",
        Request::Barrier => "barrier",
        Request::Send { .. } => "send",
        Request::Recv { .. } => "recv",
        Request::RegStore { .. } => "reg_store",
        Request::RegLoad { .. } => "reg_load",
        Request::Bcast { .. } => "bcast",
        Request::RemoteStore { .. } => "remote_store",
        Request::RemoteLoad { .. } => "remote_load",
        Request::RemoteFence => "remote_fence",
        Request::Mark(_) => "mark",
        Request::Fail(_) => "fail",
        Request::Finish => "finish",
    }
}

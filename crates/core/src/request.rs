//! The runtime protocol between cell programs and the simulation kernel.
//!
//! Cell programs run on their own host threads; every interaction with the
//! simulated machine is a [`Request`] sent to the kernel, answered by a
//! [`Response`] when simulated time has advanced to the operation's
//! completion. The handoff is strictly one-at-a-time (baton passing), which
//! keeps the whole simulation deterministic.

use apmsc::{GetArgs, PutArgs};
use aputil::{CellId, VAddr};

/// Zero-time trace markers a program can record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mark {
    /// One scalar global reduction completed (Table 3 "Gop").
    GopScalar,
    /// One vector global reduction completed (Table 3 "V Gop").
    GopVector,
}

/// A cell program's request to the kernel.
#[derive(Clone, Debug)]
pub(crate) enum Request {
    /// A run of posted asynchronous requests (each answered by
    /// [`Response::Unit`]) with the cell's next synchronous request
    /// appended last. One host round trip carries the whole run; the
    /// kernel dispatches the entries one per wake, at exactly the sim
    /// times the one-request-per-trip protocol would have.
    Batch(Vec<Request>),
    /// Allocate zeroed logical memory; responds [`Response::Addr`].
    Alloc { bytes: u64 },
    /// Read simulated memory (data plane, zero simulated time).
    ReadMem { addr: VAddr, len: u64 },
    /// Write simulated memory (data plane, zero simulated time).
    WriteMem { addr: VAddr, data: Vec<u8> },
    /// Burn CPU time for `flops` abstract operations.
    Work { flops: u64 },
    /// Burn CPU time for `units` of run-time-system work.
    Rts { units: u64 },
    /// Issue a PUT (non-blocking).
    Put(PutArgs),
    /// Issue a GET (non-blocking; completion via `recv_flag`).
    Get(GetArgs),
    /// Block until the local flag reaches `target`.
    WaitFlag { flag: VAddr, target: u32 },
    /// Read a flag's current value (non-blocking check).
    ReadFlag { flag: VAddr },
    /// Enter the machine-wide S-net barrier.
    Barrier,
    /// Blocking SEND of `bytes` from `laddr` to `dst`'s ring buffer.
    Send {
        dst: CellId,
        laddr: VAddr,
        bytes: u64,
    },
    /// Blocking RECEIVE of the next ring message from `src` into `laddr`
    /// (at most `max` bytes); responds [`Response::Len`].
    Recv { src: CellId, laddr: VAddr, max: u64 },
    /// Store to a communication register of `dst` (non-blocking).
    RegStore { dst: CellId, reg: u16, value: u32 },
    /// Blocking load of a local communication register (p-bit retry).
    RegLoad { reg: u16 },
    /// Collective B-net broadcast: `root`'s `bytes` at `laddr` land at
    /// every cell's `laddr`.
    Bcast {
        root: CellId,
        laddr: VAddr,
        bytes: u64,
    },
    /// Non-blocking remote store into `dst`'s shared-memory window.
    RemoteStore {
        dst: CellId,
        offset: u64,
        data: Vec<u8>,
    },
    /// Blocking remote load from `dst`'s shared-memory window.
    RemoteLoad { dst: CellId, offset: u64, len: u64 },
    /// Block until every issued remote store has been acknowledged.
    RemoteFence,
    /// Record a zero-time trace marker.
    Mark(Mark),
    /// The cell program panicked; abort the whole run (no response).
    Fail(String),
    /// The cell program finished (no response follows).
    Finish,
}

/// Kernel's answer to a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Response {
    /// Operation complete.
    Unit,
    /// Address from an allocation.
    Addr(VAddr),
    /// Raw bytes (memory read, remote load).
    Bytes(Vec<u8>),
    /// A register or flag value.
    Value(u32),
    /// Byte count of a received message.
    Len(u64),
}

//! The cell-program API: what SPMD code sees.
//!
//! A [`Cell`] is handed to each copy of the program by
//! [`run_with`](crate::run_with). Every method is a *simulated* operation:
//! it advances this cell's simulated clock, may block on other cells, and
//! is recorded in the probe trace. The API mirrors §2.2/§3.1 of the paper —
//! `put`/`get` (plain and strided), flags, SEND/RECEIVE, barriers,
//! communication registers, reductions — plus a data plane
//! (`read_slice`/`write_slice`) for setting up inputs and checking results
//! at zero simulated cost.

use crate::request::{Mark, Request, Response};
use apmsc::{GetArgs, PutArgs, StrideSpec, MAX_DMA_BYTES};
use aputil::bytes::{decode_slice, encode_slice, Pod};
use aputil::{CellId, VAddr};
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;

/// Write-through page size (§4.2's cache granule; the real machine used
/// MMU pages, we use 1 KB blocks to keep miss traffic reasonable at the
/// reproduction's scales).
pub const WT_PAGE: u64 = 1024;

/// Reduction operators for the scalar global operations (§4.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Global summation.
    Sum,
    /// Global maximum.
    Max,
    /// Global minimum.
    Min,
}

impl ReduceOp {
    fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

// Communication-register protocol slots used by the software collectives.
const REG_UP_L: u16 = 0; // pair (0,1): left child's value
const REG_UP_R: u16 = 2; // pair (2,3): right child's value
const REG_DOWN: u16 = 4; // pair (4,5): result from parent
const REG_BAR_L: u16 = 6; // left child arrived
const REG_BAR_R: u16 = 7; // right child arrived
const REG_BAR_DOWN: u16 = 8; // release from parent

/// One cell's handle on the simulated machine.
///
/// Created by [`run_with`](crate::run_with); one per SPMD program copy.
pub struct Cell {
    id: CellId,
    ncells: u32,
    req_tx: Sender<(u32, Request)>,
    resume_rx: Receiver<Response>,
    /// Posted asynchronous requests not yet shipped to the kernel. Every
    /// one resolves to [`Response::Unit`], so nothing is lost by batching
    /// them with the next synchronous call into one host round trip.
    pending: Vec<Request>,
    /// Under the windowed PDES engine, blocking operations that return
    /// no data (`wait_flag`, `barrier`, `send`, …) are posted instead of
    /// called: the kernel dispatches them at identical simulated times
    /// (the PR-4 batching argument), and the program thread keeps
    /// computing instead of blocking on a host round trip. Off on the
    /// serial engine so its host behavior is exactly the classic baton.
    wide_batch: bool,
    ack_flag: VAddr,
    acks_issued: u32,
    scratch: VAddr,
    scratch_len: u64,
    wt_cache: HashMap<(u32, u64), Vec<u8>>,
    wt_hits: u64,
    wt_misses: u64,
}

impl Cell {
    pub(crate) fn new(
        id: CellId,
        ncells: u32,
        req_tx: Sender<(u32, Request)>,
        resume_rx: Receiver<Response>,
        wide_batch: bool,
    ) -> Self {
        Cell {
            id,
            ncells,
            req_tx,
            resume_rx,
            pending: Vec::new(),
            wide_batch,
            ack_flag: VAddr::NULL,
            acks_issued: 0,
            scratch: VAddr::NULL,
            scratch_len: 0,
            wt_cache: HashMap::new(),
            wt_hits: 0,
            wt_misses: 0,
        }
    }

    /// Waits for the kernel's boot baton (called once before the program).
    pub(crate) fn wait_boot(&mut self) {
        let r = self.resume_rx.recv().expect("machine stopped before boot");
        debug_assert_eq!(r, Response::Unit);
        // The implicit acknowledge flag of the Ack & Barrier model (§2.2).
        self.ack_flag = self.alloc_bytes(4);
    }

    /// Signals program completion (called once after the program).
    pub(crate) fn finish(&mut self) {
        let req = self.flushed(Request::Finish);
        let _ = self.req_tx.send((self.id.as_u32(), req));
    }

    pub(crate) fn fail(&mut self, reason: String) {
        let req = self.flushed(Request::Fail(reason));
        let _ = self.req_tx.send((self.id.as_u32(), req));
    }

    /// Wraps `last` together with any posted requests, preserving program
    /// order. Finish/Fail also flush this way, so even a program that ends
    /// on an asynchronous call retires everything it issued.
    fn flushed(&mut self, last: Request) -> Request {
        if self.pending.is_empty() {
            last
        } else {
            let mut reqs = std::mem::take(&mut self.pending);
            reqs.push(last);
            Request::Batch(reqs)
        }
    }

    /// Queues an asynchronous request (response is always `Unit`) to ride
    /// along with the next synchronous call — no host round trip of its
    /// own. The kernel dispatches it at the same simulated time either way.
    fn post(&mut self, req: Request) {
        self.pending.push(req);
    }

    fn call(&mut self, req: Request) -> Response {
        let req = self.flushed(req);
        self.req_tx
            .send((self.id.as_u32(), req))
            .expect("machine stopped");
        self.resume_rx.recv().expect("machine stopped")
    }

    /// Ships a blocking-but-unit-valued request: posted under the
    /// windowed engine (the simulated blocking is preserved by the
    /// kernel's dispatch schedule; only the *host* round trip is
    /// skipped), a classic blocking call on the serial engine.
    fn sync_unit(&mut self, req: Request) {
        if self.wide_batch {
            self.post(req);
        } else {
            self.call(req);
        }
    }

    /// Ships `N` synchronous requests back-to-back, then collects their
    /// `N` responses in issue order ("request pipelining"). The wire
    /// stream — and with it the event stream and every simulated time —
    /// is identical to issuing them as sequential blocking calls: the
    /// kernel dispatches request `k + 1` only when request `k`'s wake
    /// commits, whatever the host arrival time (early arrivals sit in
    /// the kernel's per-cell stash). Under the windowed engine the
    /// program thread parks once instead of `N` times; on the serial
    /// engine this degrades to exactly the classic exchange.
    ///
    /// Only the first request picks up posted requests (as in a serial
    /// sequence, where [`Cell::flushed`] would attach them there); a
    /// caller mirroring a serial interleaving with posts *between* two
    /// calls passes an explicit [`Request::Batch`].
    fn call_pipelined<const N: usize>(&mut self, reqs: [Request; N]) -> [Response; N] {
        if self.wide_batch {
            for (k, req) in reqs.into_iter().enumerate() {
                let req = if k == 0 { self.flushed(req) } else { req };
                self.req_tx
                    .send((self.id.as_u32(), req))
                    .expect("machine stopped");
            }
            std::array::from_fn(|_| self.resume_rx.recv().expect("machine stopped"))
        } else {
            reqs.map(|req| self.call(req))
        }
    }

    // ---- identity ------------------------------------------------------

    /// This cell's index, `0..ncells`.
    pub fn id(&self) -> usize {
        self.id.index()
    }

    /// This cell's [`CellId`].
    pub fn cell_id(&self) -> CellId {
        self.id
    }

    /// Number of cells in the machine.
    pub fn ncells(&self) -> usize {
        self.ncells as usize
    }

    /// `true` on cell 0.
    pub fn is_root(&self) -> bool {
        self.id == CellId::ROOT
    }

    // ---- memory (data plane) ---------------------------------------------

    /// Allocates `bytes` of zeroed logical memory.
    ///
    /// All cells of an SPMD program that allocate in lockstep get the same
    /// logical addresses, which is what makes "the same array on the remote
    /// cell" well-defined for PUT/GET.
    ///
    /// # Panics
    ///
    /// Panics if the cell's DRAM is exhausted.
    pub fn alloc_bytes(&mut self, bytes: u64) -> VAddr {
        match self.call(Request::Alloc { bytes }) {
            Response::Addr(a) => a,
            r => unreachable!("alloc got {r:?}"),
        }
    }

    /// Allocates a zeroed array of `n` scalars.
    pub fn alloc<T: Pod>(&mut self, n: usize) -> VAddr {
        self.alloc_bytes((n * T::SIZE) as u64)
    }

    /// Allocates a fresh 4-byte completion flag (initially 0).
    pub fn alloc_flag(&mut self) -> VAddr {
        self.alloc_bytes(4)
    }

    /// Writes a typed slice into simulated memory (zero simulated time —
    /// pair with [`Cell::work`] to account for the computation that
    /// produced the data).
    pub fn write_slice<T: Pod>(&mut self, addr: VAddr, data: &[T]) {
        self.post(Request::WriteMem {
            addr,
            data: encode_slice(data),
        });
    }

    /// Reads a typed slice from simulated memory (zero simulated time).
    pub fn read_slice<T: Pod>(&mut self, addr: VAddr, n: usize) -> Vec<T> {
        match self.call(Request::ReadMem {
            addr,
            len: (n * T::SIZE) as u64,
        }) {
            Response::Bytes(b) => decode_slice(&b),
            r => unreachable!("read got {r:?}"),
        }
    }

    /// Writes one scalar.
    pub fn write_pod<T: Pod>(&mut self, addr: VAddr, v: T) {
        self.write_slice(addr, &[v]);
    }

    /// Reads one scalar.
    pub fn read_pod<T: Pod>(&mut self, addr: VAddr) -> T {
        self.read_slice::<T>(addr, 1)[0]
    }

    // ---- computation ------------------------------------------------------

    /// Spends CPU time for `flops` abstract floating-point operations.
    pub fn work(&mut self, flops: u64) {
        if flops > 0 {
            self.post(Request::Work { flops });
        }
    }

    /// Spends CPU time for `units` of run-time-system work (index
    /// conversion, stride-pattern discovery — §2.1).
    pub fn rts(&mut self, units: u64) {
        if units > 0 {
            self.post(Request::Rts { units });
        }
    }

    // ---- PUT/GET ---------------------------------------------------------

    /// One-sided contiguous write of `bytes` from local `laddr` to `raddr`
    /// on cell `dst` (§3.1). Non-blocking: returns once the command is in
    /// the MSC+ queue. `send_flag` (local) and `recv_flag` (remote)
    /// increment at the respective DMA completions; pass [`VAddr::NULL`]
    /// for "no flag". With `ack`, an acknowledge GET probe is issued after
    /// the PUT (§4.1); await it with [`Cell::wait_acks`].
    ///
    /// Transfers larger than one DMA operation (4 MB, §4.1) are split
    /// into maximal chunks, issued in order. The in-order T-net delivers
    /// the chunks in issue order, so the flags and the acknowledge probe
    /// ride only on the *last* chunk and still signal completion of the
    /// whole transfer — each flag increments exactly once per `put` call.
    /// A zero-byte `put` is rejected by issue-time validation like any
    /// other empty transfer.
    #[allow(clippy::too_many_arguments)] // §3.1's own argument list
    pub fn put(
        &mut self,
        dst: usize,
        raddr: VAddr,
        laddr: VAddr,
        bytes: u64,
        send_flag: VAddr,
        recv_flag: VAddr,
        ack: bool,
    ) {
        for (off, spec, last) in Self::dma_chunks(bytes) {
            self.put_stride(
                dst,
                raddr + off,
                laddr + off,
                spec,
                spec,
                if last { send_flag } else { VAddr::NULL },
                if last { recv_flag } else { VAddr::NULL },
                ack && last,
            );
        }
    }

    /// Splits a contiguous transfer into `(offset, spec, is_last)` DMA
    /// chunks of at most [`MAX_DMA_BYTES`]. Zero bytes yields one empty
    /// (`count == 0`) chunk so issue-time validation reports the
    /// zero-length transfer instead of a panic in spec construction.
    fn dma_chunks(bytes: u64) -> Vec<(u64, StrideSpec, bool)> {
        if bytes == 0 {
            let empty = StrideSpec {
                item_size: 1,
                count: 0,
                skip: 1,
            };
            return vec![(0, empty, true)];
        }
        let mut chunks = Vec::new();
        let mut off = 0;
        while off < bytes {
            let len = (bytes - off).min(MAX_DMA_BYTES);
            chunks.push((off, StrideSpec::contiguous(len), off + len == bytes));
            off += len;
        }
        chunks
    }

    /// Strided PUT: gathers `send` at `laddr`, scatters `recv` at `raddr`
    /// on `dst` (§3.1 `put_stride`).
    #[allow(clippy::too_many_arguments)]
    pub fn put_stride(
        &mut self,
        dst: usize,
        raddr: VAddr,
        laddr: VAddr,
        send: StrideSpec,
        recv: StrideSpec,
        send_flag: VAddr,
        recv_flag: VAddr,
        ack: bool,
    ) {
        self.post(Request::Put(PutArgs {
            dst: CellId::new(dst as u32),
            raddr,
            laddr,
            send_stride: send,
            recv_stride: recv,
            send_flag,
            recv_flag,
            ack,
        }));
        if ack {
            // §4.1: "the program issues a GET operation after the PUT
            // operation, and the program uses the GET reply packet for
            // acknowledgment." The in-order T-net guarantees the probe
            // returns only after the PUT has been received.
            let ack_flag = self.ack_flag;
            self.acks_issued += 1;
            self.post(Request::Get(GetArgs {
                src_cell: CellId::new(dst as u32),
                raddr: VAddr::NULL,
                laddr: VAddr::NULL,
                send_stride: StrideSpec::contiguous(4),
                recv_stride: StrideSpec::contiguous(4),
                send_flag: VAddr::NULL,
                recv_flag: ack_flag,
            }));
        }
    }

    /// One-sided contiguous read of `bytes` from `raddr` on cell `src`
    /// into local `laddr` (§3.1). Non-blocking: completion is observed via
    /// `recv_flag` (local, incremented when the reply lands); `send_flag`
    /// increments on the remote cell when the reply leaves it.
    ///
    /// Like [`Cell::put`], transfers beyond the 4 MB DMA limit are split
    /// into in-order chunks with both flags riding on the last one, so
    /// each flag increments exactly once per `get` call.
    pub fn get(
        &mut self,
        src: usize,
        raddr: VAddr,
        laddr: VAddr,
        bytes: u64,
        send_flag: VAddr,
        recv_flag: VAddr,
    ) {
        for (off, spec, last) in Self::dma_chunks(bytes) {
            self.get_stride(
                src,
                raddr + off,
                laddr + off,
                spec,
                spec,
                if last { send_flag } else { VAddr::NULL },
                if last { recv_flag } else { VAddr::NULL },
            );
        }
    }

    /// Strided GET (§3.1 `get_stride`).
    #[allow(clippy::too_many_arguments)]
    pub fn get_stride(
        &mut self,
        src: usize,
        raddr: VAddr,
        laddr: VAddr,
        send: StrideSpec,
        recv: StrideSpec,
        send_flag: VAddr,
        recv_flag: VAddr,
    ) {
        self.post(Request::Get(GetArgs {
            src_cell: CellId::new(src as u32),
            raddr,
            laddr,
            send_stride: send,
            recv_stride: recv,
            send_flag,
            recv_flag,
        }));
    }

    /// Blocks until the local flag at `flag` reaches `target`.
    pub fn wait_flag(&mut self, flag: VAddr, target: u32) {
        self.sync_unit(Request::WaitFlag { flag, target });
    }

    /// Non-blocking read of a flag's current value.
    pub fn read_flag(&mut self, flag: VAddr) -> u32 {
        match self.call(Request::ReadFlag { flag }) {
            Response::Value(v) => v,
            r => unreachable!("read_flag got {r:?}"),
        }
    }

    /// Blocks until every acknowledge requested via `put(..., ack=true)`
    /// has returned (the "Ack" half of the Ack & Barrier model, §2.2).
    pub fn wait_acks(&mut self) {
        let (flag, n) = (self.ack_flag, self.acks_issued);
        self.wait_flag(flag, n);
    }

    /// Number of acknowledged PUTs requested so far.
    pub fn acks_issued(&self) -> u32 {
        self.acks_issued
    }

    // ---- SEND/RECEIVE (§4.3) ----------------------------------------------

    /// Blocking SEND of `bytes` at `laddr` into `dst`'s ring buffer.
    /// Returns when the send DMA has drained the buffer (§5.4: "SEND
    /// operations are blocking").
    pub fn send(&mut self, dst: usize, laddr: VAddr, bytes: u64) {
        self.sync_unit(Request::Send {
            dst: CellId::new(dst as u32),
            laddr,
            bytes,
        });
    }

    /// Blocking RECEIVE of the next ring message from `src` into `laddr`
    /// (at most `max` bytes). Returns the received length.
    pub fn recv(&mut self, src: usize, laddr: VAddr, max: u64) -> u64 {
        match self.call(Request::Recv {
            src: CellId::new(src as u32),
            laddr,
            max,
        }) {
            Response::Len(n) => n,
            r => unreachable!("recv got {r:?}"),
        }
    }

    /// [`Cell::recv`] followed by a zero-cost [`Cell::read_slice`] of `n`
    /// scalars from the landing buffer: the identical wire requests,
    /// simulated cost, and event stream, pipelined into a single parked
    /// wait under the windowed engine. Returns the received byte length
    /// and the slice.
    pub fn recv_slice<T: Pod>(
        &mut self,
        src: usize,
        laddr: VAddr,
        max: u64,
        n: usize,
    ) -> (u64, Vec<T>) {
        let [len, data] = self.call_pipelined([
            Request::Recv {
                src: CellId::new(src as u32),
                laddr,
                max,
            },
            Request::ReadMem {
                addr: laddr,
                len: (n * T::SIZE) as u64,
            },
        ]);
        let len = match len {
            Response::Len(l) => l,
            r => unreachable!("recv got {r:?}"),
        };
        let data = match data {
            Response::Bytes(b) => decode_slice(&b),
            r => unreachable!("read got {r:?}"),
        };
        (len, data)
    }

    // ---- synchronization ---------------------------------------------------

    /// Machine-wide hardware barrier on the S-net.
    pub fn barrier(&mut self) {
        self.sync_unit(Request::Barrier);
    }

    /// Collective B-net broadcast: `root`'s `bytes` at `laddr` are
    /// delivered to the same `laddr` on every cell. All cells must call.
    pub fn bcast(&mut self, root: usize, laddr: VAddr, bytes: u64) {
        self.sync_unit(Request::Bcast {
            root: CellId::new(root as u32),
            laddr,
            bytes,
        });
    }

    /// Software barrier over an arbitrary cell `group` using communication
    /// registers (§4.5: "Software synchronization can be used for barrier
    /// synchronization for specific groups of cells"). Every member must
    /// call with the identical group slice; `group` must contain this cell.
    ///
    /// # Panics
    ///
    /// Panics if this cell is not in `group`.
    pub fn group_barrier(&mut self, group: &[usize]) {
        let pos = group
            .iter()
            .position(|&c| c == self.id())
            .expect("cell must be a member of its barrier group");
        let n = group.len();
        let (l, r) = (2 * pos + 1, 2 * pos + 2);
        // Up phase: wait for children, then notify parent.
        if l < n {
            self.reg_load(REG_BAR_L);
        }
        if r < n {
            self.reg_load(REG_BAR_R);
        }
        if pos > 0 {
            let parent = group[(pos - 1) / 2];
            let slot = if pos % 2 == 1 { REG_BAR_L } else { REG_BAR_R };
            self.reg_store(parent, slot, 1);
            // Down phase: wait for release.
            self.reg_load(REG_BAR_DOWN);
        }
        if l < n {
            self.reg_store(group[l], REG_BAR_DOWN, 1);
        }
        if r < n {
            self.reg_store(group[r], REG_BAR_DOWN, 1);
        }
    }

    // ---- communication registers (§4.4) -------------------------------------

    /// Stores `value` into communication register `reg` of cell `dst`
    /// (non-blocking; the registers live in shared memory space).
    pub fn reg_store(&mut self, dst: usize, reg: u16, value: u32) {
        self.post(Request::RegStore {
            dst: CellId::new(dst as u32),
            reg,
            value,
        });
    }

    /// Loads local communication register `reg`, blocking until its p-bit
    /// is set; consumes the value.
    pub fn reg_load(&mut self, reg: u16) -> u32 {
        match self.call(Request::RegLoad { reg }) {
            Response::Value(v) => v,
            r => unreachable!("reg_load got {r:?}"),
        }
    }

    fn reg_store_f64(&mut self, dst: usize, reg: u16, v: f64) {
        let bits = v.to_bits();
        self.reg_store(dst, reg, bits as u32);
        self.reg_store(dst, reg + 1, (bits >> 32) as u32);
    }

    fn reg_value(r: Response) -> u32 {
        match r {
            Response::Value(v) => v,
            r => unreachable!("reg_load got {r:?}"),
        }
    }

    fn reg_load_f64(&mut self, reg: u16) -> f64 {
        // The two halves are only needed together, so they pipeline into
        // one parked wait under the windowed engine.
        let [lo, hi] =
            self.call_pipelined([Request::RegLoad { reg }, Request::RegLoad { reg: reg + 1 }]);
        f64::from_bits(Self::reg_value(lo) as u64 | ((Self::reg_value(hi) as u64) << 32))
    }

    // ---- reductions (§4.5) ---------------------------------------------------

    /// Scalar global reduction over **all** cells using the communication
    /// registers (binary tree up, broadcast down). Returns the reduced
    /// value on every cell. Counted as one "Gop" in Table 3.
    pub fn reduce_f64(&mut self, x: f64, op: ReduceOp) -> f64 {
        let group: Vec<usize> = (0..self.ncells()).collect();
        self.group_reduce_f64(&group, x, op)
    }

    /// Scalar sum over all cells.
    pub fn reduce_sum_f64(&mut self, x: f64) -> f64 {
        self.reduce_f64(x, ReduceOp::Sum)
    }

    /// Scalar max over all cells.
    pub fn reduce_max_f64(&mut self, x: f64) -> f64 {
        self.reduce_f64(x, ReduceOp::Max)
    }

    /// Scalar reduction over an arbitrary `group` (§2.3 requires group
    /// reductions). Every member calls with the identical group; the
    /// result is returned to all members.
    ///
    /// # Panics
    ///
    /// Panics if this cell is not in `group`.
    pub fn group_reduce_f64(&mut self, group: &[usize], x: f64, op: ReduceOp) -> f64 {
        self.post(Request::Mark(Mark::GopScalar));
        let pos = group
            .iter()
            .position(|&c| c == self.id())
            .expect("cell must be a member of its reduction group");
        let n = group.len();
        let (l, r) = (2 * pos + 1, 2 * pos + 2);
        let mut acc = x;
        if l < n && r < n {
            // Both children: one four-deep pipeline covering what the
            // serial sequence issues as two `reg_load_f64`s with the
            // first combine's `work(1)` posted between them — the
            // explicit Batch reproduces that interleaving on the wire,
            // so the event stream is unchanged.
            let [a, b, c, d] = self.call_pipelined([
                Request::RegLoad { reg: REG_UP_L },
                Request::RegLoad { reg: REG_UP_L + 1 },
                Request::Batch(vec![
                    Request::Work { flops: 1 },
                    Request::RegLoad { reg: REG_UP_R },
                ]),
                Request::RegLoad { reg: REG_UP_R + 1 },
            ]);
            let vl =
                f64::from_bits(Self::reg_value(a) as u64 | ((Self::reg_value(b) as u64) << 32));
            let vr =
                f64::from_bits(Self::reg_value(c) as u64 | ((Self::reg_value(d) as u64) << 32));
            acc = op.combine(op.combine(acc, vl), vr);
            self.work(1);
        } else if l < n {
            let v = self.reg_load_f64(REG_UP_L);
            acc = op.combine(acc, v);
            self.work(1);
        }
        let result = if pos > 0 {
            let parent = group[(pos - 1) / 2];
            let slot = if pos % 2 == 1 { REG_UP_L } else { REG_UP_R };
            self.reg_store_f64(parent, slot, acc);
            self.reg_load_f64(REG_DOWN)
        } else {
            acc
        };
        if l < n {
            self.reg_store_f64(group[l], REG_DOWN, result);
        }
        if r < n {
            self.reg_store_f64(group[r], REG_DOWN, result);
        }
        result
    }

    fn scratch_for(&mut self, bytes: u64) -> VAddr {
        if self.scratch.is_null() || self.scratch_len < bytes {
            self.scratch = self.alloc_bytes(bytes.max(4096));
            self.scratch_len = bytes.max(4096);
        }
        self.scratch
    }

    /// Vector global summation over all cells (§4.5: "Global reductions
    /// for vector data use a ring buffer with SEND/RECEIVE"). `xs` is
    /// replaced by the element-wise sum on every cell. Counted as one
    /// "V Gop" in Table 3; the ring SENDs appear as SEND ops, matching how
    /// the paper's CG numbers relate (365.6 SENDs = 390 VGops × 15/16).
    pub fn reduce_vec_sum_f64(&mut self, xs: &mut [f64]) {
        self.post(Request::Mark(Mark::GopVector));
        let n = xs.len();
        let bytes = (n * 8) as u64;
        let me = self.id();
        let p = self.ncells();
        let scratch = self.scratch_for(bytes);
        if p == 1 {
            return;
        }
        if me == 0 {
            self.write_slice(scratch, xs);
            self.send(1, scratch, bytes);
        } else {
            // Accumulate the running partial from the previous ring member.
            let (_, mut partial) = self.recv_slice::<f64>(me - 1, scratch, bytes, n);
            for (p, x) in partial.iter_mut().zip(xs.iter()) {
                *p += *x;
            }
            self.work(n as u64);
            self.write_slice(scratch, &partial);
            if me < p - 1 {
                self.send(me + 1, scratch, bytes);
            }
        }
        // The last ring member holds the total; B-net broadcasts it back.
        self.bcast(p - 1, scratch, bytes);
        let total = self.read_slice::<f64>(scratch, n);
        xs.copy_from_slice(&total);
    }

    /// Records a scalar global-operation marker (Table 3 "Gop") for
    /// collectives built directly on the primitives; the built-in
    /// [`Cell::reduce_f64`] family marks automatically.
    pub fn mark_gop_scalar(&mut self) {
        self.post(Request::Mark(Mark::GopScalar));
    }

    /// Records a vector global-operation marker (Table 3 "V Gop"); see
    /// [`Cell::mark_gop_scalar`].
    pub fn mark_gop_vector(&mut self) {
        self.post(Request::Mark(Mark::GopVector));
    }

    // ---- distributed shared memory (§4.2) -------------------------------------

    /// Non-blocking remote store of `data` at byte `offset` inside `dst`'s
    /// shared-memory window. Completion is detected with
    /// [`Cell::remote_fence`] (automatic acknowledge packets).
    pub fn remote_store(&mut self, dst: usize, offset: u64, data: &[u8]) {
        self.post(Request::RemoteStore {
            dst: CellId::new(dst as u32),
            offset,
            data: data.to_vec(),
        });
    }

    /// Blocking remote load of `len` bytes from `dst`'s shared window.
    pub fn remote_load(&mut self, dst: usize, offset: u64, len: u64) -> Vec<u8> {
        match self.call(Request::RemoteLoad {
            dst: CellId::new(dst as u32),
            offset,
            len,
        }) {
            Response::Bytes(b) => b,
            r => unreachable!("remote_load got {r:?}"),
        }
    }

    /// Blocks until all issued remote stores are acknowledged.
    pub fn remote_fence(&mut self) {
        self.sync_unit(Request::RemoteFence);
    }

    // ---- write-through pages (§4.2) --------------------------------------

    /// Reads `len` bytes at `offset` of `owner`'s shared window through
    /// the **write-through page** cache (§4.2: "uses part of local memory
    /// as a cache for distributed shared memory space, and enables the
    /// replacement of remote accesses with local accesses").
    ///
    /// A hit is an ordinary local access (no simulated communication); a
    /// miss performs one blocking remote load per missing page. The
    /// hardware keeps no coherence — remote writers' updates become
    /// visible only after [`Cell::wt_invalidate_all`] (software cache
    /// coherence, per the paper's concluding remarks).
    pub fn wt_read(&mut self, owner: usize, offset: u64, len: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = offset;
        while pos < offset + len {
            let page = pos / WT_PAGE;
            let in_page = pos % WT_PAGE;
            let take = (WT_PAGE - in_page).min(offset + len - pos);
            let key = (owner as u32, page);
            if !self.wt_cache.contains_key(&key) {
                self.wt_misses += 1;
                let data = self.remote_load(owner, page * WT_PAGE, WT_PAGE);
                self.wt_cache.insert(key, data);
            } else {
                self.wt_hits += 1;
            }
            let cached = self.wt_cache.get(&key).expect("just inserted");
            out.extend_from_slice(&cached[in_page as usize..(in_page + take) as usize]);
            pos += take;
        }
        out
    }

    /// Writes `data` at `offset` of `owner`'s shared window, **write
    /// through**: the local cached copy (if present) is updated and the
    /// store is forwarded to the owner (non-blocking; order with
    /// [`Cell::remote_fence`]).
    pub fn wt_write(&mut self, owner: usize, offset: u64, data: &[u8]) {
        let mut pos = offset;
        let mut off_in_data = 0usize;
        while off_in_data < data.len() {
            let page = pos / WT_PAGE;
            let in_page = (pos % WT_PAGE) as usize;
            let take = (WT_PAGE as usize - in_page).min(data.len() - off_in_data);
            if let Some(cached) = self.wt_cache.get_mut(&(owner as u32, page)) {
                cached[in_page..in_page + take]
                    .copy_from_slice(&data[off_in_data..off_in_data + take]);
            }
            pos += take as u64;
            off_in_data += take;
        }
        self.remote_store(owner, offset, data);
    }

    /// Drops every cached write-through page (the software-coherence
    /// invalidation point).
    pub fn wt_invalidate_all(&mut self) {
        self.wt_cache.clear();
    }

    /// `(hits, misses)` of the write-through page cache.
    pub fn wt_stats(&self) -> (u64, u64) {
        (self.wt_hits, self.wt_misses)
    }
}

//! The assembled machine: per-cell hardware plus the three networks.

use crate::accounting::CellTimes;
use crate::config::MachineConfig;
use apmem::{CommRegs, DsmMap, FlagUnit, MemError, Memory, Mmu};
use apmsc::stride;
use apmsc::{dma, GetArgs, HwQueue, Payload, PutArgs, StrideSpec};
use apnet::{BNet, SNet, TNet, TNetParams, Torus};
use apsim::Resource;
use aputil::{ApError, ApResult, CellId, SimTime, VAddr};
use std::collections::VecDeque;

/// A queued transmit job for a cell's send controller.
#[derive(Clone, Debug)]
pub(crate) enum TxJob {
    /// User PUT.
    Put(PutArgs),
    /// User GET request.
    GetReq(GetArgs),
    /// SEND-model ring-buffer message; `wake_sender` marks the blocking
    /// SEND library call waiting for send-DMA completion.
    Ring {
        dst: CellId,
        laddr: VAddr,
        bytes: u64,
        wake_sender: bool,
    },
    /// Reply to a GET served by this cell.
    GetReply {
        requester: CellId,
        raddr: VAddr,
        send_stride: StrideSpec,
        send_flag: VAddr,
        reply_laddr: VAddr,
        reply_stride: StrideSpec,
        reply_flag: VAddr,
    },
    /// DSM remote store.
    RemoteStoreTx {
        dst: CellId,
        offset: u64,
        data: Payload,
    },
    /// DSM remote load request.
    RemoteLoadReqTx { dst: CellId, offset: u64, len: u64 },
    /// DSM remote load reply.
    RemoteLoadReplyTx { dst: CellId, data: Payload },
    /// Automatic acknowledge of a received remote store.
    RemoteAckTx { dst: CellId },
}

/// A transmit job queued with the id of the transfer chain it belongs to
/// (0 for operations latency attribution does not follow).
#[derive(Clone, Debug)]
pub(crate) struct TxEntry {
    pub tid: u64,
    pub job: TxJob,
}

/// A transmit job popped from a queue with its gathered payload, occupying
/// the send DMA engine.
#[derive(Clone, Debug)]
pub(crate) struct ActiveTx {
    pub tid: u64,
    pub job: TxJob,
    pub payload: Payload,
}

/// One cell's hardware state.
pub(crate) struct CellHw {
    pub mmu: Mmu,
    pub mem: Memory,
    pub flag_unit: FlagUnit,
    pub regs: CommRegs,
    /// User PUT/GET sends (§4.1: user send queue).
    pub user_q: HwQueue<TxEntry>,
    /// System PUT/GET sends (kept for fidelity; used by DSM remote access
    /// initiation).
    pub remote_q: HwQueue<TxEntry>,
    /// GET replies.
    pub reply_get_q: HwQueue<TxEntry>,
    /// Remote-load replies ("remote load replies precede GET replies").
    pub reply_remote_q: HwQueue<TxEntry>,
    pub send_busy: bool,
    pub active_tx: Option<ActiveTx>,
    pub recv_dma: Resource,
    /// Arrived ring-buffer messages, indexed by sending cell so the
    /// RECEIVE path matches a source without scanning unrelated traffic
    /// (each source's messages stay FIFO, which is all the in-order T-net
    /// guarantees anyway).
    pub ring: Vec<VecDeque<Payload>>,
    /// Bytes currently buffered in the ring.
    pub ring_bytes: u64,
    /// Times the ring exceeded its capacity (§4.3 OS allocations).
    pub ring_overflows: u64,
    /// Remote stores issued / acknowledged (the implicit acknowledge flag
    /// of §2.2).
    pub rstore_issued: u64,
    pub rstore_acked: u64,
}

impl CellHw {
    fn new(mem_size: u64, ncells: u32) -> Self {
        CellHw {
            mmu: Mmu::new(mem_size),
            mem: Memory::new(mem_size),
            flag_unit: FlagUnit::new(),
            regs: CommRegs::new(),
            user_q: HwQueue::new("user send", 8),
            remote_q: HwQueue::new("remote access", 8),
            reply_get_q: HwQueue::new("get reply", 8),
            reply_remote_q: HwQueue::new("remote reply", 8),
            send_busy: false,
            active_tx: None,
            recv_dma: Resource::new(),
            ring: vec![VecDeque::new(); ncells as usize],
            ring_bytes: 0,
            ring_overflows: 0,
            rstore_issued: 0,
            rstore_acked: 0,
        }
    }

    /// Pops the highest-priority pending transmit job at time `now`,
    /// returning it with how long it sat queued. Priority (§4.1):
    /// remote-load replies, then remote access, then GET replies, then
    /// user sends.
    pub fn pop_tx_at(&mut self, now: SimTime) -> Option<(TxEntry, SimTime)> {
        self.reply_remote_q
            .pop_at(now)
            .or_else(|| self.remote_q.pop_at(now))
            .or_else(|| self.reply_get_q.pop_at(now))
            .or_else(|| self.user_q.pop_at(now))
    }

    /// Total OS refill interrupts across the four queues (§4.1: "When
    /// the queue empties, the MSC+ interrupts the operating system, which
    /// then loads data from the buffer in DRAM back into the queue").
    pub fn total_refills(&self) -> u64 {
        self.user_q.stats().refill_interrupts
            + self.remote_q.stats().refill_interrupts
            + self.reply_get_q.stats().refill_interrupts
            + self.reply_remote_q.stats().refill_interrupts
    }

    /// Total spilled entries across the four queues.
    pub fn total_spills(&self) -> u64 {
        self.user_q.stats().spilled
            + self.remote_q.stats().spilled
            + self.reply_get_q.stats().spilled
            + self.reply_remote_q.stats().spilled
    }

    /// Entries pending across the four send queues.
    pub fn total_pending(&self) -> usize {
        self.user_q.len() + self.remote_q.len() + self.reply_get_q.len() + self.reply_remote_q.len()
    }

    /// Non-empty send queues as `(name, depth)` pairs — the queue contents
    /// part of a deadlock diagnostic.
    pub fn pending_tx(&self) -> Vec<(&'static str, usize)> {
        [
            &self.user_q,
            &self.remote_q,
            &self.reply_get_q,
            &self.reply_remote_q,
        ]
        .into_iter()
        .filter(|q| !q.is_empty())
        .map(|q| (q.name(), q.len()))
        .collect()
    }

    /// Merges the four queues' occupancy histograms into `into`.
    pub fn merge_occupancy(&self, into: &mut apobs::Hist) {
        into.merge(self.user_q.occupancy());
        into.merge(self.remote_q.occupancy());
        into.merge(self.reply_get_q.occupancy());
        into.merge(self.reply_remote_q.occupancy());
    }
}

/// The whole machine.
pub(crate) struct Machine {
    pub cfg: MachineConfig,
    pub cells: Vec<CellHw>,
    pub tnet: TNet,
    pub bnet: BNet,
    pub snet: SNet,
    pub dsm: DsmMap,
    pub times: Vec<CellTimes>,
    pub trace: aptrace::Trace,
    /// Sim-time event recorder (no-op unless `cfg.record_timeline`).
    pub obs: apobs::Recorder,
    /// Nanoseconds blocked per flag wait (0 for waits satisfied on check).
    pub flag_wait: apobs::Hist,
    /// Figure-6 segment decomposition of every completed PUT.
    pub put_lat: apobs::SegmentHists,
    /// Same for GETs (request + reply legs combined).
    pub get_lat: apobs::SegmentHists,
    /// Next transfer-chain id (`alloc_tid` starts at 1; 0 = untracked).
    next_tid: u64,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Self {
        let torus = Torus::for_cells(cfg.ncells);
        let tparams = TNetParams {
            prolog: cfg.hw.net_prolog,
            per_hop: cfg.hw.net_per_hop,
            per_byte: cfg.hw.net_per_byte,
        };
        let mut tnet = TNet::new(torus, tparams, cfg.contention);
        // Streaming wins over buffering: with a process-wide sink set,
        // both the kernel's and the T-net's events go straight to it.
        let sink = if cfg.record_timeline && cfg.flight_recorder.is_none() {
            crate::config::evtrace_sink()
        } else {
            None
        };
        if let Some(sink) = &sink {
            tnet.enable_events_sink(sink.clone());
        } else if let Some(cap) = cfg.flight_recorder {
            tnet.enable_events_ring(cap.get());
        } else if cfg.record_timeline {
            tnet.enable_events();
        }
        if cfg.metrics_interval.is_some() {
            tnet.enable_link_stats();
        }
        Machine {
            cells: (0..cfg.ncells)
                .map(|_| CellHw::new(cfg.mem_size, cfg.ncells))
                .collect(),
            tnet,
            bnet: BNet::with_params(cfg.ncells, cfg.hw.net_prolog, cfg.hw.bnet_per_byte),
            snet: SNet::new(cfg.ncells, cfg.hw.barrier_latency),
            dsm: DsmMap::new(cfg.ncells, cfg.mem_size),
            times: vec![CellTimes::default(); cfg.ncells as usize],
            trace: aptrace::Trace::new(cfg.ncells as usize),
            obs: match (sink, cfg.flight_recorder) {
                (Some(sink), _) => apobs::Recorder::streaming(sink),
                (None, Some(cap)) => apobs::Recorder::ring(cap.get()),
                (None, None) => apobs::Recorder::new(cfg.record_timeline),
            },
            flag_wait: apobs::Hist::new(),
            put_lat: apobs::SegmentHists::new(),
            get_lat: apobs::SegmentHists::new(),
            next_tid: 0,
            cfg,
        }
    }

    /// Allocates a fresh nonzero transfer-chain id.
    pub fn alloc_tid(&mut self) -> u64 {
        self.next_tid += 1;
        self.next_tid
    }

    pub fn check_cell(&self, cell: CellId) -> ApResult<()> {
        if cell.index() < self.cells.len() {
            Ok(())
        } else {
            Err(ApError::NoSuchCell {
                cell,
                ncells: self.cells.len(),
            })
        }
    }

    fn wrap(cell: CellId, e: MemError) -> ApError {
        match e {
            MemError::PageFault { addr } => ApError::PageFault { cell, addr },
            MemError::OutOfBounds { addr, len, .. } => ApError::OutOfRange {
                cell,
                addr: VAddr::new(addr.as_u64()),
                len,
            },
            MemError::OutOfFrames { requested } => {
                ApError::InvalidArg(format!("{cell} out of memory allocating {requested} bytes"))
            }
            other => ApError::InvalidArg(format!("{cell} memory error: {other}")),
        }
    }

    /// Data-plane read of a cell's logical memory.
    pub fn read_v(&mut self, cell: CellId, addr: VAddr, len: u64) -> ApResult<Vec<u8>> {
        let hw = &mut self.cells[cell.index()];
        dma::read_virtual(&mut hw.mmu, &hw.mem, addr, len)
            .map(|r| r.data)
            .map_err(|e| Self::wrap(cell, e))
    }

    /// Data-plane write of a cell's logical memory.
    pub fn write_v(&mut self, cell: CellId, addr: VAddr, data: &[u8]) -> ApResult<()> {
        let hw = &mut self.cells[cell.index()];
        dma::write_virtual(&mut hw.mmu, &mut hw.mem, addr, data)
            .map(|_| ())
            .map_err(|e| Self::wrap(cell, e))
    }

    /// Stride-gather on a cell (send-side DMA).
    pub fn gather(&mut self, cell: CellId, base: VAddr, spec: StrideSpec) -> ApResult<Vec<u8>> {
        let hw = &mut self.cells[cell.index()];
        stride::gather(&mut hw.mmu, &hw.mem, base, spec)
            .map(|(d, _)| d)
            .map_err(|e| Self::wrap(cell, e))
    }

    /// Stride-scatter on a cell (receive-side DMA).
    pub fn scatter(
        &mut self,
        cell: CellId,
        base: VAddr,
        spec: StrideSpec,
        data: &[u8],
    ) -> ApResult<()> {
        let hw = &mut self.cells[cell.index()];
        stride::scatter(&mut hw.mmu, &mut hw.mem, base, spec, data)
            .map(|_| ())
            .map_err(|e| Self::wrap(cell, e))
    }

    /// Fetch-and-increment of a flag on `cell`; returns the new value, or
    /// `None` when the flag address is null (no-op).
    pub fn incr_flag(&mut self, cell: CellId, flag: VAddr) -> ApResult<Option<u32>> {
        let hw = &mut self.cells[cell.index()];
        match hw.flag_unit.fetch_increment(&mut hw.mmu, &mut hw.mem, flag) {
            Ok(Some(old)) => Ok(Some(old.wrapping_add(1))),
            Ok(None) => Ok(None),
            Err(e) => Err(Self::wrap(cell, e)),
        }
    }

    /// Reads a flag's current value.
    pub fn read_flag(&self, cell: CellId, flag: VAddr) -> ApResult<u32> {
        let hw = &self.cells[cell.index()];
        hw.flag_unit
            .read(&hw.mmu, &hw.mem, flag)
            .map_err(|e| Self::wrap(cell, e))
    }

    /// Physical read in a cell's DSM window (`offset` within the shared
    /// block, which aliases the top half of DRAM, §4.2).
    pub fn dsm_read(&self, cell: CellId, offset: u64, len: u64) -> ApResult<Vec<u8>> {
        let base = self
            .dsm
            .shared_addr(cell, offset)
            .and_then(|a| self.dsm.resolve(a))
            .ok_or_else(|| ApError::InvalidArg(format!("DSM offset {offset} out of window")))?
            .1;
        let mut buf = vec![0u8; len as usize];
        self.cells[cell.index()]
            .mem
            .read(base, &mut buf)
            .map_err(|e| Self::wrap(cell, e))?;
        Ok(buf)
    }

    /// Physical write in a cell's DSM window.
    pub fn dsm_write(&mut self, cell: CellId, offset: u64, data: &[u8]) -> ApResult<()> {
        let base = self
            .dsm
            .shared_addr(cell, offset)
            .and_then(|a| self.dsm.resolve(a))
            .ok_or_else(|| ApError::InvalidArg(format!("DSM offset {offset} out of window")))?
            .1;
        self.cells[cell.index()]
            .mem
            .write(base, data)
            .map_err(|e| Self::wrap(cell, e))
    }

    /// Assembles the unified counter block from every hardware unit.
    pub fn collect_counters(&self) -> apobs::Counters {
        let mut c = apobs::Counters::new();
        for hw in &self.cells {
            c.queue_spills += hw.total_spills();
            c.queue_refills += hw.total_refills();
            c.ring_overflows += hw.ring_overflows;
            hw.merge_occupancy(&mut c.queue_occupancy);
        }
        c.msg_size.merge(&self.tnet.obs().msg_size);
        c.hop_latency.merge(&self.tnet.obs().latency);
        c.flag_wait.merge(&self.flag_wait);
        c.put_lat.merge(&self.put_lat);
        c.get_lat.merge(&self.get_lat);
        c
    }

    /// Point-in-time hardware occupancy gauges at `now` for the sampled
    /// metrics layer: total and max per-cell send-queue depth, and how
    /// many send / receive DMA engines are mid-transfer.
    pub fn occupancy(&self, now: SimTime) -> (u64, u32, u32, u32) {
        let mut depth = 0u64;
        let mut depth_max = 0u32;
        let mut send_busy = 0u32;
        let mut recv_busy = 0u32;
        for hw in &self.cells {
            let d = hw.total_pending() as u32;
            depth += d as u64;
            depth_max = depth_max.max(d);
            if hw.send_busy {
                send_busy += 1;
            }
            if hw.recv_dma.busy_until() > now {
                recv_busy += 1;
            }
        }
        (depth, depth_max, send_busy, recv_busy)
    }

    /// Drains the kernel and network event buffers into one sorted
    /// timeline (empty unless `record_timeline` was set).
    pub fn take_timeline(&mut self) -> apobs::Timeline {
        let mut t = apobs::Timeline::from_events("emulator", self.obs.take_events());
        t.extend(self.tnet.take_events());
        t.sort();
        t
    }

    /// DMA duration for a payload with `items` stride descriptors.
    pub fn dma_time(&self, bytes: u64, items: u32) -> SimTime {
        self.cfg.hw.dma_set_time
            + self.cfg.hw.dma_per_byte.saturating_mul(bytes)
            + self
                .cfg
                .hw
                .stride_item_time
                .saturating_mul(items.saturating_sub(1) as u64)
    }
}

//! End-to-end tests of the machine emulator and PUT/GET runtime.

use apcore::{run_with, ApError, MachineConfig, ReduceOp, StrideSpec, VAddr};

fn cfg(n: u32) -> MachineConfig {
    MachineConfig::new(n)
}

#[test]
fn put_moves_real_data_between_cells() {
    let r = run_with(cfg(4), |cell| {
        let n = cell.ncells();
        let me = cell.id();
        let buf = cell.alloc::<f64>(8);
        let inbox = cell.alloc::<f64>(8);
        let flag = cell.alloc_flag();
        let data: Vec<f64> = (0..8).map(|i| (me * 100 + i) as f64).collect();
        cell.write_slice(buf, &data);
        cell.barrier();
        cell.put((me + 1) % n, inbox, buf, 64, VAddr::NULL, flag, false);
        cell.wait_flag(flag, 1);
        cell.read_slice::<f64>(inbox, 8)
    })
    .unwrap();
    for me in 0..4usize {
        let left = (me + 3) % 4;
        let expect: Vec<f64> = (0..8).map(|i| (left * 100 + i) as f64).collect();
        assert_eq!(r.outputs[me], expect, "cell {me} inbox");
    }
}

#[test]
fn get_fetches_remote_data() {
    let r = run_with(cfg(4), |cell| {
        let me = cell.id();
        let n = cell.ncells();
        let src_buf = cell.alloc::<f64>(4);
        let dst_buf = cell.alloc::<f64>(4);
        let flag = cell.alloc_flag();
        cell.write_slice(src_buf, &[me as f64; 4]);
        cell.barrier();
        let victim = (me + 1) % n;
        cell.get(victim, src_buf, dst_buf, 32, VAddr::NULL, flag);
        cell.wait_flag(flag, 1);
        cell.read_slice::<f64>(dst_buf, 4)
    })
    .unwrap();
    for me in 0..4usize {
        assert_eq!(r.outputs[me], vec![((me + 1) % 4) as f64; 4]);
    }
}

#[test]
fn get_send_flag_updates_on_remote_cell() {
    // Cell 0 GETs from cell 1; cell 1 observes its own send flag bump.
    let r = run_with(cfg(2), |cell| {
        let data = cell.alloc::<f64>(1);
        let dst = cell.alloc::<f64>(1);
        let sflag = cell.alloc_flag();
        let rflag = cell.alloc_flag();
        cell.write_pod(data, 7.5f64);
        cell.barrier();
        if cell.id() == 0 {
            cell.get(1, data, dst, 8, sflag, rflag);
            cell.wait_flag(rflag, 1);
            cell.read_pod::<f64>(dst)
        } else {
            // The serving cell sees send_flag increment when its reply left.
            cell.wait_flag(sflag, 1);
            -1.0
        }
    })
    .unwrap();
    assert_eq!(r.outputs, vec![7.5, -1.0]);
}

#[test]
fn put_stride_transposes_columns_to_rows() {
    // Classic SPREAD MOVE shape: a column of an 8x8 matrix lands as a
    // contiguous row on the destination.
    const N: usize = 8;
    let r = run_with(cfg(2), |cell| {
        let mat = cell.alloc::<f64>(N * N);
        let row = cell.alloc::<f64>(N);
        let flag = cell.alloc_flag();
        let sflag = cell.alloc_flag();
        if cell.id() == 0 {
            let data: Vec<f64> = (0..N * N).map(|i| i as f64).collect();
            cell.write_slice(mat, &data);
            cell.barrier();
            // Send column 3: items of 8 bytes, skip one row (N*8).
            let send = StrideSpec::new(8, N as u32, (N * 8) as u32);
            let recv = StrideSpec::contiguous((N * 8) as u64);
            cell.put_stride(1, row, mat + 3 * 8, send, recv, sflag, flag, false);
            cell.wait_flag(sflag, 1);
            Vec::new()
        } else {
            cell.barrier();
            cell.wait_flag(flag, 1);
            cell.read_slice::<f64>(row, N)
        }
    })
    .unwrap();
    let expect: Vec<f64> = (0..N).map(|r| (r * N + 3) as f64).collect();
    assert_eq!(r.outputs[1], expect);
}

#[test]
fn get_stride_reblocks_figure3_style() {
    let r = run_with(cfg(2), |cell| {
        let src = cell.alloc::<f64>(16);
        let dst = cell.alloc::<f64>(16);
        let flag = cell.alloc_flag();
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        cell.write_slice(src, &vals);
        cell.barrier();
        if cell.id() == 0 {
            // Gather every other f64 from cell 1 (8 items), scatter locally
            // as 4 items of 2 f64s with gaps.
            let send = StrideSpec::new(8, 8, 16);
            let recv = StrideSpec::new(16, 4, 32);
            cell.get_stride(1, src, dst, send, recv, VAddr::NULL, flag);
            cell.wait_flag(flag, 1);
            cell.read_slice::<f64>(dst, 16)
        } else {
            Vec::new()
        }
    })
    .unwrap();
    // Gathered payload: 0,2,4,6,8,10,12,14 scattered as pairs at offsets
    // 0,4,8,12 (in f64 units).
    let out = &r.outputs[0];
    assert_eq!(out[0..2], [0.0, 2.0]);
    assert_eq!(out[4..6], [4.0, 6.0]);
    assert_eq!(out[8..10], [8.0, 10.0]);
    assert_eq!(out[12..14], [12.0, 14.0]);
}

#[test]
fn flags_count_multiple_messages() {
    // 3 senders PUT to one receiver; a single flag counts to 3 (§3.2:
    // "to check arrival of multiple messages, the flag value is
    // incremented").
    let r = run_with(cfg(4), |cell| {
        let slot = cell.alloc::<f64>(4);
        let flag = cell.alloc_flag();
        cell.barrier();
        if cell.id() != 0 {
            let me = cell.id();
            let mine = cell.alloc::<f64>(1);
            cell.write_pod(mine, me as f64);
            cell.put(
                0,
                slot + (me as u64 - 1) * 8,
                mine,
                8,
                VAddr::NULL,
                flag,
                false,
            );
            0.0
        } else {
            cell.wait_flag(flag, 3);
            cell.read_slice::<f64>(slot, 3).iter().sum::<f64>()
        }
    })
    .unwrap();
    assert_eq!(r.outputs[0], 6.0);
}

#[test]
fn ack_and_barrier_model_works() {
    // Every cell PUTs with ack and waits for all acks before the barrier —
    // the paper's Ack & Barrier pattern (§2.2, §4.1).
    let r = run_with(cfg(8), |cell| {
        let me = cell.id();
        let n = cell.ncells();
        let outbox = cell.alloc::<f64>(1);
        let inbox = cell.alloc::<f64>(8);
        cell.write_pod(outbox, me as f64);
        cell.barrier();
        for k in 1..n {
            let dst = (me + k) % n;
            cell.put(
                dst,
                inbox + (me as u64) * 8,
                outbox,
                8,
                VAddr::NULL,
                VAddr::NULL,
                true,
            );
        }
        cell.wait_acks();
        cell.barrier();
        // After Ack & Barrier every inbox slot j (j != me) must hold j.
        let got = cell.read_slice::<f64>(inbox, n);
        (0..n).filter(|&j| j != me).all(|j| got[j] == j as f64)
    })
    .unwrap();
    assert!(r.outputs.iter().all(|&ok| ok), "some inbox incomplete");
    // The trace must classify ack probes separately.
    let stats = aptrace::AppStats::from_trace(&r.trace);
    assert_eq!(stats.ack_gets, 8 * 7);
    assert_eq!(stats.put, 8 * 7);
    assert_eq!(stats.get, 0);
}

#[test]
fn send_recv_ring_buffer() {
    let r = run_with(cfg(3), |cell| {
        let me = cell.id();
        let n = cell.ncells();
        let buf = cell.alloc::<f64>(2);
        let inbox = cell.alloc::<f64>(2);
        cell.write_slice(buf, &[me as f64, 10.0 * me as f64]);
        // Everyone sends to the right, receives from the left.
        cell.send((me + 1) % n, buf, 16);
        let got = cell.recv((me + n - 1) % n, inbox, 16);
        assert_eq!(got, 16);
        cell.read_slice::<f64>(inbox, 2)
    })
    .unwrap();
    assert_eq!(r.outputs[0], vec![2.0, 20.0]);
    assert_eq!(r.outputs[1], vec![0.0, 0.0]);
    assert_eq!(r.outputs[2], vec![1.0, 10.0]);
}

#[test]
fn recv_filters_by_source() {
    // Cell 0 receives from 2 then from 1, regardless of arrival order.
    let r = run_with(cfg(3), |cell| {
        let buf = cell.alloc::<f64>(1);
        let inbox = cell.alloc::<f64>(1);
        match cell.id() {
            0 => {
                let mut out = Vec::new();
                cell.recv(2, inbox, 8);
                out.push(cell.read_pod::<f64>(inbox));
                cell.recv(1, inbox, 8);
                out.push(cell.read_pod::<f64>(inbox));
                out
            }
            me => {
                cell.write_pod(buf, me as f64);
                cell.send(0, buf, 8);
                Vec::new()
            }
        }
    })
    .unwrap();
    assert_eq!(r.outputs[0], vec![2.0, 1.0]);
}

#[test]
fn scalar_reduction_all_ops() {
    let r = run_with(cfg(16), |cell| {
        let x = cell.id() as f64;
        let sum = cell.reduce_f64(x, ReduceOp::Sum);
        let max = cell.reduce_f64(x, ReduceOp::Max);
        let min = cell.reduce_f64(-x, ReduceOp::Min);
        (sum, max, min)
    })
    .unwrap();
    for &(s, mx, mn) in &r.outputs {
        assert_eq!(s, 120.0);
        assert_eq!(mx, 15.0);
        assert_eq!(mn, -15.0);
    }
    let stats = aptrace::AppStats::from_trace(&r.trace);
    assert_eq!(stats.gop, 3 * 16);
}

#[test]
fn scalar_reduction_non_power_of_two() {
    let r = run_with(cfg(7), |cell| cell.reduce_sum_f64(1.0 + cell.id() as f64)).unwrap();
    assert!(r.outputs.iter().all(|&s| s == 28.0));
}

#[test]
fn group_reduction_and_barrier() {
    // Two disjoint groups reduce independently (§2.3 group support).
    let r = run_with(cfg(8), |cell| {
        let me = cell.id();
        let group: Vec<usize> = if me < 4 {
            (0..4).collect()
        } else {
            (4..8).collect()
        };
        cell.group_barrier(&group);
        cell.group_reduce_f64(&group, me as f64, ReduceOp::Sum)
    })
    .unwrap();
    for me in 0..8usize {
        let expect = if me < 4 { 6.0 } else { 22.0 };
        assert_eq!(r.outputs[me], expect, "cell {me}");
    }
}

#[test]
fn vector_reduction_ring() {
    const N: usize = 64;
    let r = run_with(cfg(8), |cell| {
        let mut xs: Vec<f64> = (0..N).map(|i| (cell.id() * N + i) as f64).collect();
        cell.reduce_vec_sum_f64(&mut xs);
        xs
    })
    .unwrap();
    let mut expect = vec![0.0f64; N];
    for c in 0..8 {
        for (i, e) in expect.iter_mut().enumerate() {
            *e += (c * N + i) as f64;
        }
    }
    for out in &r.outputs {
        assert_eq!(out, &expect);
    }
    // Table-3 bookkeeping: one V Gop per cell, (P-1) sends total.
    let stats = aptrace::AppStats::from_trace(&r.trace);
    assert_eq!(stats.vgop, 8);
    assert_eq!(stats.send, 7);
}

#[test]
fn bcast_delivers_to_all() {
    let r = run_with(cfg(6), |cell| {
        let buf = cell.alloc::<f64>(4);
        if cell.id() == 2 {
            cell.write_slice(buf, &[9.0, 8.0, 7.0, 6.0]);
        }
        cell.bcast(2, buf, 32);
        cell.read_slice::<f64>(buf, 4)
    })
    .unwrap();
    for out in &r.outputs {
        assert_eq!(out, &vec![9.0, 8.0, 7.0, 6.0]);
    }
}

#[test]
fn dsm_remote_store_load_round_trip() {
    let r = run_with(cfg(4), |cell| {
        let me = cell.id();
        let n = cell.ncells();
        // Everyone stores its id into neighbour's shared window, fences,
        // barriers, then loads it back from its own window... via a remote
        // load from the neighbour of the neighbour's data.
        cell.remote_store((me + 1) % n, 64, &[me as u8; 8]);
        cell.remote_fence();
        cell.barrier();
        let data = cell.remote_load((me + 1) % n, 64, 8);
        data[0]
    })
    .unwrap();
    // Cell i reads from cell i+1's window, which cell i stored itself.
    assert_eq!(r.outputs, vec![0, 1, 2, 3]);
}

#[test]
fn barrier_orders_phases() {
    let r = run_with(cfg(8), |cell| {
        let me = cell.id();
        let shared = cell.alloc::<f64>(1);
        let flag = cell.alloc_flag();
        // Phase 1: cell 0 writes to everyone.
        if me == 0 {
            let v = cell.alloc::<f64>(1);
            cell.write_pod(v, 42.0f64);
            for dst in 0..cell.ncells() {
                if dst != 0 {
                    cell.put(dst, shared, v, 8, VAddr::NULL, flag, true);
                }
            }
            cell.wait_acks();
        }
        cell.barrier();
        if me == 0 {
            42.0
        } else {
            cell.read_pod::<f64>(shared)
        }
    })
    .unwrap();
    assert!(r.outputs.iter().all(|&v| v == 42.0));
    assert_eq!(r.barriers, 1);
}

#[test]
fn page_fault_aborts_run() {
    let err = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(1);
        let flag = cell.alloc_flag();
        // PUT from an unmapped local address: hardware protection fires.
        cell.put(
            1,
            buf,
            VAddr::new(0x0dea_dbee_f000),
            8,
            VAddr::NULL,
            flag,
            false,
        );
        cell.wait_flag(flag, 1);
    })
    .unwrap_err();
    assert!(
        matches!(err, ApError::PageFault { .. }),
        "expected page fault, got {err}"
    );
}

#[test]
fn remote_page_fault_detected_at_receiver() {
    let err = run_with(cfg(2), |cell| {
        if cell.id() == 0 {
            let buf = cell.alloc::<f64>(1);
            // Remote address far outside anything mapped on cell 1.
            cell.put(
                1,
                VAddr::new(0xbad0_0000_0000),
                buf,
                8,
                VAddr::NULL,
                VAddr::NULL,
                false,
            );
        }
        cell.barrier();
    })
    .unwrap_err();
    assert!(matches!(err, ApError::PageFault { .. }), "got {err}");
}

#[test]
fn zero_length_put_is_rejected() {
    let err = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(1);
        cell.put(1, buf, buf, 0, VAddr::NULL, VAddr::NULL, false);
    })
    .unwrap_err();
    // Issue-time validation rejects the empty transfer with a structured
    // error instead of panicking the cell in spec construction.
    match err {
        ApError::InvalidArg(msg) => assert!(msg.contains("zero-length"), "msg: {msg}"),
        other => panic!("expected InvalidArg, got {other}"),
    }
}

#[test]
fn deadlock_is_reported_not_hung() {
    let err = run_with(cfg(2), |cell| {
        if cell.id() == 0 {
            let flag = cell.alloc_flag();
            cell.wait_flag(flag, 1); // nobody ever bumps it
        } else {
            let _ = cell.alloc_flag();
        }
    })
    .unwrap_err();
    match err {
        ApError::Deadlock(report) => {
            assert!(report.to_string().contains("wait_flag"), "report: {report}")
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn program_panic_becomes_cell_failed() {
    let err = run_with(cfg(2), |cell| {
        if cell.id() == 1 {
            panic!("numerical blow-up");
        }
        cell.barrier();
    })
    .unwrap_err();
    match err {
        ApError::CellFailed { reason, .. } => {
            assert!(reason.contains("numerical blow-up"), "reason: {reason}")
        }
        other => panic!("expected CellFailed, got {other}"),
    }
}

#[test]
fn runs_are_deterministic() {
    let go = || {
        run_with(cfg(8), |cell| {
            let mut xs: Vec<f64> = (0..32).map(|i| (cell.id() + i) as f64).collect();
            cell.reduce_vec_sum_f64(&mut xs);
            let s = cell.reduce_sum_f64(xs[0]);
            cell.barrier();
            s
        })
        .unwrap()
    };
    let a = go();
    let b = go();
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.trace, b.trace);
    for (x, y) in a.times.iter().zip(&b.times) {
        assert_eq!(x, y);
    }
}

#[test]
fn queue_overflow_spills_and_still_delivers() {
    // Fire 100 PUTs back to back: the 8-deep user queue must spill to DRAM
    // and every payload must still arrive, in order.
    const SLOT: u64 = 4096; // 4 KB: DMA time >> issue time, queue fills
    let r = run_with(cfg(2), |cell| {
        let n_msgs = 64u64;
        let inbox = cell.alloc_bytes(n_msgs * SLOT);
        let out = cell.alloc_bytes(n_msgs * SLOT);
        let flag = cell.alloc_flag();
        cell.barrier();
        if cell.id() == 0 {
            for i in 0..n_msgs {
                let src = out + i * SLOT;
                cell.write_slice(src, &[i as f64; 8]);
                cell.put(1, inbox + i * SLOT, src, SLOT, VAddr::NULL, flag, false);
            }
            cell.barrier();
            Vec::new()
        } else {
            cell.wait_flag(flag, n_msgs as u32);
            cell.barrier();
            (0..n_msgs)
                .map(|i| cell.read_pod::<f64>(inbox + i * SLOT))
                .collect::<Vec<f64>>()
        }
    })
    .unwrap();
    let expect: Vec<f64> = (0..64).map(|i| i as f64).collect();
    assert_eq!(r.outputs[1], expect, "spilled commands must still run FIFO");
    assert!(
        r.counters.queue_spills > 0,
        "expected user send queue to spill"
    );
}

#[test]
fn send_flag_protects_send_area() {
    // The documented-correct version of the above: waiting on send_flag
    // before reusing the buffer guarantees payload integrity.
    let r = run_with(cfg(2), |cell| {
        let n_msgs = 40u64;
        let inbox = cell.alloc::<f64>(n_msgs as usize);
        let out = cell.alloc::<f64>(1);
        let sflag = cell.alloc_flag();
        let rflag = cell.alloc_flag();
        cell.barrier();
        if cell.id() == 0 {
            for i in 0..n_msgs {
                cell.write_pod(out, i as f64);
                cell.put(1, inbox + i * 8, out, 8, sflag, rflag, false);
                cell.wait_flag(sflag, (i + 1) as u32);
            }
            cell.barrier();
            Vec::new()
        } else {
            cell.wait_flag(rflag, n_msgs as u32);
            cell.barrier();
            cell.read_slice::<f64>(inbox, n_msgs as usize)
        }
    })
    .unwrap();
    let expect: Vec<f64> = (0..40).map(|i| i as f64).collect();
    assert_eq!(r.outputs[1], expect);
}

#[test]
fn stride_hardware_beats_elementwise_transfers() {
    // The §5.4 TOMCATV effect in miniature: one strided PUT of 256 items
    // must be much faster than 256 single-item PUTs.
    let items = 256u32;
    let strided = run_with(cfg(2), |cell| {
        let src = cell.alloc::<f64>(2 * 256);
        let dst = cell.alloc::<f64>(256);
        let flag = cell.alloc_flag();
        cell.barrier();
        if cell.id() == 0 {
            let send = StrideSpec::new(8, 256, 16);
            let recv = StrideSpec::contiguous(2048);
            cell.put_stride(1, dst, src, send, recv, VAddr::NULL, flag, false);
        } else {
            cell.wait_flag(flag, 1);
        }
        cell.barrier();
    })
    .unwrap();
    let elementwise = run_with(cfg(2), |cell| {
        let src = cell.alloc::<f64>(2 * 256);
        let dst = cell.alloc::<f64>(256);
        let flag = cell.alloc_flag();
        cell.barrier();
        if cell.id() == 0 {
            for i in 0..256u64 {
                cell.put(1, dst + i * 8, src + i * 16, 8, VAddr::NULL, flag, false);
            }
        } else {
            cell.wait_flag(flag, 256);
        }
        cell.barrier();
    })
    .unwrap();
    assert!(
        elementwise.total_time.as_nanos() * 2 > 3 * strided.total_time.as_nanos(),
        "elementwise {} vs strided {}",
        elementwise.total_time,
        strided.total_time
    );
    let _ = items;
}

#[test]
fn time_accounting_buckets_are_sane() {
    let r = run_with(cfg(4), |cell| {
        cell.work(1000);
        cell.rts(10);
        cell.barrier();

        cell.reduce_sum_f64(1.0)
    })
    .unwrap();
    for t in &r.times {
        assert_eq!(t.exec.as_nanos() % 20, 0, "exec is whole flops");
        assert!(t.exec.as_nanos() >= 1000 * 20);
        assert!(t.rts.as_nanos() >= 10 * 500);
        assert!(
            t.finish >= t.accounted() - t.idle,
            "finish covers busy time"
        );
    }
    assert!(r.total_time > aputil::SimTime::ZERO);
}

#[test]
fn single_cell_machine_degenerates_gracefully() {
    let r = run_with(cfg(1), |cell| {
        let mut xs = vec![1.0, 2.0];
        cell.reduce_vec_sum_f64(&mut xs);
        let s = cell.reduce_sum_f64(3.0);
        cell.barrier();
        (xs, s)
    })
    .unwrap();
    assert_eq!(r.outputs[0].0, vec![1.0, 2.0]);
    assert_eq!(r.outputs[0].1, 3.0);
}

#[test]
fn loopback_put_to_self_works() {
    let r = run_with(cfg(2), |cell| {
        let a = cell.alloc::<f64>(1);
        let b = cell.alloc::<f64>(1);
        let flag = cell.alloc_flag();
        cell.write_pod(a, 5.0f64);
        cell.put(cell.id(), b, a, 8, VAddr::NULL, flag, false);
        cell.wait_flag(flag, 1);
        cell.read_pod::<f64>(b)
    })
    .unwrap();
    assert_eq!(r.outputs, vec![5.0, 5.0]);
}

#[test]
fn tnet_stats_are_recorded() {
    let r = run_with(cfg(4), |cell| {
        let a = cell.alloc::<f64>(16);
        let flag = cell.alloc_flag();
        cell.barrier();
        if cell.id() == 0 {
            cell.put(2, a, a, 128, VAddr::NULL, flag, false);
        } else if cell.id() == 2 {
            cell.wait_flag(flag, 1);
        }
        cell.barrier();
    })
    .unwrap();
    assert!(r.tnet.messages >= 1);
    assert!(r.tnet.bytes >= 128);
    let row = aptrace::AppStats::from_trace(&r.trace).to_row();
    assert!(
        (row.msg_size - 128.0).abs() < 1e-9,
        "mean PUT/GET message size"
    );
}

#[test]
fn queue_refill_interrupts_cost_time() {
    // The same spilling burst under zero vs paper OS-interrupt cost: the
    // §4.1 DRAM-reload interrupts must make the run measurably slower.
    let burst = |os_us: f64| {
        let hw = apcore::HwParams {
            os_interrupt_time: aputil::SimTime::from_micros_f64(os_us),
            ..apcore::HwParams::default()
        };
        let r = run_with(
            MachineConfig::new(2).with_hw(hw).with_trace(false),
            |cell| {
                let n_msgs = 64u64;
                let buf = cell.alloc_bytes(n_msgs * 4096);
                let flag = cell.alloc_flag();
                cell.barrier();
                if cell.id() == 0 {
                    for i in 0..n_msgs {
                        cell.put(
                            1,
                            buf + i * 4096,
                            buf + i * 4096,
                            4096,
                            VAddr::NULL,
                            flag,
                            false,
                        );
                    }
                } else {
                    cell.wait_flag(flag, 64);
                }
                cell.barrier();
            },
        )
        .unwrap();
        assert!(r.counters.queue_spills > 0, "burst must spill");
        r.total_time
    };
    let free = burst(0.0);
    let costly = burst(20.0);
    assert!(
        costly > free,
        "OS reload interrupts must add time: {costly} vs {free}"
    );
}

#[test]
fn ring_buffer_overflow_interrupts_os() {
    // Flood one cell's ring buffer past its capacity without receiving:
    // §4.3 says the MSC+ interrupts the OS to allocate a new buffer.
    let r = run_with(MachineConfig::new(2), |cell| {
        let buf = cell.alloc_bytes(32 << 10);
        if cell.id() == 0 {
            for _ in 0..6 {
                cell.send(1, buf, 16 << 10); // 96 KB total into a 64 KB ring
            }
        } else {
            // Busy receiver: all six messages land in the ring before the
            // first RECEIVE drains any of them.
            cell.work(10_000_000);
            for _ in 0..6 {
                cell.recv(0, buf, 16 << 10);
            }
        }
        cell.barrier();
    })
    .unwrap();
    assert!(r.counters.ring_overflows >= 1, "expected a ring overflow");
}

#[test]
fn timeline_records_events_and_counters_fill_histograms() {
    let r = run_with(cfg(4).with_timeline(true), |cell| {
        let buf = cell.alloc::<f64>(64);
        let flag = cell.alloc_flag();
        let n = cell.ncells();
        cell.work(1000);
        cell.barrier();
        cell.put((cell.id() + 1) % n, buf, buf, 512, VAddr::NULL, flag, false);
        cell.wait_flag(flag, 1);
    })
    .unwrap();

    assert!(!r.timeline.is_empty(), "timeline recording was enabled");
    let names: std::collections::HashSet<&str> = r.timeline.events.iter().map(|e| e.name).collect();
    for expected in [
        "work",
        "barrier",
        "put_issue",
        "enqueue",
        "send_dma",
        "recv_dma",
    ] {
        assert!(
            names.contains(expected),
            "missing event {expected:?} in {names:?}"
        );
    }

    // Histograms are always on, independent of the timeline switch.
    assert_eq!(r.counters.msg_size.count(), 4, "one PUT per cell");
    assert!(r.counters.flag_wait.count() >= 4, "one wait_flag per cell");
    assert!(r.counters.queue_occupancy.count() > 0);
    assert!(r.counters.hop_latency.count() > 0);
}

#[test]
fn timeline_off_by_default_but_histograms_still_collected() {
    let r = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(8);
        let flag = cell.alloc_flag();
        cell.put((cell.id() + 1) % 2, buf, buf, 64, VAddr::NULL, flag, false);
        cell.wait_flag(flag, 1);
    })
    .unwrap();
    assert!(r.timeline.is_empty(), "timeline must default off");
    assert_eq!(r.counters.msg_size.count(), 2);
}

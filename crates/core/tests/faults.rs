//! Kernel-level fault injection and recovery: drop/retry/detour on link
//! outages, checksum-detected corruption, duplicate suppression when acks
//! are lost, fail-stop crashes, and byte-reproducible fault reports.

use apcore::{
    run_with, run_with_faults, ApError, CellId, FaultEvent, FaultKind, FaultSpec, MachineConfig,
    RecoveryParams, SimTime, VAddr,
};

fn c(i: u32) -> CellId {
    CellId::new(i)
}

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

fn spec(events: Vec<FaultEvent>) -> FaultSpec {
    FaultSpec {
        seed: Some(7),
        recovery: RecoveryParams::default(),
        events,
    }
}

/// Ring shift on 4 cells (a 2x2 torus): each cell PUTs its id to its right
/// neighbour and waits on the receive flag, then reports (value, flag).
fn ring_shift(faults: Option<&FaultSpec>) -> apcore::RunReport<(f64, u32)> {
    run_with_faults(MachineConfig::new(4), faults, |cell| {
        let buf = cell.alloc::<f64>(1);
        let flag = cell.alloc_flag();
        let me = cell.id();
        let n = cell.ncells();
        cell.write_pod(buf, me as f64);
        cell.barrier();
        cell.put((me + 1) % n, buf, buf, 8, VAddr::NULL, flag, false);
        cell.wait_flag(flag, 1);
        (cell.read_pod::<f64>(buf), cell.read_flag(flag))
    })
    .expect("survivable schedule must complete")
}

#[test]
fn quiet_schedule_preserves_results_and_reports_nothing() {
    let baseline = run_with(MachineConfig::new(4), |cell| {
        let buf = cell.alloc::<f64>(1);
        let flag = cell.alloc_flag();
        let me = cell.id();
        let n = cell.ncells();
        cell.write_pod(buf, me as f64);
        cell.barrier();
        cell.put((me + 1) % n, buf, buf, 8, VAddr::NULL, flag, false);
        cell.wait_flag(flag, 1);
        (cell.read_pod::<f64>(buf), cell.read_flag(flag))
    })
    .unwrap();
    assert!(baseline.fault.is_none(), "fault-free runs carry no report");

    let r = ring_shift(Some(&FaultSpec::quiet()));
    assert_eq!(r.outputs, baseline.outputs);
    let report = r.fault.expect("faulted run carries a report");
    assert!(report.survived());
    assert_eq!(report.total_retries(), 0);
    assert_eq!(report.drops, 0);
    assert_eq!(r.counters.retries, 0);
    assert!(r.counters.acks > 0, "every envelope is acknowledged");
}

#[test]
fn link_outage_is_survived_via_retry_and_detour() {
    // On the 2x2 torus, cell1 -> cell2 routes X-first through link 1->0.
    // Taking that link down forces: discovery drop, ack-timeout retry,
    // then the Y-then-X detour (1->3->2), which is link-disjoint.
    let s = spec(vec![FaultEvent {
        from: t(0),
        until: t(10_000_000),
        kind: FaultKind::LinkDown {
            from: c(1),
            to: c(0),
        },
    }]);
    let r = ring_shift(Some(&s));
    assert_eq!(
        r.outputs,
        vec![(3.0, 1), (0.0, 1), (1.0, 1), (2.0, 1)],
        "every cell holds its left neighbour's value, each flag bumped once"
    );
    let report = r.fault.expect("report");
    assert!(report.survived());
    assert!(report.drops >= 1, "discovery drop recorded");
    assert!(report.total_retries() >= 1, "timeout retry recorded");
    assert!(report.detours >= 1, "known outage rerouted Y-then-X");
    assert_eq!(r.counters.retries, report.total_retries());
    assert_eq!(r.counters.detours, report.detours);
}

#[test]
fn corrupted_packet_is_detected_and_retried() {
    let s = spec(vec![FaultEvent {
        from: t(0),
        until: t(10_000_000),
        kind: FaultKind::Corrupt {
            src: c(0),
            dst: c(1),
            count: 1,
        },
    }]);
    let r = ring_shift(Some(&s));
    assert_eq!(r.outputs[1], (0.0, 1), "cell1 still receives cell0's value");
    let report = r.fault.expect("report");
    assert!(report.survived());
    assert_eq!(report.corrupt_detected, 1, "checksum caught the flip");
    assert!(report.total_retries() >= 1, "unacked envelope was resent");
}

#[test]
fn lost_ack_triggers_replay_which_is_suppressed() {
    // The PutData 0 -> 1 travels link 0->1; its ack returns over 1->0.
    // Downing 1->0 early drops the ack: the sender retries the PUT, the
    // receiver suppresses the duplicate (flag must NOT reach 2) and
    // re-acks once the window closes.
    let s = spec(vec![FaultEvent {
        from: t(0),
        until: t(500_000),
        kind: FaultKind::LinkDown {
            from: c(1),
            to: c(0),
        },
    }]);
    let r = ring_shift(Some(&s));
    assert_eq!(
        r.outputs[1],
        (0.0, 1),
        "idempotent replay: one scatter, one flag bump"
    );
    let report = r.fault.expect("report");
    assert!(report.survived());
    assert!(report.dup_suppressed >= 1, "duplicate PUT was deduplicated");
    assert_eq!(r.counters.dup_suppressed, report.dup_suppressed);
}

#[test]
fn identical_spec_reproduces_the_report_byte_for_byte() {
    let s = spec(vec![
        FaultEvent {
            from: t(0),
            until: t(500_000),
            kind: FaultKind::LinkDown {
                from: c(1),
                to: c(0),
            },
        },
        FaultEvent {
            from: t(0),
            until: t(10_000_000),
            kind: FaultKind::Corrupt {
                src: c(2),
                dst: c(3),
                count: 1,
            },
        },
    ]);
    let a = ring_shift(Some(&s));
    let b = ring_shift(Some(&s));
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(
        a.fault.unwrap().render(),
        b.fault.unwrap().render(),
        "same seed, same schedule, same bytes"
    );
}

#[test]
fn crash_without_collectives_degrades_gracefully() {
    // Cells compute independently; cell2 dies mid-work. The survivors
    // finish, and the run reports the crash structurally.
    let s = spec(vec![FaultEvent {
        from: t(100_000),
        until: t(100_000),
        kind: FaultKind::Crash { cell: c(2) },
    }]);
    let err = run_with_faults(MachineConfig::new(4), Some(&s), |cell| {
        cell.work(50_000); // 1 ms: the crash lands inside
        cell.id()
    })
    .expect_err("a crashed cell cannot finish");
    match err {
        ApError::Fault(report) => {
            assert!(!report.survived());
            assert_eq!(report.crashed, vec![(c(2), t(100_000))]);
            assert!(report.cause.contains("crashed fail-stop"));
        }
        other => panic!("expected ApError::Fault, got {other}"),
    }
}

#[test]
fn barrier_with_dead_participant_aborts_eagerly() {
    let s = spec(vec![FaultEvent {
        from: t(100_000),
        until: t(100_000),
        kind: FaultKind::Crash { cell: c(1) },
    }]);
    let err = run_with_faults(MachineConfig::new(4), Some(&s), |cell| {
        cell.work(50_000); // crash fires while everyone computes
        cell.barrier();
        cell.id()
    })
    .expect_err("barrier cannot release over a dead cell");
    match err {
        ApError::BarrierAborted { dead, .. } => {
            assert_eq!(dead, vec![c(1)], "the dead participant is named");
        }
        other => panic!("expected BarrierAborted, got {other}"),
    }
}

#[test]
fn outage_outlasting_the_retry_budget_aborts_structurally() {
    // Tight retry budget + an outage covering both the primary route and
    // the whole run: the transfer is undeliverable and the run must abort
    // with a structured delivery failure, not hang.
    let s = FaultSpec {
        seed: None,
        recovery: RecoveryParams {
            ack_timeout: t(100_000),
            backoff_cap: t(200_000),
            max_retries: 2,
        },
        // Same-row link on the 2x2 torus: 0 -> 1 has no Y component, so
        // the Y-then-X detour degenerates to the primary route and every
        // retry is dropped until the budget runs out.
        events: vec![FaultEvent {
            from: t(0),
            until: t(1_000_000_000),
            kind: FaultKind::LinkDown {
                from: c(0),
                to: c(1),
            },
        }],
    };
    let err = run_with_faults(MachineConfig::new(4), Some(&s), |cell| {
        let buf = cell.alloc::<f64>(1);
        let flag = cell.alloc_flag();
        let me = cell.id();
        let n = cell.ncells();
        cell.barrier();
        cell.put((me + 1) % n, buf, buf, 8, VAddr::NULL, flag, false);
        cell.wait_flag(flag, 1);
    })
    .expect_err("undeliverable transfer must abort");
    match err {
        ApError::Fault(report) => {
            assert_eq!(report.failures.len(), 1);
            let f = &report.failures[0];
            assert_eq!((f.src, f.dst), (c(0), c(1)));
            assert_eq!(f.attempts, 3, "first send + max_retries");
            assert!(report.cause.contains("undeliverable"));
        }
        other => panic!("expected ApError::Fault, got {other}"),
    }
}

//! Property tests of whole-machine behaviour: randomized communication
//! patterns checked against host-side oracles.

use apcore::{run_with, MachineConfig, ReduceOp, VAddr};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any batch of PUTs into distinct slots, synchronized Ack & Barrier
    /// style, delivers exactly the oracle's memory image.
    #[test]
    fn random_put_batch_delivers_exactly(
        ncells in 2u32..6,
        puts in proptest::collection::vec((0u32..6, 0u32..6, 0u32..16), 1..40),
    ) {
        // Normalize to the machine size; slot collisions resolved by
        // last-writer via distinct (src, slot) addressing.
        let puts: Arc<Vec<(u32, u32, u32)>> = Arc::new(
            puts.into_iter()
                .map(|(s, d, slot)| (s % ncells, d % ncells, slot))
                .collect(),
        );
        // Oracle: value at (dst, src, slot) = encoded sender value; each
        // (src, dst, slot) is written once with a deterministic value
        // (duplicates collapse to the same value, so order is irrelevant).
        let oracle = Arc::clone(&puts);
        let r = run_with(MachineConfig::new(ncells), move |cell| {
            let me = cell.id() as u32;
            let n = cell.ncells() as u32;
            // inbox[src][slot] on every cell; same layout everywhere.
            let inbox = cell.alloc::<f64>((n * 16) as usize);
            let out = cell.alloc::<f64>(16);
            for slot in 0..16u64 {
                cell.write_pod(out + slot * 8, (me as f64) * 1000.0 + slot as f64);
            }
            cell.barrier();
            for &(src, dst, slot) in puts.iter() {
                if src == me {
                    let raddr = inbox + (src as u64 * 16 + slot as u64) * 8;
                    cell.put(
                        dst as usize,
                        raddr,
                        out + slot as u64 * 8,
                        8,
                        VAddr::NULL,
                        VAddr::NULL,
                        true,
                    );
                }
            }
            cell.wait_acks();
            cell.barrier();
            cell.read_slice::<f64>(inbox, (n * 16) as usize)
        })
        .unwrap();
        for (dst, image) in r.outputs.iter().enumerate() {
            for src in 0..ncells {
                for slot in 0..16u32 {
                    let expected = if oracle
                        .iter()
                        .any(|&(s, d, sl)| s == src && d == dst as u32 && sl == slot)
                    {
                        src as f64 * 1000.0 + slot as f64
                    } else {
                        0.0
                    };
                    let got = image[(src * 16 + slot) as usize];
                    prop_assert_eq!(got, expected, "dst {} src {} slot {}", dst, src, slot);
                }
            }
        }
    }

    /// Tree reductions agree with the oracle for every operator, any
    /// machine size (including non-powers of two).
    #[test]
    fn reductions_match_oracle(
        ncells in 1u32..9,
        seeds in proptest::collection::vec(-100i32..100, 9),
    ) {
        let seeds = Arc::new(seeds);
        let values: Vec<f64> = (0..ncells as usize).map(|i| seeds[i] as f64).collect();
        let expect_sum: f64 = values.iter().sum();
        let expect_max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let r = run_with(MachineConfig::new(ncells), move |cell| {
            let x = seeds[cell.id()] as f64;
            let s = cell.reduce_f64(x, ReduceOp::Sum);
            let m = cell.reduce_f64(x, ReduceOp::Max);
            (s, m)
        })
        .unwrap();
        for &(s, m) in &r.outputs {
            prop_assert!((s - expect_sum).abs() < 1e-9, "sum {} vs {}", s, expect_sum);
            prop_assert_eq!(m, expect_max);
        }
    }

    /// Ring-buffer messages between a fixed pair arrive in FIFO order
    /// regardless of sizes.
    #[test]
    fn ring_buffer_is_fifo(lens in proptest::collection::vec(1usize..50, 1..20)) {
        let lens = Arc::new(lens);
        let check = Arc::clone(&lens);
        let r = run_with(MachineConfig::new(2), move |cell| {
            let buf = cell.alloc::<u32>(64);
            let mut received = Vec::new();
            if cell.id() == 0 {
                for (i, &len) in lens.iter().enumerate() {
                    cell.write_slice(buf, &vec![i as u32 + 1; len]);
                    cell.send(1, buf, (len * 4) as u64);
                }
            } else {
                for &len in lens.iter() {
                    let n = cell.recv(0, buf, 256);
                    assert_eq!(n, (len * 4) as u64);
                    received.push(cell.read_pod::<u32>(buf));
                }
            }
            received
        })
        .unwrap();
        let got = &r.outputs[1];
        let expect: Vec<u32> = (0..check.len()).map(|i| i as u32 + 1).collect();
        prop_assert_eq!(got, &expect);
    }

    /// Simulated time is monotone in message size: PUTting more bytes
    /// never finishes earlier.
    #[test]
    fn put_latency_monotone_in_size(sizes in proptest::collection::vec(1u64..8192, 2..6)) {
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let mut times = Vec::new();
        for &bytes in &sorted {
            let r = run_with(MachineConfig::new(2).with_trace(false), move |cell| {
                let buf = cell.alloc_bytes(8192);
                let flag = cell.alloc_flag();
                cell.barrier();
                if cell.id() == 0 {
                    cell.put(1, buf, buf, bytes, VAddr::NULL, flag, false);
                } else {
                    cell.wait_flag(flag, 1);
                }
                cell.barrier();
            })
            .unwrap();
            times.push(r.total_time);
        }
        for w in times.windows(2) {
            prop_assert!(w[1] >= w[0], "latency decreased with size: {:?}", times);
        }
    }
}

//! Distributed-shared-memory and write-through-page tests (§4.2).

use apcore::{run_with, MachineConfig};

fn cfg(n: u32) -> MachineConfig {
    MachineConfig::new(n)
}

#[test]
fn remote_store_load_fence_round_trip() {
    let r = run_with(cfg(4), |cell| {
        let me = cell.id();
        let n = cell.ncells();
        // Write my id pattern into every other cell's shared window at an
        // offset only I use.
        for k in 1..n {
            let dst = (me + k) % n;
            cell.remote_store(dst, (me * 64) as u64, &[me as u8; 16]);
        }
        cell.remote_fence();
        cell.barrier();
        // Read back what everyone wrote into MY window via a neighbour.
        let mut sum = 0u32;
        for writer in 0..n {
            if writer == me {
                continue;
            }
            let data = cell.remote_load(me, (writer * 64) as u64, 16);
            assert!(data.iter().all(|&b| b == writer as u8), "corrupted store");
            sum += u32::from(data[0]);
        }
        sum
    })
    .unwrap();
    assert_eq!(
        r.outputs,
        [6, 5, 4, 3].iter().map(|v| *v as u32).collect::<Vec<_>>()
    );
}

#[test]
fn wt_cache_hits_after_first_touch() {
    let r = run_with(cfg(2), |cell| {
        if cell.id() == 0 {
            // Owner publishes data in its own shared window.
            cell.remote_store(0, 0, &(0u8..=255).collect::<Vec<u8>>());
            cell.remote_fence();
        }
        cell.barrier();
        if cell.id() == 1 {
            // First read misses (remote load), later reads of the same
            // page hit locally.
            let a = cell.wt_read(0, 10, 4);
            let b = cell.wt_read(0, 100, 4);
            let c = cell.wt_read(0, 10, 4);
            assert_eq!(a, vec![10, 11, 12, 13]);
            assert_eq!(b, vec![100, 101, 102, 103]);
            assert_eq!(c, a);
            cell.wt_stats()
        } else {
            (0, 0)
        }
    })
    .unwrap();
    let (hits, misses) = r.outputs[1];
    assert_eq!(misses, 1, "one page fetch");
    assert_eq!(hits, 2, "subsequent reads are local");
}

#[test]
fn wt_write_goes_through_and_updates_local_copy() {
    let r = run_with(cfg(2), |cell| {
        cell.barrier();
        if cell.id() == 1 {
            // Populate cache, then write through.
            let before = cell.wt_read(0, 0, 8);
            assert_eq!(before, vec![0u8; 8]);
            cell.wt_write(0, 2, &[7, 8, 9]);
            // Local copy sees the write immediately (hit).
            let local = cell.wt_read(0, 0, 8);
            assert_eq!(local, vec![0, 0, 7, 8, 9, 0, 0, 0]);
            cell.remote_fence();
        }
        cell.barrier();
        if cell.id() == 0 {
            // The owner's memory really received the store.
            let data = cell.remote_load(0, 0, 8);
            assert_eq!(data, vec![0, 0, 7, 8, 9, 0, 0, 0]);
        }
        cell.barrier();
    })
    .unwrap();
    drop(r);
}

#[test]
fn wt_cache_is_incoherent_until_invalidated() {
    // The paper adds coherence in software; the hardware cache serves
    // stale data until the reader invalidates.
    run_with(cfg(2), |cell| {
        cell.barrier();
        if cell.id() == 1 {
            let stale = cell.wt_read(0, 0, 4);
            assert_eq!(stale, vec![0, 0, 0, 0]);
        }
        cell.barrier();
        if cell.id() == 0 {
            cell.remote_store(0, 0, &[42, 42, 42, 42]);
            cell.remote_fence();
        }
        cell.barrier();
        if cell.id() == 1 {
            // Still the cached page.
            assert_eq!(cell.wt_read(0, 0, 4), vec![0, 0, 0, 0]);
            // Software coherence point.
            cell.wt_invalidate_all();
            assert_eq!(cell.wt_read(0, 0, 4), vec![42, 42, 42, 42]);
        }
        cell.barrier();
    })
    .unwrap();
}

#[test]
fn wt_read_crosses_page_boundaries() {
    run_with(cfg(2), |cell| {
        if cell.id() == 0 {
            let data: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
            cell.remote_store(0, 0, &data[..1500]);
            cell.remote_store(0, 1500, &data[1500..]);
            cell.remote_fence();
        }
        cell.barrier();
        if cell.id() == 1 {
            // 1 KB pages: this read spans three.
            let got = cell.wt_read(0, 900, 1500);
            let expect: Vec<u8> = (900..2400u32).map(|i| (i % 251) as u8).collect();
            assert_eq!(got, expect);
            let (_, misses) = cell.wt_stats();
            assert_eq!(misses, 3);
        }
        cell.barrier();
    })
    .unwrap();
}

#[test]
fn dsm_ops_are_traced_and_replayable() {
    let r = run_with(cfg(2), |cell| {
        if cell.id() == 0 {
            cell.remote_store(1, 0, &[1u8; 256]);
            cell.remote_fence();
            let _ = cell.remote_load(1, 0, 256);
        }
        cell.barrier();
    })
    .unwrap();
    // The trace carries the DSM ops and replays under every model.
    let ops = &r.trace.pe(aputil::CellId::new(0)).ops;
    assert!(ops
        .iter()
        .any(|o| matches!(o, aptrace::Op::RemoteStore { .. })));
    assert!(ops.iter().any(|o| matches!(o, aptrace::Op::RemoteFence)));
    assert!(ops
        .iter()
        .any(|o| matches!(o, aptrace::Op::RemoteLoad { .. })));
    for m in [
        mlsim::ModelParams::ap1000(),
        mlsim::ModelParams::ap1000_star(),
        mlsim::ModelParams::ap1000_plus(),
    ] {
        let rep = mlsim::replay(&r.trace, &m).unwrap();
        assert!(rep.total > aputil::SimTime::ZERO, "{}", m.name);
    }
}

//! Error-path coverage: every §3.2 protection case and protocol misuse
//! must surface as a structured error, never a hang or silent corruption.

use apcore::{run_with, ApError, BlockReason, CellId, MachineConfig, ReduceOp, VAddr};

fn cfg(n: u32) -> MachineConfig {
    MachineConfig::new(n)
}

#[test]
fn put_to_nonexistent_cell_is_rejected() {
    let err = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(1);
        cell.put(7, buf, buf, 8, VAddr::NULL, VAddr::NULL, false);
    })
    .unwrap_err();
    assert!(matches!(err, ApError::NoSuchCell { .. }), "got {err}");
}

#[test]
fn get_from_nonexistent_cell_is_rejected() {
    let err = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(1);
        let flag = cell.alloc_flag();
        cell.get(9, buf, buf, 8, VAddr::NULL, flag);
    })
    .unwrap_err();
    assert!(matches!(err, ApError::NoSuchCell { .. }), "got {err}");
}

#[test]
fn mismatched_put_strides_are_rejected() {
    use apcore::StrideSpec;
    let err = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(64);
        cell.put_stride(
            1,
            buf,
            buf,
            StrideSpec::new(8, 4, 16), // 32 bytes
            StrideSpec::new(8, 5, 16), // 40 bytes
            VAddr::NULL,
            VAddr::NULL,
            false,
        );
    })
    .unwrap_err();
    match err {
        ApError::InvalidArg(msg) => assert!(msg.contains("bytes"), "msg: {msg}"),
        other => panic!("expected InvalidArg, got {other}"),
    }
}

#[test]
fn oversized_dma_is_rejected() {
    use apcore::StrideSpec;
    // The contiguous `put` API chunks transparently (next test), but an
    // explicit stride spec beyond the 4 MB single-DMA maximum of §4.1
    // must still be rejected.
    let err = run_with(cfg(2).with_mem_size(32 << 20), |cell| {
        let buf = cell.alloc_bytes(8 << 20);
        cell.put_stride(
            1,
            buf,
            buf,
            StrideSpec::new(1 << 20, 8, 1 << 20),
            StrideSpec::new(1 << 20, 8, 1 << 20),
            VAddr::NULL,
            VAddr::NULL,
            false,
        );
    })
    .unwrap_err();
    match err {
        ApError::InvalidArg(msg) => assert!(msg.contains("4 MB"), "msg: {msg}"),
        other => panic!("expected InvalidArg, got {other}"),
    }
}

#[test]
fn large_put_chunks_at_dma_limit() {
    // A 9 MB contiguous put splits into 4 + 4 + 1 MB chunks; the in-order
    // T-net delivers them in sequence, the recv flag rides the last chunk
    // and bumps exactly once, and every byte lands intact.
    const BYTES: u64 = 9 << 20;
    let r = run_with(cfg(2).with_mem_size(32 << 20), |cell| {
        let buf = cell.alloc_bytes(BYTES);
        let flag = cell.alloc_flag();
        let words = (BYTES / 8) as usize;
        if cell.id() == 0 {
            let data: Vec<u64> = (0..words as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            cell.write_slice(buf, &data);
            cell.put(1, buf, buf, BYTES, VAddr::NULL, flag, false);
            cell.barrier();
            0u64
        } else {
            cell.wait_flag(flag, 1);
            let got: Vec<u64> = cell.read_slice(buf, words);
            let ok = got
                .iter()
                .enumerate()
                .all(|(i, &w)| w == (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let flag_val = cell.read_flag(flag) as u64;
            cell.barrier();
            u64::from(ok) | (flag_val << 1)
        }
    })
    .unwrap();
    assert_eq!(r.outputs[1] & 1, 1, "payload corrupted across chunks");
    assert_eq!(r.outputs[1] >> 1, 1, "recv flag must bump exactly once");
    let puts: usize = r
        .trace
        .pe(CellId::new(0))
        .ops
        .iter()
        .filter(|op| matches!(op, aptrace::Op::Put { .. }))
        .count();
    assert_eq!(puts, 3, "9 MB should issue as three DMA chunks");
}

#[test]
fn zero_byte_get_is_rejected() {
    let err = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(1);
        cell.get(1, buf, buf, 0, VAddr::NULL, VAddr::NULL);
    })
    .unwrap_err();
    match err {
        ApError::InvalidArg(msg) => assert!(msg.contains("zero-length"), "msg: {msg}"),
        other => panic!("expected InvalidArg, got {other}"),
    }
}

#[test]
fn wait_on_unmapped_flag_faults() {
    let err = run_with(cfg(2), |cell| {
        cell.wait_flag(VAddr::new(0xeeee_0000), 1);
    })
    .unwrap_err();
    assert!(matches!(err, ApError::PageFault { .. }), "got {err}");
}

#[test]
fn reduction_protocol_violation_is_detected() {
    // Two cells run *different* reductions concurrently: their register
    // stores collide on a set p-bit, which the kernel reports instead of
    // corrupting values.
    let err = run_with(cfg(4), |cell| {
        if cell.id() < 2 {
            let group = vec![0, 1];
            cell.group_reduce_f64(&group, 1.0, ReduceOp::Sum);
        } else {
            // Overlapping group using the same register slots, racing the
            // other group's protocol on cells 0/1... simulate misuse by
            // storing directly into a busy register.
            cell.reg_store(0, 0, 7);
            cell.reg_store(0, 0, 8); // second store before any load
        }
    })
    .unwrap_err();
    match err {
        ApError::InvalidArg(msg) => {
            assert!(
                msg.contains("p-bit") || msg.contains("register"),
                "msg: {msg}"
            )
        }
        // Depending on interleaving the reduction may also deadlock after
        // the stray value is consumed; both are structured failures.
        ApError::Deadlock(_) | ApError::CellFailed { .. } => {}
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn group_member_missing_panics_cleanly() {
    let err = run_with(cfg(4), |cell| {
        if cell.id() == 3 {
            // Not a member of the group it joins.
            cell.group_barrier(&[0, 1, 2]);
        }
    })
    .unwrap_err();
    match err {
        ApError::CellFailed { reason, .. } => {
            assert!(reason.contains("member"), "reason: {reason}")
        }
        // The other cells may be reported first as deadlocked.
        ApError::Deadlock(_) => {}
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn recv_truncates_to_max() {
    let r = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(16);
        if cell.id() == 0 {
            cell.write_slice(buf, &[1.0f64; 16]);
            cell.send(1, buf, 128);
            0
        } else {
            // Only accept 40 of the 128 bytes.
            cell.recv(0, buf, 40)
        }
    })
    .unwrap();
    assert_eq!(r.outputs[1], 40);
}

#[test]
fn allocation_exhaustion_is_reported() {
    let err = run_with(cfg(1).with_mem_size(1 << 20), |cell| loop {
        let _ = cell.alloc_bytes(1 << 19);
    })
    .unwrap_err();
    match err {
        ApError::InvalidArg(msg) => assert!(msg.contains("allocate"), "msg: {msg}"),
        other => panic!("expected allocation failure, got {other}"),
    }
}

#[test]
fn deadlock_report_carries_per_cell_diagnostics() {
    // Cell 0 waits forever on a flag nobody bumps; cell 1 blocks in a
    // barrier cell 0 never reaches. The report must name both cells with
    // their precise block reasons.
    let err = run_with(cfg(2), |cell| {
        if cell.id() == 0 {
            let flag = cell.alloc_flag();
            cell.wait_flag(flag, 3);
        } else {
            cell.barrier();
        }
    })
    .unwrap_err();
    let report = match err {
        ApError::Deadlock(report) => report,
        other => panic!("expected Deadlock, got {other}"),
    };
    assert_eq!(report.total_cells, 2);
    assert_eq!(report.finished_cells, 0);
    assert_eq!(report.blocked.len(), 2);

    let c0 = report.cell(CellId::new(0)).expect("cell 0 in report");
    match c0.reason {
        BlockReason::FlagWait {
            current, target, ..
        } => {
            assert_eq!(current, 0, "flag was never bumped");
            assert_eq!(target, 3);
        }
        ref other => panic!("cell 0 should block on a flag, got {other}"),
    }
    assert!(c0.pending_tx.is_empty(), "cell 0 issued no transfers");

    let c1 = report.cell(CellId::new(1)).expect("cell 1 in report");
    assert!(
        matches!(c1.reason, BlockReason::Barrier),
        "cell 1 should block in the barrier, got {}",
        c1.reason
    );

    // The rendered form names the flag wait for log-grepping users.
    let text = report.to_string();
    assert!(text.contains("wait_flag"), "report text: {text}");
    assert!(text.contains("barrier"), "report text: {text}");
}

#[test]
fn deadlock_report_lists_pending_queue_contents() {
    // Cell 0 PUTs to cell 1 and then waits on an ack flag that can never
    // be bumped because the wait target exceeds the number of transfers.
    let err = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(8);
        let flag = cell.alloc_flag();
        if cell.id() == 0 {
            cell.put(1, buf, buf, 64, flag, VAddr::NULL, false);
            cell.wait_flag(flag, 2); // only one PUT was issued
        } else {
            cell.wait_flag(flag, 1); // nobody PUTs to cell 1's flag
        }
    })
    .unwrap_err();
    let report = match err {
        ApError::Deadlock(report) => report,
        other => panic!("expected Deadlock, got {other}"),
    };
    let c0 = report.cell(CellId::new(0)).expect("cell 0 blocked");
    match c0.reason {
        BlockReason::FlagWait {
            current, target, ..
        } => {
            assert_eq!(current, 1, "send-side ack arrived");
            assert_eq!(target, 2);
        }
        ref other => panic!("cell 0 should block on the ack flag, got {other}"),
    }
}

#[test]
fn bcast_size_mismatch_is_detected() {
    let err = run_with(cfg(2), |cell| {
        let buf = cell.alloc::<f64>(4);
        if cell.id() == 0 {
            cell.bcast(0, buf, 32);
        } else {
            cell.bcast(0, buf, 16);
        }
    })
    .unwrap_err();
    match err {
        ApError::InvalidArg(msg) => assert!(msg.contains("bcast"), "msg: {msg}"),
        other => panic!("expected InvalidArg, got {other}"),
    }
}

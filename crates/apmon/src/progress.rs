//! Live one-line run progress for `repro --progress`.
//!
//! The kernel calls [`Progress::maybe_report`] with current gauges; the
//! reporter rate-limits itself to roughly one stderr line per second of
//! *wall* time, checking the clock only when asked (the kernel asks every
//! few thousand events, so the cost is a branch plus a rare `Instant`
//! read). Output goes to stderr so piped artifact output stays clean.

use std::io::Write;
use std::time::{Duration, Instant};

/// Rate-limited progress reporter.
#[derive(Debug)]
pub struct Progress {
    label: String,
    started: Instant,
    last: Instant,
    last_events: u64,
    min_gap: Duration,
}

impl Progress {
    /// A reporter for the run called `label`, printing at most one line
    /// per second.
    pub fn new(label: impl Into<String>) -> Self {
        let now = Instant::now();
        Progress {
            label: label.into(),
            started: now,
            last: now,
            last_events: 0,
            min_gap: Duration::from_secs(1),
        }
    }

    /// Overrides the minimum wall-clock gap between lines (tests).
    pub fn with_min_gap(mut self, gap: Duration) -> Self {
        self.min_gap = gap;
        self
    }

    /// Prints one line if at least the minimum gap has elapsed. Returns
    /// whether a line was printed.
    pub fn maybe_report(
        &mut self,
        sim_time: aputil::SimTime,
        events: u64,
        cells_blocked: u32,
        retries: u64,
    ) -> bool {
        let now = Instant::now();
        if now.duration_since(self.last) < self.min_gap {
            return false;
        }
        let rate = (events - self.last_events) as f64
            / now.duration_since(self.last).as_secs_f64().max(1e-9);
        self.last = now;
        self.last_events = events;
        let line = format!(
            "[{} +{:5.1}s] sim {} | {} events ({:.0}/s) | {} cells blocked | {} retries",
            self.label,
            now.duration_since(self.started).as_secs_f64(),
            sim_time,
            events,
            rate,
            cells_blocked,
            retries,
        );
        // Best-effort: a closed stderr must not kill the run.
        let _ = writeln!(std::io::stderr(), "{line}");
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_limits_by_wall_clock() {
        let mut p = Progress::new("test").with_min_gap(Duration::from_millis(20));
        assert!(!p.maybe_report(aputil::SimTime::ZERO, 10, 0, 0));
        std::thread::sleep(Duration::from_millis(25));
        assert!(p.maybe_report(aputil::SimTime::from_nanos(500), 100, 1, 0));
        // Immediately after printing, the gate closes again.
        assert!(!p.maybe_report(aputil::SimTime::from_nanos(600), 120, 1, 0));
    }
}

//! Torus heatmaps: per-cell scalar fields rendered as ASCII + JSON.

use aputil::Json;

/// A `width × height` grid of normalized-ish scalars (any non-negative
/// range; rendering normalizes to the observed maximum), row-major with
/// cell `id = y * width + x` like `apnet::Torus`.
#[derive(Clone, Debug, PartialEq)]
pub struct Heatmap {
    /// What the values mean (e.g. `"cell busy-fraction"`).
    pub title: String,
    /// Torus width.
    pub width: usize,
    /// Torus height.
    pub height: usize,
    /// Row-major values, `width * height` of them.
    pub values: Vec<f64>,
}

/// Intensity ramp used by the ASCII rendering, darkest last.
const RAMP: &[u8] = b" .:-=+*#%@";

impl Heatmap {
    /// Builds a heatmap; `values.len()` must equal `width * height`.
    pub fn new(title: impl Into<String>, width: usize, height: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), width * height, "heatmap shape mismatch");
        Heatmap {
            title: title.into(),
            width,
            height,
            values,
        }
    }

    /// Largest value (0 for an empty/all-zero map).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// ASCII art: one character per cell, block-averaged down to at most
    /// `max_cols` columns so a 100×100 torus still fits a terminal.
    /// Intensity is relative to the map's own maximum.
    pub fn render(&self, max_cols: usize) -> String {
        let max_cols = max_cols.max(1);
        let step = self.width.div_ceil(max_cols).max(1);
        let peak = self.max();
        let mut out = format!(
            "{} ({}x{} torus, peak {:.3}, '{}' = peak)\n",
            self.title,
            self.width,
            self.height,
            peak,
            *RAMP.last().unwrap() as char
        );
        for by in (0..self.height).step_by(step) {
            for bx in (0..self.width).step_by(step) {
                // Average the step×step block.
                let mut sum = 0.0;
                let mut n = 0u32;
                for y in by..(by + step).min(self.height) {
                    for x in bx..(bx + step).min(self.width) {
                        sum += self.values[y * self.width + x];
                        n += 1;
                    }
                }
                let v = if n == 0 { 0.0 } else { sum / n as f64 };
                let idx = if peak <= 0.0 {
                    0
                } else {
                    ((v / peak) * (RAMP.len() - 1) as f64).round() as usize
                };
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }

    /// `{title, width, height, values}` — values kept full-resolution.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            ("width", Json::U(self.width as u64)),
            ("height", Json::U(self.height as u64)),
            (
                "values",
                Json::Arr(self.values.iter().map(|&v| Json::F(v)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_full_resolution_when_it_fits() {
        let h = Heatmap::new("t", 4, 2, vec![0.0, 0.0, 0.0, 1.0, 0.5, 0.0, 0.0, 0.0]);
        let art = h.render(64);
        let rows: Vec<&str> = art.lines().skip(1).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 4);
        // The peak cell renders as the ramp's last character.
        assert_eq!(rows[0].as_bytes()[3], *RAMP.last().unwrap());
        // The zero cells render as spaces.
        assert_eq!(rows[0].as_bytes()[0], b' ');
    }

    #[test]
    fn downsamples_wide_maps_by_block_averaging() {
        let h = Heatmap::new("t", 128, 4, vec![1.0; 128 * 4]);
        let art = h.render(64);
        let rows: Vec<&str> = art.lines().skip(1).collect();
        assert_eq!(rows.len(), 2, "height shrinks by the same step");
        assert!(rows.iter().all(|r| r.len() == 64));
        // Uniform map: every block averages to the peak.
        assert!(art.lines().skip(1).all(|r| r.bytes().all(|b| b == b'@')));
    }

    #[test]
    fn all_zero_map_renders_blank_not_nan() {
        let h = Heatmap::new("t", 3, 3, vec![0.0; 9]);
        let art = h.render(10);
        assert!(art.lines().skip(1).all(|r| r.bytes().all(|b| b == b' ')));
        assert!(h.to_json().to_string().contains("\"values\""));
    }
}

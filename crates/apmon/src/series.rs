//! The sampled metrics time series and its deterministic sampler.

use apobs::{Timeline, Unit};
use aputil::{Json, SimTime};

/// One snapshot row. Every field is a plain integer so rows are
/// fixed-width, cheap to take, and serialize without float formatting
/// concerns. Counters (`events`, `msgs`, `bytes`, `link_busy_ns`,
/// `retries`, `detours`) are cumulative since run start; everything else
/// is an instantaneous gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSample {
    /// Sim time of this tick (`k * interval`).
    pub t: SimTime,
    /// Kernel events handled so far (cumulative).
    pub events: u64,
    /// T-net messages delivered so far (cumulative).
    pub msgs: u64,
    /// T-net payload bytes delivered so far (cumulative).
    pub bytes: u64,
    /// PUT transfers currently in flight (issued, not yet delivered).
    pub puts_inflight: u32,
    /// GET transfers currently in flight.
    pub gets_inflight: u32,
    /// Cells currently blocked on anything (flag, recv, barrier, …).
    pub cells_blocked: u32,
    /// Cells currently parked inside the S-net barrier specifically.
    pub barrier_waiting: u32,
    /// Total entries queued across every cell's MSC+ queues + spill.
    pub queue_depth: u64,
    /// Deepest single cell's queue backlog.
    pub queue_depth_max: u64,
    /// Cells whose send DMA engine is busy right now.
    pub send_dma_busy: u32,
    /// Cells whose receive DMA engine is busy right now.
    pub recv_dma_busy: u32,
    /// Total T-net link-busy nanoseconds accumulated so far (cumulative;
    /// one message crossing `h` hops charges `h` link-transmission times).
    pub link_busy_ns: u64,
    /// Fault-recovery retransmissions so far (cumulative; 0 when no fault
    /// schedule is injected).
    pub retries: u64,
    /// Fault-recovery route detours so far (cumulative).
    pub detours: u64,
}

impl MetricsSample {
    /// Field names, in the column order [`to_row`](Self::to_row) uses.
    pub const COLUMNS: &'static [&'static str] = &[
        "t_ns",
        "events",
        "msgs",
        "bytes",
        "puts_inflight",
        "gets_inflight",
        "cells_blocked",
        "barrier_waiting",
        "queue_depth",
        "queue_depth_max",
        "send_dma_busy",
        "recv_dma_busy",
        "link_busy_ns",
        "retries",
        "detours",
    ];

    /// The row as a JSON array in [`COLUMNS`](Self::COLUMNS) order —
    /// column-oriented framing keeps a 10k-sample artifact compact.
    pub fn to_row(&self) -> Json {
        Json::Arr(vec![
            Json::U(self.t.as_nanos()),
            Json::U(self.events),
            Json::U(self.msgs),
            Json::U(self.bytes),
            Json::U(self.puts_inflight as u64),
            Json::U(self.gets_inflight as u64),
            Json::U(self.cells_blocked as u64),
            Json::U(self.barrier_waiting as u64),
            Json::U(self.queue_depth),
            Json::U(self.queue_depth_max),
            Json::U(self.send_dma_busy as u64),
            Json::U(self.recv_dma_busy as u64),
            Json::U(self.link_busy_ns),
            Json::U(self.retries),
            Json::U(self.detours),
        ])
    }
}

/// A run's complete sampled series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSeries {
    /// Sampling interval (sim time between ticks).
    pub interval: SimTime,
    /// One row per tick, in tick order.
    pub samples: Vec<MetricsSample>,
}

impl MetricsSeries {
    /// Serializes as `{interval_ns, columns, rows}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("interval_ns", Json::U(self.interval.as_nanos())),
            (
                "columns",
                Json::Arr(
                    MetricsSample::COLUMNS
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect(),
                ),
            ),
            (
                "rows",
                Json::Arr(self.samples.iter().map(MetricsSample::to_row).collect()),
            ),
        ])
    }

    /// Derives a comparable series from a recorded [`Timeline`] — the
    /// model-side (MLSim) counterpart of the emulator's live sampling,
    /// for divergence-style comparison. Only the gauges a timeline can
    /// answer are filled: cumulative event count, and per-tick busy
    /// populations of the send/recv DMA units (a span `[s, s+d)` counts
    /// at tick `k` iff it covers `k·interval`). Everything else stays 0.
    pub fn from_timeline(timeline: &Timeline, interval: SimTime) -> Self {
        assert!(interval > SimTime::ZERO, "sampling interval must be > 0");
        let end = timeline
            .events
            .iter()
            .map(apobs::TimelineEvent::end)
            .max()
            .unwrap_or(SimTime::ZERO);
        let nticks = (end.as_nanos() / interval.as_nanos()) as usize + 1;
        // Diff arrays: +1 at the first covered tick, -1 after the last.
        let mut send_d = vec![0i64; nticks + 1];
        let mut recv_d = vec![0i64; nticks + 1];
        let mut events_d = vec![0u64; nticks + 1];
        let i_ns = interval.as_nanos();
        for e in &timeline.events {
            let s = e.start.as_nanos();
            // Cumulative "events so far at tick k" counts events starting
            // strictly before the tick, matching the emulator's rule.
            let first_after = (s / i_ns + 1).min(nticks as u64) as usize;
            events_d[first_after] += 1;
            let Some(d) = e.dur else { continue };
            let span_end = s + d.as_nanos();
            // First tick at or after s; last tick strictly before end.
            let lo = s.div_ceil(i_ns);
            if span_end == s || lo * i_ns >= span_end {
                continue;
            }
            let hi = (span_end - 1) / i_ns;
            let (lo, hi) = (lo as usize, (hi as usize).min(nticks - 1));
            if lo > hi {
                continue;
            }
            let diff = match e.unit {
                Unit::SendDma => &mut send_d,
                Unit::RecvDma => &mut recv_d,
                _ => continue,
            };
            diff[lo] += 1;
            diff[hi + 1] -= 1;
        }
        let mut samples = Vec::with_capacity(nticks);
        let (mut send, mut recv, mut events) = (0i64, 0i64, 0u64);
        for k in 0..nticks {
            send += send_d[k];
            recv += recv_d[k];
            events += events_d[k];
            samples.push(MetricsSample {
                t: interval * k as u64,
                events,
                send_dma_busy: send.max(0) as u32,
                recv_dma_busy: recv.max(0) as u32,
                ..MetricsSample::default()
            });
        }
        MetricsSeries { interval, samples }
    }
}

/// Deterministic tick placement for the emulator kernel.
///
/// The rule: the sample for tick `k` (sim time `k·interval`) is taken
/// when the kernel first pops an event with `time ≥ k·interval`, *before*
/// handling it — i.e. gauges reflect machine state after every event
/// strictly earlier than the tick. Quiet stretches produce one row per
/// elapsed tick (the state can't have changed in between, but fixed-width
/// rows keep downstream tooling trivial).
#[derive(Clone, Debug)]
pub struct Sampler {
    interval: SimTime,
    next_tick: u64,
    /// The accumulating series.
    pub series: MetricsSeries,
}

impl Sampler {
    /// A sampler ticking every `interval` of sim time.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimTime) -> Self {
        assert!(interval > SimTime::ZERO, "sampling interval must be > 0");
        Sampler {
            interval,
            next_tick: 0,
            series: MetricsSeries {
                interval,
                samples: Vec::new(),
            },
        }
    }

    /// Sim time of the next pending tick.
    pub fn next_time(&self) -> SimTime {
        self.interval * self.next_tick
    }

    /// Must the kernel sample before advancing to an event at `t`?
    pub fn due(&self, t: SimTime) -> bool {
        t >= self.next_time()
    }

    /// Records `sample` for the current tick (stamping its time) and
    /// advances to the next one. Call while [`due`](Self::due) holds.
    pub fn push(&mut self, mut sample: MetricsSample) {
        sample.t = self.next_time();
        self.series.samples.push(sample);
        self.next_tick += 1;
    }

    /// Consumes the sampler, yielding the finished series.
    pub fn finish(self) -> MetricsSeries {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apobs::{Bucket, TimelineEvent};

    #[test]
    fn sampler_places_ticks_deterministically() {
        let mut s = Sampler::new(SimTime::from_nanos(100));
        // Event at t=0: tick 0 is due immediately (state before any event).
        assert!(s.due(SimTime::ZERO));
        s.push(MetricsSample::default());
        assert!(!s.due(SimTime::from_nanos(99)));
        assert!(s.due(SimTime::from_nanos(100)));
        // A long quiet stretch: every elapsed tick fires once.
        while s.due(SimTime::from_nanos(350)) {
            s.push(MetricsSample::default());
        }
        let times: Vec<u64> = s.series.samples.iter().map(|r| r.t.as_nanos()).collect();
        assert_eq!(times, [0, 100, 200, 300]);
    }

    #[test]
    fn rows_are_fixed_width() {
        let row = MetricsSample::default().to_row();
        assert_eq!(row.as_arr().unwrap().len(), MetricsSample::COLUMNS.len());
    }

    #[test]
    fn from_timeline_counts_dma_spans_per_tick() {
        let mut t = Timeline::new("model");
        let ev = |unit, start, dur| TimelineEvent {
            cell: 0,
            unit,
            name: "dma",
            start: SimTime::from_nanos(start),
            dur: Some(SimTime::from_nanos(dur)),
            bucket: Bucket::Hw,
            arg: 0,
            tid: 0,
        };
        // Send DMA busy over [50, 250): covers ticks 100 and 200.
        t.events.push(ev(Unit::SendDma, 50, 200));
        // Recv DMA busy over [100, 150): covers tick 100 only (half-open).
        t.events.push(ev(Unit::RecvDma, 100, 50));
        let s = MetricsSeries::from_timeline(&t, SimTime::from_nanos(100));
        let send: Vec<u32> = s.samples.iter().map(|r| r.send_dma_busy).collect();
        let recv: Vec<u32> = s.samples.iter().map(|r| r.recv_dma_busy).collect();
        assert_eq!(send, [0, 1, 1]);
        assert_eq!(recv, [0, 1, 0]);
        // Cumulative "strictly before the tick": the t=50 span counts
        // from tick 1; the one starting exactly at t=100 only from tick 2.
        let events: Vec<u64> = s.samples.iter().map(|r| r.events).collect();
        assert_eq!(events, [0, 1, 2]);
    }
}

//! # apmon — always-on sampled telemetry for huge machines
//!
//! The `apobs` timeline records *every* event, which is exactly the wrong
//! tool at the 10k-cell scale the ROADMAP aims for: the biggest runs are
//! the ones it can see the least into. This crate is the aggregate layer
//! machines of that size actually live on:
//!
//! * [`MetricsSeries`] — fixed-width, sim-time-sampled gauge/counter rows
//!   (T-net utilization, DMA occupancy, queue depth, in-flight PUT/GETs,
//!   barrier wait population, fault retries/detours) captured by a
//!   deterministic [`Sampler`] at a configurable sim-time interval. The
//!   cost per *event* is one integer compare; the cost per *sample* is a
//!   handful of loads — independent of machine size history.
//! * [`RunMetrics`] — the versioned `ap1000plus.metrics` v1 artifact:
//!   series, torus [`Heatmap`]s (link utilization, cell busy-fraction),
//!   and host self-profiling, with the host-side fields strippable so
//!   the artifact is byte-reproducible across machines and thread
//!   counts (the `host_ms` precedent).
//! * [`HostProf`] — cheap wall-clock phase counters around the emulator
//!   event-loop hot path (pop/dispatch/batch-drain/wakeup), the baseline
//!   any PDES-parallelization work will be judged against.
//! * [`progress`] — rate-limited one-line live progress for `repro
//!   --progress`.
//!
//! Sampling is *deterministic in sim time*: tick `k` snapshots the
//! machine state after all events strictly before `k·interval` have been
//! handled (and none at or after it), so two runs of the same program
//! produce byte-identical series no matter the host, thread count, or
//! wall-clock jitter. Host profiling, by construction, only ever *reads*
//! the wall clock — it can never feed back into simulated time.

pub mod heatmap;
pub mod hostprof;
pub mod progress;
pub mod report;
pub mod series;

pub use heatmap::Heatmap;
pub use hostprof::{HostPhase, HostProf};
pub use progress::Progress;
pub use report::{
    check_metrics_schema, metrics_report, perfetto_counter_events, write_metrics_report, LinkUtil,
    RunMetrics, METRICS_SCHEMA, METRICS_SCHEMA_VERSION,
};
pub use series::{MetricsSample, MetricsSeries, Sampler};

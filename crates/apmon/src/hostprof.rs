//! Host-side self-profiling of the emulator event loop.
//!
//! Four phases cover the kernel's hot path: **pop** (event-queue pop),
//! **dispatch** (handling an event on the kernel thread), **drain**
//! (serving a cell's batched follow-up requests without a channel round
//! trip), and **wakeup** (a full resume-channel round trip to a cell
//! thread). To keep the overhead budget (≤5% wall-clock), only every
//! 64th event is timed; counts are always exact, nanosecond totals are
//! sampled and scaled at reporting time.
//!
//! Everything here reads the wall clock and nothing else — it cannot
//! influence simulated time, and its output is stripped from the
//! versioned metrics artifact (`host_*` fields, the `host_ms` precedent).

use aputil::Json;
use std::time::Instant;

/// One timed phase of the event loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostPhase {
    /// Popping the next event off the queue.
    Pop,
    /// Handling an event on the kernel thread.
    Dispatch,
    /// Draining a cell's batched requests (no channel round trip).
    Drain,
    /// A resume-channel round trip to a cell thread.
    Wakeup,
}

const NPHASES: usize = 4;

impl HostPhase {
    fn index(self) -> usize {
        match self {
            HostPhase::Pop => 0,
            HostPhase::Dispatch => 1,
            HostPhase::Drain => 2,
            HostPhase::Wakeup => 3,
        }
    }

    fn label(self) -> &'static str {
        match self {
            HostPhase::Pop => "pop",
            HostPhase::Dispatch => "dispatch",
            HostPhase::Drain => "drain",
            HostPhase::Wakeup => "wakeup",
        }
    }

    const ALL: [HostPhase; NPHASES] = [
        HostPhase::Pop,
        HostPhase::Dispatch,
        HostPhase::Drain,
        HostPhase::Wakeup,
    ];
}

/// Sampled wall-clock phase counters. `Default` is an idle profiler.
#[derive(Clone, Debug, Default)]
pub struct HostProf {
    /// Exact number of occurrences per phase (sampled or not).
    counts: [u64; NPHASES],
    /// Wall nanoseconds accumulated by the *sampled* occurrences only.
    sampled_ns: [u64; NPHASES],
    /// Sampled occurrences per phase.
    sampled: [u64; NPHASES],
    /// Wall clock at [`start`](Self::start).
    t0: Option<Instant>,
    /// Total wall nanoseconds between `start` and `stop`.
    wall_ns: u64,
}

impl HostProf {
    /// A fresh profiler with the run clock started.
    pub fn start() -> Self {
        HostProf {
            t0: Some(Instant::now()),
            ..HostProf::default()
        }
    }

    /// Stops the run clock.
    pub fn stop(&mut self) {
        if let Some(t0) = self.t0.take() {
            self.wall_ns = t0.elapsed().as_nanos() as u64;
        }
    }

    /// Counts one occurrence of `phase` without timing it.
    #[inline]
    pub fn count(&mut self, phase: HostPhase) {
        self.counts[phase.index()] += 1;
    }

    /// Counts one occurrence and records its sampled duration.
    #[inline]
    pub fn record(&mut self, phase: HostPhase, ns: u64) {
        let i = phase.index();
        self.counts[i] += 1;
        self.sampled[i] += 1;
        self.sampled_ns[i] += ns;
    }

    /// Estimated total nanoseconds in `phase`: mean sampled duration
    /// scaled to the exact count.
    pub fn estimated_ns(&self, phase: HostPhase) -> u64 {
        let i = phase.index();
        if self.sampled[i] == 0 {
            return 0;
        }
        (self.sampled_ns[i] as u128 * self.counts[i] as u128 / self.sampled[i] as u128) as u64
    }

    /// Exact occurrence count of `phase`.
    pub fn count_of(&self, phase: HostPhase) -> u64 {
        self.counts[phase.index()]
    }

    /// Total wall nanoseconds between `start` and `stop` (0 if never
    /// stopped).
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// `{host_wall_ms, host_phases: [{phase, count, est_ms}...]}`. All
    /// keys are `host_`-prefixed so report strippers can drop the whole
    /// block wholesale.
    pub fn to_json(&self) -> Json {
        let phases = HostPhase::ALL
            .iter()
            .map(|&p| {
                Json::obj(vec![
                    ("phase", Json::from(p.label())),
                    ("count", Json::U(self.count_of(p))),
                    ("est_ms", Json::F(self.estimated_ns(p) as f64 / 1e6)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("host_wall_ms", Json::F(self.wall_ns as f64 / 1e6)),
            ("host_phases", Json::Arr(phases)),
        ])
    }

    /// One-line human rendering for run summaries.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for &p in &HostPhase::ALL {
            parts.push(format!(
                "{} {}x ~{:.1}ms",
                p.label(),
                self.count_of(p),
                self.estimated_ns(p) as f64 / 1e6
            ));
        }
        format!(
            "host event-loop: wall {:.1}ms | {}",
            self.wall_ns as f64 / 1e6,
            parts.join(" | ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_sampled_durations_to_exact_counts() {
        let mut p = HostProf::start();
        // 100 dispatches, every 10th timed at 50ns.
        for i in 0..100u64 {
            if i % 10 == 0 {
                p.record(HostPhase::Dispatch, 50);
            } else {
                p.count(HostPhase::Dispatch);
            }
        }
        p.stop();
        assert_eq!(p.count_of(HostPhase::Dispatch), 100);
        assert_eq!(p.estimated_ns(HostPhase::Dispatch), 5000);
        assert_eq!(p.estimated_ns(HostPhase::Pop), 0);
        let j = p.to_json().to_string();
        assert!(j.contains("host_wall_ms") && j.contains("\"dispatch\""));
        assert!(p.render().contains("dispatch 100x"));
    }
}

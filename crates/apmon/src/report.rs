//! The versioned `ap1000plus.metrics` artifact and Perfetto counter
//! tracks.

use crate::heatmap::Heatmap;
use crate::hostprof::HostProf;
use crate::series::MetricsSeries;
use aputil::{Json, SimTime};
use std::path::Path;

/// Schema identifier stamped into every metrics artifact.
pub const METRICS_SCHEMA: &str = "ap1000plus.metrics";
/// Current schema version. Bump on breaking layout changes.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// End-of-run utilization of one directed torus link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkUtil {
    /// Transmitting cell.
    pub from: u32,
    /// Receiving neighbour.
    pub to: u32,
    /// Nanoseconds the link spent transmitting.
    pub busy_ns: u64,
}

/// Everything `apmon` measured about one run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// The sampled time series.
    pub series: MetricsSeries,
    /// Per-cell busy fraction (exec+rts+overhead over total), row-major
    /// on the torus. `None` when geometry is unknown.
    pub cell_busy: Option<Heatmap>,
    /// Per-cell T-net transmit utilization (outgoing link-busy fraction
    /// of total time), row-major on the torus.
    pub link_util: Option<Heatmap>,
    /// Per-directed-link busy time, sorted by `(from, to)`.
    pub links: Vec<LinkUtil>,
    /// Host self-profiling (stripped from the versioned artifact).
    pub host: Option<HostProf>,
    /// Final simulated time of the run.
    pub final_time: SimTime,
}

impl RunMetrics {
    /// The versioned artifact. `include_host` mirrors the bench report's
    /// `host_ms` rule: `false` strips every `host_*` field so the
    /// document is byte-identical across machines, runs and thread
    /// counts; `true` is for human-facing `--json` style output.
    pub fn to_json_with_host(&self, include_host: bool) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("schema".into(), Json::from(METRICS_SCHEMA)),
            ("version".into(), Json::from(METRICS_SCHEMA_VERSION)),
            ("final_time_ns".into(), Json::U(self.final_time.as_nanos())),
            ("series".into(), self.series.to_json()),
        ];
        if let Some(h) = &self.cell_busy {
            members.push(("cell_busy".into(), h.to_json()));
        }
        if let Some(h) = &self.link_util {
            members.push(("link_util".into(), h.to_json()));
        }
        members.push((
            "links".into(),
            Json::Arr(
                self.links
                    .iter()
                    .map(|l| {
                        Json::obj(vec![
                            ("from", Json::U(l.from as u64)),
                            ("to", Json::U(l.to as u64)),
                            ("busy_ns", Json::U(l.busy_ns)),
                        ])
                    })
                    .collect(),
            ),
        ));
        if include_host {
            if let Some(h) = &self.host {
                if let Json::Obj(fields) = h.to_json() {
                    members.extend(fields);
                }
            }
        }
        Json::Obj(members)
    }

    /// [`to_json_with_host`](Self::to_json_with_host)`(false)`.
    pub fn to_json(&self) -> Json {
        self.to_json_with_host(false)
    }
}

/// Validates that `doc` is an `ap1000plus.metrics` artifact at the
/// current version.
pub fn check_metrics_schema(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(METRICS_SCHEMA) => {}
        other => return Err(format!("not a {METRICS_SCHEMA} artifact ({other:?})")),
    }
    match doc.get("version").and_then(Json::as_u64) {
        Some(METRICS_SCHEMA_VERSION) => Ok(()),
        other => Err(format!(
            "metrics schema version {other:?}, expected {METRICS_SCHEMA_VERSION}"
        )),
    }
}

/// Writes one or more labeled runs as a single versioned document:
/// `{schema, version, runs: [{name, ...RunMetrics}]}`. Host fields are
/// stripped (the artifact is a byte-reproducibility surface).
pub fn write_metrics_report(path: &Path, runs: &[(String, &RunMetrics)]) -> std::io::Result<()> {
    std::fs::write(path, metrics_report(runs).to_string())
}

/// The document [`write_metrics_report`] serializes.
pub fn metrics_report(runs: &[(String, &RunMetrics)]) -> Json {
    Json::obj(vec![
        ("schema", Json::from(METRICS_SCHEMA)),
        ("version", Json::from(METRICS_SCHEMA_VERSION)),
        (
            "runs",
            Json::Arr(
                runs.iter()
                    .map(|(name, m)| {
                        let mut obj = vec![("name".to_string(), Json::Str(name.clone()))];
                        if let Json::Obj(fields) = m.to_json() {
                            // Skip the per-run schema stamp inside the
                            // multi-run envelope.
                            obj.extend(
                                fields
                                    .into_iter()
                                    .filter(|(k, _)| k != "schema" && k != "version"),
                            );
                        }
                        Json::Obj(obj)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Perfetto counter-track events (`"ph":"C"`) for the sampled series, one
/// track per counter column, mergeable into a Chrome-trace export. `pid`
/// selects the process the tracks appear under.
pub fn perfetto_counter_events(series: &MetricsSeries, pid: u64) -> Vec<Json> {
    // (track name, extractor) — gauges that read well as counter lanes.
    type Get = fn(&crate::series::MetricsSample) -> u64;
    let tracks: &[(&str, Get)] = &[
        ("puts_inflight", |s| s.puts_inflight as u64),
        ("gets_inflight", |s| s.gets_inflight as u64),
        ("cells_blocked", |s| s.cells_blocked as u64),
        ("barrier_waiting", |s| s.barrier_waiting as u64),
        ("queue_depth", |s| s.queue_depth),
        ("send_dma_busy", |s| s.send_dma_busy as u64),
        ("recv_dma_busy", |s| s.recv_dma_busy as u64),
        ("retries", |s| s.retries),
    ];
    let mut events = Vec::with_capacity(series.samples.len() * tracks.len() + 1);
    events.push(Json::obj([
        ("ph", Json::from("M")),
        ("pid", Json::from(pid)),
        ("name", Json::from("process_name")),
        ("args", Json::obj([("name", Json::from("apmon counters"))])),
    ]));
    for row in &series.samples {
        let ts = Json::F(row.t.as_nanos() as f64 / 1000.0);
        for (name, get) in tracks {
            events.push(Json::obj([
                ("ph", Json::from("C")),
                ("pid", Json::from(pid)),
                ("name", Json::from(*name)),
                ("ts", ts.clone()),
                ("args", Json::obj([("value", Json::from(get(row)))])),
            ]));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::MetricsSample;

    fn sample_metrics() -> RunMetrics {
        let mut m = RunMetrics {
            final_time: SimTime::from_nanos(500),
            ..RunMetrics::default()
        };
        m.series.interval = SimTime::from_nanos(100);
        m.series.samples.push(MetricsSample {
            t: SimTime::ZERO,
            puts_inflight: 2,
            ..MetricsSample::default()
        });
        m.links.push(LinkUtil {
            from: 0,
            to: 1,
            busy_ns: 42,
        });
        m.host = Some(HostProf::default());
        m
    }

    #[test]
    fn artifact_is_versioned_and_strips_host_fields() {
        let m = sample_metrics();
        let doc = m.to_json();
        check_metrics_schema(&doc).unwrap();
        let text = doc.to_string();
        assert!(
            !text.contains("host_"),
            "versioned artifact leaked host data"
        );
        let with_host = m.to_json_with_host(true).to_string();
        assert!(with_host.contains("host_wall_ms"));
        // Stripping host fields is exactly the difference.
        assert_ne!(text, with_host);
    }

    #[test]
    fn schema_check_rejects_imposters() {
        assert!(check_metrics_schema(&Json::obj([("schema", Json::from("x"))])).is_err());
        let wrong = Json::obj([
            ("schema", Json::from(METRICS_SCHEMA)),
            ("version", Json::from(99u64)),
        ]);
        assert!(check_metrics_schema(&wrong).is_err());
    }

    #[test]
    fn counter_events_are_perfetto_counters() {
        let m = sample_metrics();
        let evs = perfetto_counter_events(&m.series, 9);
        // 1 metadata + 8 tracks × 1 sample.
        assert_eq!(evs.len(), 9);
        let c = &evs[1];
        assert_eq!(c.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(c.get("pid").and_then(Json::as_u64), Some(9));
        assert!(c.get("args").and_then(|a| a.get("value")).is_some());
    }

    #[test]
    fn multi_run_report_embeds_runs_without_nested_schema() {
        let m = sample_metrics();
        let doc = metrics_report(&[("CG".to_string(), &m)]);
        check_metrics_schema(&doc).unwrap();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs[0].get("name").and_then(Json::as_str), Some("CG"));
        assert!(runs[0].get("series").is_some());
        assert!(runs[0].get("schema").is_none());
    }
}

//! Table-3 communication statistics.
//!
//! For each application, Table 3 of the paper reports per-PE averages of
//! SEND, scalar and vector global operations, barrier synchronizations,
//! PUT / stride-PUT / GET / stride-GET counts, and the average PUT/GET
//! message size *"without GET for acknowledge"*. [`AppStats::from_trace`]
//! computes exactly those columns from a recorded [`Trace`].

use crate::op::{Op, Trace};

/// One row of Table 3: per-PE averages for one application run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsRow {
    /// Number of processing elements in the run.
    pub pe: usize,
    /// Point-to-point SEND messages per PE.
    pub send: f64,
    /// Scalar global operations per PE.
    pub gop: f64,
    /// Vector global operations per PE.
    pub vgop: f64,
    /// Barrier synchronizations per PE.
    pub sync: f64,
    /// Contiguous PUTs per PE.
    pub put: f64,
    /// Stride PUTs per PE.
    pub puts: f64,
    /// Contiguous GETs per PE (acknowledge probes excluded).
    pub get: f64,
    /// Stride GETs per PE (acknowledge probes excluded).
    pub gets: f64,
    /// Average PUT/GET message length in bytes, excluding acknowledge GETs.
    pub msg_size: f64,
}

/// Absolute totals backing a [`StatsRow`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppStats {
    /// Number of PEs.
    pub pe: usize,
    /// Total SEND ops.
    pub send: u64,
    /// Total scalar global operations.
    pub gop: u64,
    /// Total vector global operations.
    pub vgop: u64,
    /// Total barriers (summed over PEs).
    pub sync: u64,
    /// Total contiguous PUTs.
    pub put: u64,
    /// Total stride PUTs.
    pub puts: u64,
    /// Total contiguous GETs (without ack probes).
    pub get: u64,
    /// Total stride GETs (without ack probes).
    pub gets: u64,
    /// Total acknowledge-probe GETs (tracked separately; §5.4 discusses
    /// their cost).
    pub ack_gets: u64,
    /// Total PUT/GET payload bytes (without ack probes).
    pub putget_bytes: u64,
    /// Total abstract computation (flops) across PEs.
    pub work_flops: u64,
    /// Total abstract RTS units across PEs.
    pub rts_units: u64,
}

impl AppStats {
    /// Scans a trace and accumulates the Table-3 counters.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut s = AppStats {
            pe: trace.ncells(),
            ..AppStats::default()
        };
        for (_, pe) in trace.iter() {
            for op in &pe.ops {
                match *op {
                    Op::Send { .. } => s.send += 1,
                    Op::MarkGopScalar => s.gop += 1,
                    Op::MarkGopVector => s.vgop += 1,
                    Op::Barrier => s.sync += 1,
                    Op::Put { bytes, stride, .. } => {
                        if stride {
                            s.puts += 1;
                        } else {
                            s.put += 1;
                        }
                        s.putget_bytes += bytes;
                    }
                    Op::Get {
                        bytes,
                        stride,
                        ack_probe,
                        ..
                    } => {
                        if ack_probe {
                            s.ack_gets += 1;
                        } else {
                            if stride {
                                s.gets += 1;
                            } else {
                                s.get += 1;
                            }
                            s.putget_bytes += bytes;
                        }
                    }
                    Op::Work { flops } => s.work_flops += flops,
                    Op::Rts { units } => s.rts_units += units,
                    Op::Recv { .. }
                    | Op::WaitFlag { .. }
                    | Op::Bcast { .. }
                    | Op::RegStore { .. }
                    | Op::RegLoad { .. }
                    | Op::RemoteStore { .. }
                    | Op::RemoteLoad { .. }
                    | Op::RemoteFence => {}
                }
            }
        }
        s
    }

    /// Converts the totals to the per-PE averages Table 3 prints.
    pub fn to_row(self) -> StatsRow {
        let n = self.pe.max(1) as f64;
        let putget_count = self.put + self.puts + self.get + self.gets;
        StatsRow {
            pe: self.pe,
            send: self.send as f64 / n,
            gop: self.gop as f64 / n,
            vgop: self.vgop as f64 / n,
            sync: self.sync as f64 / n,
            put: self.put as f64 / n,
            puts: self.puts as f64 / n,
            get: self.get as f64 / n,
            gets: self.gets as f64 / n,
            msg_size: if putget_count == 0 {
                0.0
            } else {
                self.putget_bytes as f64 / putget_count as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aputil::CellId;

    fn put(bytes: u64, stride: bool, ack: bool) -> Op {
        Op::Put {
            dst: CellId::new(0),
            bytes,
            stride,
            ack,
            send_flag: 0,
            recv_flag: 0,
        }
    }

    fn get(bytes: u64, stride: bool, ack_probe: bool) -> Op {
        Op::Get {
            src: CellId::new(0),
            bytes,
            stride,
            ack_probe,
            send_flag: 0,
            recv_flag: 0,
        }
    }

    #[test]
    fn counts_classify_put_get_and_exclude_ack_probes() {
        let mut t = Trace::new(2);
        for c in 0..2u32 {
            let pe = t.pe_mut(CellId::new(c));
            pe.push(put(100, false, true));
            pe.push(get(0, false, true)); // the ack probe for the put
            pe.push(put(200, true, false));
            pe.push(get(50, true, false));
            pe.push(Op::Barrier);
            pe.push(Op::MarkGopScalar);
            pe.push(Op::Send {
                dst: CellId::new(0),
                bytes: 8,
            });
            pe.push(Op::Work { flops: 10 });
        }
        let s = AppStats::from_trace(&t);
        assert_eq!(s.put, 2);
        assert_eq!(s.puts, 2);
        assert_eq!(s.get, 0);
        assert_eq!(s.gets, 2);
        assert_eq!(s.ack_gets, 2);
        assert_eq!(s.sync, 2);
        assert_eq!(s.gop, 2);
        assert_eq!(s.send, 2);
        assert_eq!(s.work_flops, 20);
        let row = s.to_row();
        assert_eq!(row.put, 1.0);
        assert_eq!(row.sync, 1.0);
        // (100+200+50)*2 bytes over 6 non-ack transfers
        assert!((row.msg_size - 700.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn cg_like_send_ratio() {
        // CG on 16 PEs: each vector Gop is a ring over all PEs, so each PE
        // does (P-1)/P sends per Gop on average... in our runtime each PE
        // sends exactly once per ring step it participates in. Check the
        // bookkeeping: 390 vgops, each PE sending 15/16 of the time gives
        // Table 3's 365.6.
        let mut t = Trace::new(16);
        for c in 0..16u32 {
            let pe = t.pe_mut(CellId::new(c));
            for g in 0..390 {
                pe.push(Op::MarkGopVector);
                // one PE per gop skips its send (ring closes)
                if g % 16 != c as u64 % 16 {
                    pe.push(Op::Send {
                        dst: CellId::new((c + 1) % 16),
                        bytes: 11200,
                    });
                }
            }
        }
        let row = AppStats::from_trace(&t).to_row();
        assert_eq!(row.vgop, 390.0);
        assert!((row.send - 365.625).abs() < 0.01, "send/PE = {}", row.send);
    }

    #[test]
    fn empty_trace_has_zero_msg_size() {
        let t = Trace::new(4);
        let row = AppStats::from_trace(&t).to_row();
        assert_eq!(row.msg_size, 0.0);
        assert_eq!(row.pe, 4);
    }
}

//! The `ap1000plus.evtrace` compact binary trace store (format v2).
//!
//! The JSON codecs ([`crate::json`], `apobs::chrome_trace`) are the right
//! interchange format for small machines, but at the 1024-cell paper
//! scale a timeline runs to millions of events and the textual forms are
//! an order of magnitude larger than the information they carry. This
//! module defines the binary on-disk format the record/replay subsystem
//! stores runs in:
//!
//! * a **magic + version** prefix so stale readers fail loudly,
//! * a **header** section naming the machine size and workload,
//! * any number of **event stream** sections holding delta/varint-encoded
//!   [`TimelineEvent`]s with an on-the-fly string table for names,
//! * an optional **ops** section with the binary-encoded probe
//!   [`Trace`] (what MLSim replays),
//! * an optional **counter ticks** section with delta-encoded sampled
//!   gauge series,
//! * an optional **fault** section carrying the injected schedule as RON
//!   text (so a recorded faulted run is self-contained),
//! * a mandatory **index** section (v2) listing every events section's
//!   byte offset, event count, and sim-time range,
//! * a mandatory **summary + end** trailer, whose absence is how a
//!   truncated file is detected, followed (v2) by a fixed 12-byte footer
//!   — the index section's offset as 8 LE bytes plus `XIDX` — so a
//!   seeking reader can jump straight to the index without scanning.
//!
//! v2 additionally resets the event-name string table at each events
//! section, making every section self-contained: [`EvTrace::decode_at`]
//! uses the footer index to decode only the sections that can contain
//! events at or before a seek time, skipping the rest of the file (and
//! the whole ops section) entirely. v1 files — no footer, file-global
//! string table — still decode, and `decode_at` falls back to the full
//! linear decode for them.
//!
//! Everything multi-byte is LEB128 varint (or zigzag svarint where deltas
//! go negative); there is no padding and no endianness to get wrong. The
//! full field-by-field wire format is specified in `DESIGN.md` §9.
//!
//! [`StreamWriter`] encodes incrementally against an [`std::io::Write`]
//! and implements [`apobs::EventSink`], so a >1024-cell machine can
//! stream its event soup straight to disk without ever materializing the
//! timeline ([`apobs::Recorder::streaming`]). Decoding is strict: every
//! length is validated against the remaining input, unknown tags and
//! malformed UTF-8 are structured [`EvError`]s, and no input — truncated,
//! bit-flipped, or hostile — panics the reader.
//!
//! # Examples
//!
//! ```
//! use aptrace::evtrace::{EvHeader, EvTrace, StreamWriter};
//! use apobs::{Bucket, TimelineEvent, Unit};
//! use aputil::SimTime;
//!
//! let ev = TimelineEvent {
//!     cell: 3,
//!     unit: Unit::Cpu,
//!     name: "work",
//!     start: SimTime::from_nanos(100),
//!     dur: Some(SimTime::from_nanos(40)),
//!     bucket: Bucket::Exec,
//!     arg: 7,
//!     tid: 0,
//! };
//! let mut buf = Vec::new();
//! let mut w = StreamWriter::new(&mut buf, "<mem>", &EvHeader::new(4, "demo", "test"));
//! w.write_events("emulator", std::slice::from_ref(&ev));
//! w.finish(140).unwrap();
//! let t = EvTrace::decode(&buf).unwrap();
//! assert_eq!(t.streams[0].events, vec![ev]);
//! assert_eq!(t.summary.total_ns, 140);
//! ```

use crate::op::{Op, PeTrace, Trace};
use apobs::{Bucket, TimelineEvent, Unit};
use aputil::{CellId, SimTime};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{Read, Write};
use std::sync::{Mutex, OnceLock};

/// File magic: seven ASCII bytes followed by the one-byte format version.
pub const MAGIC: [u8; 7] = *b"APEVTRC";
/// Newest format version this library reads and the one it writes.
pub const VERSION: u8 = 2;

/// Section tags. Every section starts with one of these bytes.
const SEC_HEADER: u8 = b'H';
const SEC_EVENTS: u8 = b'E';
const SEC_OPS: u8 = b'O';
const SEC_COUNTERS: u8 = b'C';
const SEC_FAULT: u8 = b'F';
const SEC_INDEX: u8 = b'X';
const SEC_SUMMARY: u8 = b'S';
const SEC_END: u8 = b'Z';

/// v2 footer: 8 LE bytes holding the [`SEC_INDEX`] tag's file offset,
/// then these four magic bytes. Fixed-width (the only non-varint encoding
/// in the format) so a seeking reader can find it from the file length.
const TRAILER_MAGIC: [u8; 4] = *b"XIDX";
/// Total footer length after the end marker.
const TRAILER_LEN: usize = 12;

/// A v2 writer closes the open `"live"` section and reopens it after this
/// many events, bounding how much a seeking reader must decode per
/// section (a 1024-cell paper run is ~3.6M events, so a handful of
/// sections).
const ROTATE_EVENTS: u64 = 1 << 20;

/// Event flags byte: unit in bits 0–2, bucket in bits 3–5, duration
/// present in bit 6, tid present in bit 7. `0xFF` would need unit index 7
/// (there are only 5), so it is reserved as the end-of-section marker.
const EVENTS_DONE: u8 = 0xFF;

/// A structured decode/encode failure. Never a panic: hostile bytes at
/// worst earn a [`EvError::Corrupt`] naming the offset.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvError {
    /// The file does not start with `APEVTRC`.
    BadMagic,
    /// The file's format version is newer than this reader.
    Version {
        /// Version byte found in the file.
        found: u8,
        /// Newest version this library supports.
        supported: u8,
    },
    /// The input ended mid-structure (a partial download, a full disk, a
    /// crashed recorder).
    Truncated {
        /// Byte offset at which input ran out.
        at: usize,
        /// What the decoder was reading.
        what: String,
    },
    /// The input is structurally invalid (bad tag, overlong varint,
    /// invalid UTF-8, out-of-range index, …).
    Corrupt {
        /// Byte offset of the offending structure.
        at: usize,
        /// What is wrong with it.
        what: String,
    },
    /// Well-formed trace followed by extra bytes.
    TrailingGarbage {
        /// Offset of the first byte past the end marker.
        at: usize,
        /// How many garbage bytes follow.
        extra: usize,
    },
    /// An underlying file operation failed.
    Io {
        /// Path involved.
        path: String,
        /// Rendered OS error.
        detail: String,
    },
}

impl fmt::Display for EvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvError::BadMagic => write!(f, "not an evtrace file (bad magic)"),
            EvError::Version { found, supported } => write!(
                f,
                "evtrace version {found} is newer than supported version {supported}"
            ),
            EvError::Truncated { at, what } => {
                write!(
                    f,
                    "truncated evtrace: input ended at byte {at} while reading {what}"
                )
            }
            EvError::Corrupt { at, what } => {
                write!(f, "corrupt evtrace at byte {at}: {what}")
            }
            EvError::TrailingGarbage { at, extra } => {
                write!(
                    f,
                    "{extra} trailing garbage byte(s) after evtrace end marker at byte {at}"
                )
            }
            EvError::Io { path, detail } => write!(f, "i/o error on {path}: {detail}"),
        }
    }
}

impl std::error::Error for EvError {}

// ---------------------------------------------------------------------------
// Primitives: LEB128 varints, zigzag svarints, length-prefixed strings.
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_svarint(out: &mut Vec<u8>, v: i64) {
    // Zigzag: small magnitudes of either sign stay small.
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over the input with offset-carrying structured errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn truncated(&self, what: &str) -> EvError {
        EvError::Truncated {
            at: self.pos,
            what: what.to_string(),
        }
    }

    fn corrupt(&self, what: impl Into<String>) -> EvError {
        EvError::Corrupt {
            at: self.pos,
            what: what.into(),
        }
    }

    fn byte(&mut self, what: &str) -> Result<u8, EvError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.truncated(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self, what: &str) -> Result<u64, EvError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte(what)?;
            if shift == 63 && b > 1 {
                return Err(self.corrupt(format!("varint overflow reading {what}")));
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.corrupt(format!("overlong varint reading {what}")));
            }
        }
    }

    fn svarint(&mut self, what: &str) -> Result<i64, EvError> {
        let z = self.varint(what)?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn string(&mut self, what: &str) -> Result<String, EvError> {
        let len = self.varint(what)? as usize;
        if len > self.remaining() {
            return Err(self.truncated(what));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
            .map_err(|_| self.corrupt(format!("invalid UTF-8 in {what}")))?
            .to_string();
        self.pos += len;
        Ok(s)
    }

    /// Guarded capacity hint: never pre-reserve more than what could
    /// plausibly fit in the remaining input, so a corrupted count cannot
    /// trigger an unbounded allocation.
    fn cap_hint(&self, claimed: u64) -> usize {
        (claimed as usize).min(self.remaining()).min(1 << 16)
    }
}

// ---------------------------------------------------------------------------
// Event-name interning: decoded names become &'static str. The vocabulary
// is the small fixed set of kernel/model event names, so leaking is
// bounded and each distinct name leaks once per process.
// ---------------------------------------------------------------------------

fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut pool = pool.lock().expect("intern pool poisoned");
    if let Some(&known) = pool.get(s) {
        return known;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// Decoded document model.
// ---------------------------------------------------------------------------

/// Header section: what machine and workload the trace records.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct EvHeader {
    /// Cells in the recorded machine.
    pub ncells: u32,
    /// Workload name (`"CG"`, `"FT"`, …; empty if unknown).
    pub app: String,
    /// Problem scale label (`"test"` / `"paper"`; empty if unknown).
    pub scale: String,
}

impl EvHeader {
    /// Convenience constructor.
    pub fn new(ncells: u32, app: &str, scale: &str) -> Self {
        EvHeader {
            ncells,
            app: app.to_string(),
            scale: scale.to_string(),
        }
    }
}

/// One recorded event stream (`"emulator"`, `"live"`, …).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct EvStream {
    /// Stream label.
    pub label: String,
    /// Events in recorded order.
    pub events: Vec<TimelineEvent>,
}

/// Sampled gauge series from the always-on telemetry layer.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CounterTicks {
    /// Sim-time nanoseconds between ticks.
    pub interval_ns: u64,
    /// `(series name, one value per tick)`; all series the same length.
    pub series: Vec<(String, Vec<u64>)>,
}

/// Trailer written when recording finished cleanly; its absence marks a
/// truncated file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct EvSummary {
    /// Final simulated time of the recorded run.
    pub total_ns: u64,
    /// Total events across all event sections.
    pub events: u64,
}

/// One entry of the v2 seek index: where an events section lives and
/// what span of sim-time it covers. Offsets point at the section's
/// [`SEC_EVENTS`] tag byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct EvIndexEntry {
    /// File offset of the section's tag byte.
    pub offset: u64,
    /// Events in the section.
    pub events: u64,
    /// Smallest event start timestamp in the section (0 if empty).
    pub first_ns: u64,
    /// Largest event start timestamp in the section (0 if empty).
    pub last_ns: u64,
}

/// A fully decoded `.evtrace` document.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct EvTrace {
    /// Machine/workload header.
    pub header: EvHeader,
    /// Event stream sections, in file order.
    pub streams: Vec<EvStream>,
    /// The probe-op trace, when recorded (what `mlsim` replays).
    pub ops: Option<Trace>,
    /// Sampled counter series, when telemetry was on.
    pub counters: Option<CounterTicks>,
    /// RON text of the injected fault schedule, when the run was faulted.
    pub fault_ron: Option<String>,
    /// Clean-finish trailer.
    pub summary: EvSummary,
}

impl EvTrace {
    /// All events across every stream, concatenated in file order.
    pub fn all_events(&self) -> Vec<TimelineEvent> {
        let mut out = Vec::with_capacity(self.streams.iter().map(|s| s.events.len()).sum());
        for s in &self.streams {
            out.extend(s.events.iter().cloned());
        }
        out
    }

    /// Decodes a complete in-memory document, rejecting truncation and
    /// trailing garbage. v2 files must carry a valid seek index whose
    /// entries agree with the events sections actually decoded.
    pub fn decode(bytes: &[u8]) -> Result<EvTrace, EvError> {
        let version = check_magic(bytes)?;
        let mut r = Reader::new(bytes);
        r.pos = MAGIC.len() + 1;
        let mut doc = EvTrace::default();
        let mut names: Vec<&'static str> = Vec::new();
        let mut saw_header = false;
        let mut saw_summary = false;
        // v2 integrity: the index section's claims are checked against
        // the sections the decoder actually walked.
        let mut index: Option<(usize, Vec<EvIndexEntry>)> = None;
        let mut walked: Vec<EvIndexEntry> = Vec::new();
        loop {
            let at = r.pos;
            let tag = r.byte("section tag")?;
            match tag {
                SEC_HEADER => {
                    doc.header = decode_header(&mut r, at)?;
                    saw_header = true;
                }
                SEC_EVENTS => {
                    let label = r.string("event stream label")?;
                    if version >= 2 {
                        // v2 sections are self-contained for seeking.
                        names.clear();
                    }
                    let events = decode_events(&mut r, &mut names)?;
                    walked.push(section_entry(at as u64, &events));
                    doc.streams.push(EvStream { label, events });
                }
                SEC_OPS => {
                    doc.ops = Some(decode_ops(&mut r)?);
                }
                SEC_COUNTERS => {
                    doc.counters = Some(decode_counters(&mut r)?);
                }
                SEC_FAULT => {
                    doc.fault_ron = Some(r.string("fault schedule RON")?);
                }
                SEC_INDEX => {
                    if version < 2 {
                        return Err(EvError::Corrupt {
                            at,
                            what: "index section in a v1 file".to_string(),
                        });
                    }
                    index = Some((at, decode_index(&mut r)?));
                }
                SEC_SUMMARY => {
                    doc.summary = EvSummary {
                        total_ns: r.varint("summary total_ns")?,
                        events: r.varint("summary event count")?,
                    };
                    saw_summary = true;
                }
                SEC_END => {
                    if !saw_header {
                        return Err(EvError::Corrupt {
                            at,
                            what: "end marker before any header section".to_string(),
                        });
                    }
                    if !saw_summary {
                        return Err(EvError::Corrupt {
                            at,
                            what: "end marker without a summary trailer (recording died mid-run?)"
                                .to_string(),
                        });
                    }
                    if version >= 2 {
                        let Some((index_at, entries)) = index else {
                            return Err(EvError::Corrupt {
                                at,
                                what: "v2 file without a seek index section".to_string(),
                            });
                        };
                        if r.remaining() < TRAILER_LEN {
                            return Err(r.truncated("index footer"));
                        }
                        check_trailer(&bytes[r.pos..r.pos + TRAILER_LEN], r.pos, index_at)?;
                        if r.remaining() > TRAILER_LEN {
                            return Err(EvError::TrailingGarbage {
                                at: r.pos + TRAILER_LEN,
                                extra: r.remaining() - TRAILER_LEN,
                            });
                        }
                        if entries != walked {
                            return Err(EvError::Corrupt {
                                at: index_at,
                                what: format!(
                                    "seek index disagrees with events sections \
                                     (index {entries:?}, decoded {walked:?})"
                                ),
                            });
                        }
                    } else if r.remaining() > 0 {
                        return Err(EvError::TrailingGarbage {
                            at: r.pos,
                            extra: r.remaining(),
                        });
                    }
                    let counted: u64 = doc.streams.iter().map(|s| s.events.len() as u64).sum();
                    if counted != doc.summary.events {
                        return Err(EvError::Corrupt {
                            at,
                            what: format!(
                                "summary declares {} events but sections hold {counted}",
                                doc.summary.events
                            ),
                        });
                    }
                    return Ok(doc);
                }
                other => {
                    return Err(EvError::Corrupt {
                        at,
                        what: format!("unknown section tag {other:#04x}"),
                    });
                }
            }
        }
    }

    /// Decodes only what a time-travel seek to `at_ns` needs: the
    /// header, the summary, and the events sections whose earliest
    /// timestamp is ≤ `at_ns` — located through the v2 footer index
    /// without scanning the file (the ops/counters/fault sections are
    /// skipped entirely). An event starting after `at_ns` cannot be
    /// in flight at it, so state reconstruction over the partial
    /// document matches the full decode. v1 files carry no index and
    /// fall back to the full linear [`EvTrace::decode`].
    pub fn decode_at(bytes: &[u8], at_ns: u64) -> Result<EvTrace, EvError> {
        if check_magic(bytes)? < 2 {
            return EvTrace::decode(bytes);
        }
        let (entries, summary) = read_footer(bytes)?;
        let mut doc = EvTrace {
            summary,
            ..EvTrace::default()
        };
        // The header is always the first section.
        let mut r = Reader::new(bytes);
        r.pos = MAGIC.len() + 1;
        let at = r.pos;
        if r.byte("section tag")? != SEC_HEADER {
            return Err(EvError::Corrupt {
                at,
                what: "first section is not the header".to_string(),
            });
        }
        doc.header = decode_header(&mut r, at)?;
        for e in entries
            .iter()
            .filter(|e| e.events > 0 && e.first_ns <= at_ns)
        {
            let pos = usize::try_from(e.offset)
                .ok()
                .filter(|&p| p < bytes.len())
                .ok_or(EvError::Corrupt {
                    at: bytes.len(),
                    what: format!("seek index offset {} outside the file", e.offset),
                })?;
            let mut r = Reader::new(bytes);
            r.pos = pos;
            if r.byte("indexed events section")? != SEC_EVENTS {
                return Err(EvError::Corrupt {
                    at: pos,
                    what: format!("seek index offset {pos} is not an events section"),
                });
            }
            let label = r.string("event stream label")?;
            let mut names = Vec::new();
            let events = decode_events(&mut r, &mut names)?;
            if events.len() as u64 != e.events {
                return Err(EvError::Corrupt {
                    at: pos,
                    what: format!(
                        "seek index promises {} events at offset {pos}, section holds {}",
                        e.events,
                        events.len()
                    ),
                });
            }
            doc.streams.push(EvStream { label, events });
        }
        Ok(doc)
    }

    /// Reads and decodes a file.
    pub fn read_file(path: &std::path::Path) -> Result<EvTrace, EvError> {
        EvTrace::decode(&read_bytes(path)?)
    }

    /// Reads a file through the seek fast path (see
    /// [`EvTrace::decode_at`]).
    pub fn read_file_at(path: &std::path::Path, at_ns: u64) -> Result<EvTrace, EvError> {
        EvTrace::decode_at(&read_bytes(path)?, at_ns)
    }
}

fn read_bytes(path: &std::path::Path) -> Result<Vec<u8>, EvError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| EvError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
    Ok(bytes)
}

/// Validates the magic prefix and returns the format version byte.
fn check_magic(bytes: &[u8]) -> Result<u8, EvError> {
    if bytes.len() < MAGIC.len() + 1 {
        return Err(if bytes.starts_with(&MAGIC[..bytes.len().min(7)]) {
            EvError::Truncated {
                at: bytes.len(),
                what: "magic".to_string(),
            }
        } else {
            EvError::BadMagic
        });
    }
    if bytes[..7] != MAGIC {
        return Err(EvError::BadMagic);
    }
    let version = bytes[7];
    if version > VERSION {
        return Err(EvError::Version {
            found: version,
            supported: VERSION,
        });
    }
    Ok(version)
}

fn decode_header(r: &mut Reader<'_>, at: usize) -> Result<EvHeader, EvError> {
    let ncells = r.varint("header ncells")?;
    let ncells = u32::try_from(ncells).map_err(|_| EvError::Corrupt {
        at,
        what: format!("header ncells {ncells} out of range"),
    })?;
    let app = r.string("header app name")?;
    let scale = r.string("header scale label")?;
    let reserved = r.varint("header reserved flags")?;
    if reserved != 0 {
        return Err(EvError::Corrupt {
            at,
            what: format!("reserved header flags {reserved:#x} set"),
        });
    }
    Ok(EvHeader { ncells, app, scale })
}

/// What the seek index should say about a decoded events section.
fn section_entry(offset: u64, events: &[TimelineEvent]) -> EvIndexEntry {
    EvIndexEntry {
        offset,
        events: events.len() as u64,
        first_ns: events.iter().map(|e| e.start.as_nanos()).min().unwrap_or(0),
        last_ns: events.iter().map(|e| e.start.as_nanos()).max().unwrap_or(0),
    }
}

fn decode_index(r: &mut Reader<'_>) -> Result<Vec<EvIndexEntry>, EvError> {
    let n = r.varint("index entry count")?;
    let mut entries: Vec<EvIndexEntry> = Vec::with_capacity(r.cap_hint(n));
    let mut prev = 0u64;
    for _ in 0..n {
        let offset = r.varint("index section offset")?;
        if offset <= prev {
            return Err(r.corrupt(format!(
                "index offsets not strictly increasing ({offset} after {prev})"
            )));
        }
        prev = offset;
        entries.push(EvIndexEntry {
            offset,
            events: r.varint("index event count")?,
            first_ns: r.varint("index first timestamp")?,
            last_ns: r.varint("index last timestamp")?,
        });
    }
    Ok(entries)
}

/// Validates the 12-byte footer at `pos` against the known index offset.
fn check_trailer(trailer: &[u8], pos: usize, index_at: usize) -> Result<(), EvError> {
    if trailer[8..12] != TRAILER_MAGIC {
        return Err(EvError::Corrupt {
            at: pos + 8,
            what: "index footer magic is not XIDX".to_string(),
        });
    }
    let off = u64::from_le_bytes(trailer[..8].try_into().expect("8-byte slice"));
    if off != index_at as u64 {
        return Err(EvError::Corrupt {
            at: pos,
            what: format!("index footer points at byte {off} but the index is at {index_at}"),
        });
    }
    Ok(())
}

/// Parses the v2 footer and seek index without touching the rest of the
/// file: trailer → index section → summary → end marker. Also the
/// public entry point for tools that only want the section map.
pub fn read_index(bytes: &[u8]) -> Result<Vec<EvIndexEntry>, EvError> {
    read_footer(bytes).map(|(entries, _)| entries)
}

fn read_footer(bytes: &[u8]) -> Result<(Vec<EvIndexEntry>, EvSummary), EvError> {
    let version = check_magic(bytes)?;
    if version < 2 {
        return Err(EvError::Corrupt {
            at: 7,
            what: format!("v{version} traces carry no seek index (use the full decode)"),
        });
    }
    if bytes.len() < MAGIC.len() + 1 + TRAILER_LEN {
        return Err(EvError::Truncated {
            at: bytes.len(),
            what: "index footer".to_string(),
        });
    }
    let tpos = bytes.len() - TRAILER_LEN;
    let trailer = &bytes[tpos..];
    if trailer[8..12] != TRAILER_MAGIC {
        return Err(EvError::Corrupt {
            at: tpos + 8,
            what: "index footer magic is not XIDX".to_string(),
        });
    }
    let off = u64::from_le_bytes(trailer[..8].try_into().expect("8-byte slice"));
    let pos = usize::try_from(off)
        .ok()
        .filter(|&p| p < tpos)
        .ok_or(EvError::Corrupt {
            at: tpos,
            what: format!("index footer offset {off} outside the file"),
        })?;
    let mut r = Reader::new(&bytes[..tpos]);
    r.pos = pos;
    if r.byte("index section tag")? != SEC_INDEX {
        return Err(EvError::Corrupt {
            at: pos,
            what: format!("index footer offset {pos} is not an index section"),
        });
    }
    let entries = decode_index(&mut r)?;
    if r.byte("summary section tag")? != SEC_SUMMARY {
        return Err(r.corrupt("index section is not followed by the summary"));
    }
    let summary = EvSummary {
        total_ns: r.varint("summary total_ns")?,
        events: r.varint("summary event count")?,
    };
    if r.byte("end marker")? != SEC_END || r.remaining() != 0 {
        return Err(r.corrupt("summary is not followed by the end marker and footer"));
    }
    Ok((entries, summary))
}

fn decode_events(
    r: &mut Reader<'_>,
    names: &mut Vec<&'static str>,
) -> Result<Vec<TimelineEvent>, EvError> {
    let mut events = Vec::new();
    let mut prev_cell = 0i64;
    let mut prev_start = 0i64;
    loop {
        let at = r.pos;
        let flags = r.byte("event flags")?;
        if flags == EVENTS_DONE {
            return Ok(events);
        }
        let unit_idx = (flags & 0x07) as usize;
        let bucket_idx = ((flags >> 3) & 0x07) as usize;
        if unit_idx >= Unit::ALL.len() || bucket_idx >= Bucket::ALL.len() {
            return Err(EvError::Corrupt {
                at,
                what: format!("event flags {flags:#04x} name no valid unit/bucket"),
            });
        }
        let name_idx = r.varint("event name index")? as usize;
        let name = match name_idx.cmp(&names.len()) {
            std::cmp::Ordering::Less => names[name_idx],
            std::cmp::Ordering::Equal => {
                let fresh = intern(&r.string("new event name")?);
                names.push(fresh);
                fresh
            }
            std::cmp::Ordering::Greater => {
                return Err(EvError::Corrupt {
                    at,
                    what: format!(
                        "event name index {name_idx} past string table of {}",
                        names.len()
                    ),
                });
            }
        };
        let cell = prev_cell + r.svarint("event cell delta")?;
        let cell = u32::try_from(cell).map_err(|_| EvError::Corrupt {
            at,
            what: format!("event cell {cell} out of range"),
        })?;
        prev_cell = cell as i64;
        let start = prev_start + r.svarint("event start delta")?;
        let start = u64::try_from(start).map_err(|_| EvError::Corrupt {
            at,
            what: format!("event start {start} ns out of range"),
        })?;
        prev_start = start as i64;
        let dur = if flags & 0x40 != 0 {
            Some(SimTime::from_nanos(r.varint("event duration")?))
        } else {
            None
        };
        let arg = r.varint("event arg")?;
        let tid = if flags & 0x80 != 0 {
            r.varint("event tid")?
        } else {
            0
        };
        events.push(TimelineEvent {
            cell,
            unit: Unit::ALL[unit_idx],
            name,
            start: SimTime::from_nanos(start),
            dur,
            bucket: Bucket::ALL[bucket_idx],
            arg,
            tid,
        });
    }
}

// ---------------------------------------------------------------------------
// Binary Op codec (the `O` section): one tag byte per op, varint fields,
// bools packed into a single byte.
// ---------------------------------------------------------------------------

fn encode_op(out: &mut Vec<u8>, op: &Op) {
    match *op {
        Op::Work { flops } => {
            out.push(0);
            put_varint(out, flops);
        }
        Op::Rts { units } => {
            out.push(1);
            put_varint(out, units);
        }
        Op::Put {
            dst,
            bytes,
            stride,
            ack,
            send_flag,
            recv_flag,
        } => {
            out.push(2);
            put_varint(out, dst.as_u32() as u64);
            put_varint(out, bytes);
            out.push(stride as u8 | (ack as u8) << 1);
            put_varint(out, send_flag);
            put_varint(out, recv_flag);
        }
        Op::Get {
            src,
            bytes,
            stride,
            ack_probe,
            send_flag,
            recv_flag,
        } => {
            out.push(3);
            put_varint(out, src.as_u32() as u64);
            put_varint(out, bytes);
            out.push(stride as u8 | (ack_probe as u8) << 1);
            put_varint(out, send_flag);
            put_varint(out, recv_flag);
        }
        Op::Send { dst, bytes } => {
            out.push(4);
            put_varint(out, dst.as_u32() as u64);
            put_varint(out, bytes);
        }
        Op::Recv { src, bytes } => {
            out.push(5);
            put_varint(out, src.as_u32() as u64);
            put_varint(out, bytes);
        }
        Op::WaitFlag { flag, target } => {
            out.push(6);
            put_varint(out, flag);
            put_varint(out, target as u64);
        }
        Op::Barrier => out.push(7),
        Op::Bcast { root, bytes } => {
            out.push(8);
            put_varint(out, root.as_u32() as u64);
            put_varint(out, bytes);
        }
        Op::RegStore { dst, reg } => {
            out.push(9);
            put_varint(out, dst.as_u32() as u64);
            put_varint(out, reg as u64);
        }
        Op::RegLoad { reg } => {
            out.push(10);
            put_varint(out, reg as u64);
        }
        Op::RemoteStore { dst, bytes } => {
            out.push(11);
            put_varint(out, dst.as_u32() as u64);
            put_varint(out, bytes);
        }
        Op::RemoteLoad { src, bytes } => {
            out.push(12);
            put_varint(out, src.as_u32() as u64);
            put_varint(out, bytes);
        }
        Op::RemoteFence => out.push(13),
        Op::MarkGopScalar => out.push(14),
        Op::MarkGopVector => out.push(15),
    }
}

fn read_cell(r: &mut Reader<'_>, what: &str) -> Result<CellId, EvError> {
    let v = r.varint(what)?;
    u32::try_from(v)
        .map(CellId::new)
        .map_err(|_| r.corrupt(format!("{what} {v} out of u32 range")))
}

fn decode_op(r: &mut Reader<'_>) -> Result<Op, EvError> {
    let at = r.pos;
    let tag = r.byte("op tag")?;
    let op = match tag {
        0 => Op::Work {
            flops: r.varint("work flops")?,
        },
        1 => Op::Rts {
            units: r.varint("rts units")?,
        },
        2 => {
            let dst = read_cell(r, "put dst")?;
            let bytes = r.varint("put bytes")?;
            let flags = r.byte("put flags")?;
            if flags > 3 {
                return Err(r.corrupt(format!("put flags {flags:#04x} have reserved bits set")));
            }
            Op::Put {
                dst,
                bytes,
                stride: flags & 1 != 0,
                ack: flags & 2 != 0,
                send_flag: r.varint("put send_flag")?,
                recv_flag: r.varint("put recv_flag")?,
            }
        }
        3 => {
            let src = read_cell(r, "get src")?;
            let bytes = r.varint("get bytes")?;
            let flags = r.byte("get flags")?;
            if flags > 3 {
                return Err(r.corrupt(format!("get flags {flags:#04x} have reserved bits set")));
            }
            Op::Get {
                src,
                bytes,
                stride: flags & 1 != 0,
                ack_probe: flags & 2 != 0,
                send_flag: r.varint("get send_flag")?,
                recv_flag: r.varint("get recv_flag")?,
            }
        }
        4 => Op::Send {
            dst: read_cell(r, "send dst")?,
            bytes: r.varint("send bytes")?,
        },
        5 => Op::Recv {
            src: read_cell(r, "recv src")?,
            bytes: r.varint("recv bytes")?,
        },
        6 => Op::WaitFlag {
            flag: r.varint("wait_flag flag")?,
            target: {
                let t = r.varint("wait_flag target")?;
                u32::try_from(t)
                    .map_err(|_| r.corrupt(format!("wait_flag target {t} out of u32 range")))?
            },
        },
        7 => Op::Barrier,
        8 => Op::Bcast {
            root: read_cell(r, "bcast root")?,
            bytes: r.varint("bcast bytes")?,
        },
        9 => Op::RegStore {
            dst: read_cell(r, "reg_store dst")?,
            reg: {
                let v = r.varint("reg_store reg")?;
                u16::try_from(v)
                    .map_err(|_| r.corrupt(format!("reg_store reg {v} out of u16 range")))?
            },
        },
        10 => Op::RegLoad {
            reg: {
                let v = r.varint("reg_load reg")?;
                u16::try_from(v)
                    .map_err(|_| r.corrupt(format!("reg_load reg {v} out of u16 range")))?
            },
        },
        11 => Op::RemoteStore {
            dst: read_cell(r, "remote_store dst")?,
            bytes: r.varint("remote_store bytes")?,
        },
        12 => Op::RemoteLoad {
            src: read_cell(r, "remote_load src")?,
            bytes: r.varint("remote_load bytes")?,
        },
        13 => Op::RemoteFence,
        14 => Op::MarkGopScalar,
        15 => Op::MarkGopVector,
        other => {
            return Err(EvError::Corrupt {
                at,
                what: format!("unknown op tag {other}"),
            });
        }
    };
    Ok(op)
}

fn encode_ops(out: &mut Vec<u8>, trace: &Trace) {
    out.push(SEC_OPS);
    put_varint(out, trace.ncells() as u64);
    for (_, pe) in trace.iter() {
        put_varint(out, pe.ops.len() as u64);
        for op in &pe.ops {
            encode_op(out, op);
        }
    }
}

fn decode_ops(r: &mut Reader<'_>) -> Result<Trace, EvError> {
    let ncells = r.varint("ops ncells")?;
    if ncells == 0 {
        return Err(r.corrupt("ops section declares zero cells"));
    }
    if ncells > u32::MAX as u64 {
        return Err(r.corrupt(format!("ops ncells {ncells} out of range")));
    }
    // Each cell costs at least one byte (its op count), so a huge ncells
    // on a short input is caught before any allocation proportional to it.
    if ncells as usize > r.remaining() + 1 {
        return Err(r.truncated("ops per-cell streams"));
    }
    let mut trace = Trace::new(ncells as usize);
    for i in 0..ncells {
        let nops = r.varint("op count")?;
        let pe = trace.pe_mut(CellId::new(i as u32));
        let mut ops = Vec::with_capacity(r.cap_hint(nops));
        for _ in 0..nops {
            ops.push(decode_op(r)?);
        }
        *pe = PeTrace { ops };
    }
    Ok(trace)
}

fn decode_counters(r: &mut Reader<'_>) -> Result<CounterTicks, EvError> {
    let interval_ns = r.varint("counter interval")?;
    let nseries = r.varint("counter series count")?;
    let mut series = Vec::with_capacity(r.cap_hint(nseries));
    for _ in 0..nseries {
        let name = r.string("counter series name")?;
        let n = r.varint("counter tick count")?;
        let mut vals = Vec::with_capacity(r.cap_hint(n));
        let mut prev = 0i64;
        for _ in 0..n {
            let v = prev + r.svarint("counter tick delta")?;
            let vu = u64::try_from(v)
                .map_err(|_| r.corrupt(format!("counter value {v} out of range")))?;
            prev = v;
            vals.push(vu);
        }
        series.push((name, vals));
    }
    Ok(CounterTicks {
        interval_ns,
        series,
    })
}

// ---------------------------------------------------------------------------
// Streaming writer.
// ---------------------------------------------------------------------------

/// Incremental `.evtrace` encoder over any [`std::io::Write`].
///
/// I/O errors are deferred: the hot event path never fails, and the first
/// error is surfaced (with the path) from [`StreamWriter::finish`]. As an
/// [`apobs::EventSink`] it opens a `"live"` events section on the first
/// streamed event, which is how >1024-cell machines record without an
/// in-memory timeline.
pub struct StreamWriter<W: Write> {
    w: W,
    path: String,
    buf: Vec<u8>,
    /// Per-section string table (name → index): v2 resets it at every
    /// events section so each section decodes in isolation.
    name_idx: HashMap<&'static str, u64>,
    names: usize,
    in_events: bool,
    prev_cell: i64,
    prev_start: i64,
    nevents: u64,
    bytes_written: u64,
    /// Seek index accumulated section by section, written before the
    /// summary and pointed at by the footer.
    index: Vec<EvIndexEntry>,
    sec_offset: u64,
    sec_events: u64,
    sec_first: u64,
    sec_last: u64,
    sec_label: String,
    err: Option<String>,
    finished: bool,
}

impl<W: Write> StreamWriter<W> {
    /// Starts a stream: writes the magic, version, and header.
    pub fn new(w: W, path: &str, header: &EvHeader) -> Self {
        let mut sw = StreamWriter {
            w,
            path: path.to_string(),
            buf: Vec::with_capacity(64 << 10),
            name_idx: HashMap::new(),
            names: 0,
            in_events: false,
            prev_cell: 0,
            prev_start: 0,
            nevents: 0,
            bytes_written: 0,
            index: Vec::new(),
            sec_offset: 0,
            sec_events: 0,
            sec_first: u64::MAX,
            sec_last: 0,
            sec_label: String::new(),
            err: None,
            finished: false,
        };
        sw.buf.extend_from_slice(&MAGIC);
        sw.buf.push(VERSION);
        sw.buf.push(SEC_HEADER);
        put_varint(&mut sw.buf, header.ncells as u64);
        put_str(&mut sw.buf, &header.app);
        put_str(&mut sw.buf, &header.scale);
        put_varint(&mut sw.buf, 0); // reserved flags
        sw
    }

    fn flush_buf(&mut self) {
        if self.err.is_some() {
            self.buf.clear();
            return;
        }
        if let Err(e) = self.w.write_all(&self.buf) {
            self.err = Some(e.to_string());
        }
        self.bytes_written += self.buf.len() as u64;
        self.buf.clear();
    }

    /// Opens an events section labelled `label` (closing any open one).
    pub fn begin_events(&mut self, label: &str) {
        self.end_events();
        self.sec_offset = self.bytes_written + self.buf.len() as u64;
        self.buf.push(SEC_EVENTS);
        put_str(&mut self.buf, label);
        self.in_events = true;
        self.name_idx.clear();
        self.prev_cell = 0;
        self.prev_start = 0;
        self.sec_events = 0;
        self.sec_first = u64::MAX;
        self.sec_last = 0;
        self.sec_label.clear();
        self.sec_label.push_str(label);
    }

    /// Closes the open events section, if any, recording its seek-index
    /// entry.
    pub fn end_events(&mut self) {
        if self.in_events {
            self.buf.push(EVENTS_DONE);
            self.in_events = false;
            self.index.push(EvIndexEntry {
                offset: self.sec_offset,
                events: self.sec_events,
                first_ns: if self.sec_events == 0 {
                    0
                } else {
                    self.sec_first
                },
                last_ns: self.sec_last,
            });
        }
    }

    /// Encodes one event into the open events section (opening a `"live"`
    /// section if none is open).
    pub fn push_event(&mut self, ev: &TimelineEvent) {
        if !self.in_events {
            self.begin_events("live");
        }
        let flags = ev.unit.index() as u8
            | (ev.bucket.index() as u8) << 3
            | if ev.dur.is_some() { 0x40 } else { 0 }
            | if ev.tid != 0 { 0x80 } else { 0 };
        self.buf.push(flags);
        let next = self.name_idx.len() as u64;
        match self.name_idx.entry(ev.name) {
            std::collections::hash_map::Entry::Occupied(e) => {
                put_varint(&mut self.buf, *e.get());
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                put_varint(&mut self.buf, next);
                put_str(&mut self.buf, ev.name);
                self.names += 1;
            }
        }
        put_svarint(&mut self.buf, ev.cell as i64 - self.prev_cell);
        self.prev_cell = ev.cell as i64;
        let start = ev.start.as_nanos() as i64;
        put_svarint(&mut self.buf, start - self.prev_start);
        self.prev_start = start;
        if let Some(d) = ev.dur {
            put_varint(&mut self.buf, d.as_nanos());
        }
        put_varint(&mut self.buf, ev.arg);
        if ev.tid != 0 {
            put_varint(&mut self.buf, ev.tid);
        }
        self.nevents += 1;
        self.sec_events += 1;
        self.sec_first = self.sec_first.min(start as u64);
        self.sec_last = self.sec_last.max(start as u64);
        if self.sec_events >= ROTATE_EVENTS {
            // Bound per-section decode work for seeking readers.
            let label = std::mem::take(&mut self.sec_label);
            self.end_events();
            self.begin_events(&label);
        }
        if self.buf.len() >= 48 << 10 {
            self.flush_buf();
        }
    }

    /// Writes a whole labelled events section.
    pub fn write_events(&mut self, label: &str, events: &[TimelineEvent]) {
        self.begin_events(label);
        for ev in events {
            self.push_event(ev);
        }
        self.end_events();
    }

    /// Appends the binary-encoded probe trace.
    pub fn append_ops(&mut self, trace: &Trace) {
        self.end_events();
        encode_ops(&mut self.buf, trace);
        self.flush_buf();
    }

    /// Appends delta-encoded sampled counter series.
    pub fn append_counters(&mut self, ticks: &CounterTicks) {
        self.end_events();
        self.buf.push(SEC_COUNTERS);
        put_varint(&mut self.buf, ticks.interval_ns);
        put_varint(&mut self.buf, ticks.series.len() as u64);
        for (name, vals) in &ticks.series {
            put_str(&mut self.buf, name);
            put_varint(&mut self.buf, vals.len() as u64);
            let mut prev = 0i64;
            for &v in vals {
                put_svarint(&mut self.buf, v as i64 - prev);
                prev = v as i64;
            }
        }
        self.flush_buf();
    }

    /// Appends the injected fault schedule as RON text.
    pub fn append_fault_ron(&mut self, ron: &str) {
        self.end_events();
        self.buf.push(SEC_FAULT);
        put_str(&mut self.buf, ron);
        self.flush_buf();
    }

    /// Events encoded so far.
    pub fn events_written(&self) -> u64 {
        self.nevents
    }

    /// Writes the seek index, summary, end marker, and footer, then
    /// flushes. Surfaces the first deferred I/O error; idempotent once
    /// successful.
    pub fn finish(&mut self, total_ns: u64) -> Result<(), EvError> {
        if self.finished {
            return Ok(());
        }
        self.end_events();
        let index_off = self.bytes_written + self.buf.len() as u64;
        self.buf.push(SEC_INDEX);
        put_varint(&mut self.buf, self.index.len() as u64);
        for e in &self.index {
            put_varint(&mut self.buf, e.offset);
            put_varint(&mut self.buf, e.events);
            put_varint(&mut self.buf, e.first_ns);
            put_varint(&mut self.buf, e.last_ns);
        }
        self.buf.push(SEC_SUMMARY);
        put_varint(&mut self.buf, total_ns);
        put_varint(&mut self.buf, self.nevents);
        self.buf.push(SEC_END);
        self.buf.extend_from_slice(&index_off.to_le_bytes());
        self.buf.extend_from_slice(&TRAILER_MAGIC);
        self.flush_buf();
        if self.err.is_none() {
            if let Err(e) = self.w.flush() {
                self.err = Some(e.to_string());
            }
        }
        match self.err.take() {
            Some(detail) => Err(EvError::Io {
                path: self.path.clone(),
                detail,
            }),
            None => {
                self.finished = true;
                Ok(())
            }
        }
    }
}

impl<W: Write + Send> apobs::EventSink for StreamWriter<W> {
    fn event(&mut self, ev: &TimelineEvent) {
        self.push_event(ev);
    }

    fn finish(&mut self) -> Result<(), String> {
        // Sink-level finish only drains buffers; the owning recorder
        // calls [`StreamWriter::finish`] with the final time to write the
        // trailer.
        self.end_events();
        self.flush_buf();
        match &self.err {
            Some(e) => Err(format!("i/o error on {}: {e}", self.path)),
            None => Ok(()),
        }
    }
}

/// Encodes a complete document in one call (tests, small traces).
pub fn encode(doc: &EvTrace) -> Vec<u8> {
    let mut out = Vec::new();
    let mut w = StreamWriter::new(&mut out, "<mem>", &doc.header);
    for s in &doc.streams {
        w.write_events(&s.label, &s.events);
    }
    if let Some(ops) = &doc.ops {
        w.append_ops(ops);
    }
    if let Some(c) = &doc.counters {
        w.append_counters(c);
    }
    if let Some(f) = &doc.fault_ron {
        w.append_fault_ron(f);
    }
    w.finish(doc.summary.total_ns)
        .expect("in-memory encode cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        cell: u32,
        unit: Unit,
        name: &'static str,
        start: u64,
        dur: Option<u64>,
    ) -> TimelineEvent {
        TimelineEvent {
            cell,
            unit,
            name,
            start: SimTime::from_nanos(start),
            dur: dur.map(SimTime::from_nanos),
            bucket: Bucket::Hw,
            arg: cell as u64 * 3,
            tid: cell as u64 % 2,
        }
    }

    fn sample() -> EvTrace {
        let mut ops = Trace::new(2);
        ops.pe_mut(CellId::new(0)).push(Op::Work { flops: 500 });
        ops.pe_mut(CellId::new(0)).push(Op::Put {
            dst: CellId::new(1),
            bytes: 4096,
            stride: true,
            ack: false,
            send_flag: 1,
            recv_flag: 2,
        });
        ops.pe_mut(CellId::new(1)).push(Op::Barrier);
        EvTrace {
            header: EvHeader::new(2, "CG", "test"),
            streams: vec![EvStream {
                label: "emulator".to_string(),
                events: vec![
                    ev(0, Unit::Cpu, "work", 0, Some(100)),
                    ev(1, Unit::Net, "hop", 40, None),
                    ev(0, Unit::SendDma, "send_dma", 120, Some(64)),
                ],
            }],
            ops: Some(ops),
            counters: Some(CounterTicks {
                interval_ns: 1000,
                series: vec![
                    ("queue_depth".to_string(), vec![0, 4, 2, 9]),
                    ("links_busy".to_string(), vec![3, 3, 0, 1]),
                ],
            }),
            fault_ron: Some("FaultSpec(seed: 7, events: [])".to_string()),
            summary: EvSummary {
                total_ns: 184,
                events: 3,
            },
        }
    }

    #[test]
    fn round_trips_every_section() {
        let doc = sample();
        let bytes = encode(&doc);
        let back = EvTrace::decode(&bytes).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn rejects_bad_magic_and_future_version() {
        assert_eq!(EvTrace::decode(b"NOTRACE\x01"), Err(EvError::BadMagic));
        let mut bytes = encode(&sample());
        bytes[7] = 9;
        assert_eq!(
            EvTrace::decode(&bytes),
            Err(EvError::Version {
                found: 9,
                supported: VERSION
            })
        );
        let msg = EvTrace::decode(&bytes).unwrap_err().to_string();
        assert!(
            msg.contains('9') && msg.contains(&VERSION.to_string()),
            "version error must name found and supported: {msg}"
        );
    }

    #[test]
    fn truncation_is_structured_at_every_length() {
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            let err = EvTrace::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    EvError::Truncated { .. } | EvError::Corrupt { .. } | EvError::BadMagic
                ),
                "prefix of {len} bytes gave unexpected {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&sample());
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            EvTrace::decode(&bytes),
            Err(EvError::TrailingGarbage { extra: 4, .. })
        ));
    }

    #[test]
    fn event_count_mismatch_is_corrupt() {
        // Tamper with a valid file's summary so it lies about the count.
        let mut bytes = encode(&sample());
        // The summary section sits just before the end marker and the
        // 12-byte footer: S varint(184) varint(3) Z <offset> XIDX.
        let z = bytes.len() - 1 - TRAILER_LEN;
        assert_eq!(bytes[z], SEC_END);
        assert_eq!(bytes[z - 1], 3, "summary event count byte");
        bytes[z - 1] = 2;
        let err = EvTrace::decode(&bytes).unwrap_err();
        assert!(
            matches!(&err, EvError::Corrupt { what, .. } if what.contains("declares 2 events")),
            "{err:?}"
        );
    }

    #[test]
    fn streaming_sink_mode_auto_opens_live_section() {
        let mut out = Vec::new();
        let mut w = StreamWriter::new(&mut out, "<mem>", &EvHeader::new(4, "", ""));
        {
            use apobs::EventSink;
            w.event(&ev(2, Unit::Queue, "enqueue", 10, None));
            w.event(&ev(2, Unit::Queue, "enqueue", 25, None));
            EventSink::finish(&mut w).unwrap();
        }
        w.finish(25).unwrap();
        let doc = EvTrace::decode(&out).unwrap();
        assert_eq!(doc.streams.len(), 1);
        assert_eq!(doc.streams[0].label, "live");
        assert_eq!(doc.streams[0].events.len(), 2);
        assert_eq!(doc.summary.events, 2);
    }

    #[test]
    fn huge_claimed_counts_do_not_allocate() {
        // An ops section claiming u32::MAX cells on a tiny input must be
        // rejected before allocating anything proportional to the claim.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(SEC_HEADER);
        put_varint(&mut bytes, 1);
        put_str(&mut bytes, "");
        put_str(&mut bytes, "");
        put_varint(&mut bytes, 0);
        bytes.push(SEC_OPS);
        put_varint(&mut bytes, u32::MAX as u64);
        let err = EvTrace::decode(&bytes).unwrap_err();
        assert!(
            matches!(err, EvError::Truncated { .. }),
            "claimed-count bomb must be a structured error: {err:?}"
        );
    }

    #[test]
    fn empty_streams_and_absent_sections_round_trip() {
        let doc = EvTrace {
            header: EvHeader::new(1, "", ""),
            streams: vec![EvStream {
                label: "emulator".to_string(),
                events: vec![],
            }],
            ..EvTrace::default()
        };
        let back = EvTrace::decode(&encode(&doc)).unwrap();
        assert_eq!(back, doc);
        assert!(back.ops.is_none() && back.counters.is_none() && back.fault_ron.is_none());
    }

    #[test]
    fn string_table_resets_per_section_for_seekability() {
        let mut doc = sample();
        doc.streams.push(EvStream {
            label: "tnet".to_string(),
            events: vec![ev(3, Unit::Net, "hop", 999, None)],
        });
        doc.summary.events = 4;
        let bytes = encode(&doc);
        let back = EvTrace::decode(&bytes).unwrap();
        assert_eq!(back, doc);
        // v2 stores "hop" once per section that uses it, so each section
        // decodes standalone (the price of O(1) seeking; v1 shared the
        // table file-wide and stored it once).
        let text_hops = bytes.windows(3).filter(|w| w == b"hop").count();
        assert_eq!(text_hops, 2);
    }

    /// Hand-built v1 bytes: file-global string table, no index, no
    /// footer. The reader must keep decoding archived traces.
    fn v1_sample_bytes() -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(1);
        bytes.push(SEC_HEADER);
        put_varint(&mut bytes, 2);
        put_str(&mut bytes, "CG");
        put_str(&mut bytes, "test");
        put_varint(&mut bytes, 0);
        // Section 1 introduces "work" (flags 0: Cpu/Hw, no dur, no tid).
        bytes.push(SEC_EVENTS);
        put_str(&mut bytes, "emulator");
        bytes.extend_from_slice(&[0x00, 0x00]); // flags, name idx 0 (new)
        put_str(&mut bytes, "work");
        bytes.extend_from_slice(&[0x00, 0x00, 0x00]); // cell Δ, start Δ, arg
        bytes.push(EVENTS_DONE);
        // Section 2 reuses index 0 WITHOUT the string: v1 sharing.
        bytes.push(SEC_EVENTS);
        put_str(&mut bytes, "tnet");
        bytes.extend_from_slice(&[0x00, 0x00, 0x02, 0x02, 0x00]);
        bytes.push(EVENTS_DONE);
        bytes.push(SEC_SUMMARY);
        put_varint(&mut bytes, 1);
        put_varint(&mut bytes, 2);
        bytes.push(SEC_END);
        bytes
    }

    #[test]
    fn v1_files_still_decode_with_a_shared_string_table() {
        let doc = EvTrace::decode(&v1_sample_bytes()).unwrap();
        assert_eq!(doc.header.app, "CG");
        assert_eq!(doc.streams.len(), 2);
        assert_eq!(doc.streams[0].events[0].name, "work");
        assert_eq!(
            doc.streams[1].events[0].name, "work",
            "v1 second section resolves the name from the shared table"
        );
        // No index → the seek path falls back to the full decode.
        assert!(matches!(
            read_index(&v1_sample_bytes()),
            Err(EvError::Corrupt { .. })
        ));
        let seeked = EvTrace::decode_at(&v1_sample_bytes(), 0).unwrap();
        assert_eq!(seeked, doc);
    }

    #[test]
    fn footer_index_locates_every_events_section() {
        let mut doc = sample();
        doc.streams.push(EvStream {
            label: "tnet".to_string(),
            events: vec![ev(3, Unit::Net, "hop", 999, None)],
        });
        doc.summary.events = 4;
        let bytes = encode(&doc);
        let index = read_index(&bytes).unwrap();
        assert_eq!(index.len(), 2);
        for (entry, stream) in index.iter().zip(&doc.streams) {
            assert_eq!(bytes[entry.offset as usize], SEC_EVENTS);
            assert_eq!(entry.events, stream.events.len() as u64);
            let starts: Vec<u64> = stream.events.iter().map(|e| e.start.as_nanos()).collect();
            assert_eq!(entry.first_ns, *starts.iter().min().unwrap());
            assert_eq!(entry.last_ns, *starts.iter().max().unwrap());
        }
    }

    #[test]
    fn decode_at_skips_sections_past_the_seek_time() {
        let mut doc = sample(); // one section, events at 0..=120
        doc.streams.push(EvStream {
            label: "late".to_string(),
            events: vec![ev(3, Unit::Net, "hop", 999, None)],
        });
        doc.summary.events = 4;
        let bytes = encode(&doc);
        let early = EvTrace::decode_at(&bytes, 500).unwrap();
        assert_eq!(early.header, doc.header);
        assert_eq!(early.summary, doc.summary);
        assert_eq!(early.streams.len(), 1, "late section skipped");
        assert_eq!(early.streams[0].events.len(), 3);
        assert!(early.ops.is_none(), "seek path never decodes ops");
        let late = EvTrace::decode_at(&bytes, 2000).unwrap();
        assert_eq!(late.streams.len(), 2);
        assert_eq!(late.all_events(), doc.all_events());
    }

    #[test]
    fn tampered_footer_or_index_is_rejected() {
        let good = encode(&sample());
        // Footer magic.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        assert!(matches!(
            EvTrace::decode(&bad),
            Err(EvError::Corrupt { .. })
        ));
        // Footer offset.
        let mut bad = good.clone();
        bad[n - TRAILER_LEN] ^= 0x01;
        assert!(EvTrace::decode(&bad).is_err());
        assert!(read_index(&bad).is_err());
        // An index lying about an event count is caught by the full
        // decode's cross-check (find the count byte via the real index).
        let idx_at = u64::from_le_bytes(good[n - TRAILER_LEN..n - 4].try_into().unwrap()) as usize;
        let mut bad = good.clone();
        // layout: X varint(count) then per-entry varints; entry 0 event
        // count is the second varint after the entry offset.
        assert_eq!(bad[idx_at], SEC_INDEX);
        let victim = idx_at + 1 /* tag */ + 1 /* count */ + 1 /* offset */;
        bad[victim] = bad[victim].wrapping_add(1);
        assert!(
            EvTrace::decode(&bad).is_err(),
            "index/section disagreement must not decode"
        );
    }

    #[test]
    fn long_live_sections_rotate_for_seekability() {
        let mut out = Vec::new();
        let mut w = StreamWriter::new(&mut out, "<mem>", &EvHeader::new(4, "", ""));
        let n = ROTATE_EVENTS + 5;
        for i in 0..n {
            w.push_event(&ev(0, Unit::Cpu, "work", i, None));
        }
        w.finish(n).unwrap();
        let index = read_index(&out).unwrap();
        assert_eq!(index.len(), 2, "section rotated at the event cap");
        assert_eq!(index[0].events, ROTATE_EVENTS);
        assert_eq!(index[1].events, 5);
        assert!(index[0].last_ns < index[1].first_ns);
        let doc = EvTrace::decode(&out).unwrap();
        assert_eq!(doc.summary.events, n);
        assert_eq!(doc.streams.len(), 2);
        assert_eq!(doc.streams[0].label, "live");
        assert_eq!(doc.streams[1].label, "live");
        // A seek into the first window decodes only that section.
        let seeked = EvTrace::decode_at(&out, 100).unwrap();
        assert_eq!(seeked.streams.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A small name vocabulary mirroring the kernel's: decoded names are
    /// interned `&'static str`, so the generator picks from statics.
    const NAMES: [&str; 8] = [
        "work",
        "rts",
        "barrier",
        "put_issue",
        "send_dma",
        "recv_dma",
        "enqueue",
        "hop",
    ];

    fn arb_event() -> BoxedStrategy<TimelineEvent> {
        (
            0u32..2048,
            0usize..Unit::ALL.len(),
            0usize..NAMES.len(),
            0u64..1_000_000_000,
            opt(0u64..1_000_000),
            0usize..Bucket::ALL.len(),
            any::<u64>(),
            0u64..1_000,
        )
            .prop_map(
                |(cell, unit, name, start, dur, bucket, arg, tid)| TimelineEvent {
                    cell,
                    unit: Unit::ALL[unit],
                    name: NAMES[name],
                    start: SimTime::from_nanos(start),
                    dur: dur.map(SimTime::from_nanos),
                    bucket: Bucket::ALL[bucket],
                    arg,
                    tid,
                },
            )
            .boxed()
    }

    fn arb_op() -> BoxedStrategy<Op> {
        prop_oneof![
            (0u64..1_000_000_000).prop_map(|flops| Op::Work { flops }),
            (0u64..1_000_000).prop_map(|units| Op::Rts { units }),
            (
                0u32..1024,
                0u64..1_000_000,
                any::<bool>(),
                any::<bool>(),
                0u64..64,
                0u64..64
            )
                .prop_map(|(dst, bytes, stride, ack, send_flag, recv_flag)| Op::Put {
                    dst: CellId::new(dst),
                    bytes,
                    stride,
                    ack,
                    send_flag,
                    recv_flag,
                }),
            (
                0u32..1024,
                0u64..1_000_000,
                any::<bool>(),
                any::<bool>(),
                0u64..64,
                0u64..64
            )
                .prop_map(|(src, bytes, stride, ack_probe, send_flag, recv_flag)| {
                    Op::Get {
                        src: CellId::new(src),
                        bytes,
                        stride,
                        ack_probe,
                        send_flag,
                        recv_flag,
                    }
                }),
            (0u32..1024, 0u64..1_000_000).prop_map(|(dst, bytes)| Op::Send {
                dst: CellId::new(dst),
                bytes
            }),
            (0u32..1024, 0u64..1_000_000).prop_map(|(src, bytes)| Op::Recv {
                src: CellId::new(src),
                bytes
            }),
            (0u64..64, 0u32..100).prop_map(|(flag, target)| Op::WaitFlag { flag, target }),
            Just(Op::Barrier),
            (0u32..1024, 0u64..1_000_000).prop_map(|(root, bytes)| Op::Bcast {
                root: CellId::new(root),
                bytes
            }),
            (0u32..1024, any::<u16>()).prop_map(|(dst, reg)| Op::RegStore {
                dst: CellId::new(dst),
                reg
            }),
            any::<u16>().prop_map(|reg| Op::RegLoad { reg }),
            (0u32..1024, 0u64..1_000_000).prop_map(|(dst, bytes)| Op::RemoteStore {
                dst: CellId::new(dst),
                bytes
            }),
            (0u32..1024, 0u64..1_000_000).prop_map(|(src, bytes)| Op::RemoteLoad {
                src: CellId::new(src),
                bytes
            }),
            Just(Op::RemoteFence),
            Just(Op::MarkGopScalar),
            Just(Op::MarkGopVector),
        ]
        .boxed()
    }

    /// `Option` strategy (the offline shim has no `proptest::option`).
    fn opt<S>(s: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: Clone + std::fmt::Debug + 'static,
    {
        (any::<bool>(), s)
            .prop_map(|(some, v)| some.then_some(v))
            .boxed()
    }

    fn arb_doc() -> BoxedStrategy<EvTrace> {
        (
            1u32..64,
            proptest::collection::vec(proptest::collection::vec(arb_event(), 0..40), 0..3),
            opt(proptest::collection::vec(
                proptest::collection::vec(arb_op(), 0..10),
                1..5,
            )),
            opt((
                1u64..100_000,
                proptest::collection::vec(
                    (0usize..6, proptest::collection::vec(0u64..1_000_000, 0..20)),
                    0..4,
                ),
            )),
            opt(0u64..1_000_000),
            0u64..10_000_000_000,
        )
            .prop_map(|(ncells, streams, ops, counters, fault_ron, total_ns)| {
                let streams: Vec<EvStream> = streams
                    .into_iter()
                    .enumerate()
                    .map(|(i, events)| EvStream {
                        label: format!("stream{i}"),
                        events,
                    })
                    .collect();
                let events = streams.iter().map(|s| s.events.len() as u64).sum();
                let ops = ops.map(|pes| {
                    let mut t = Trace::new(pes.len());
                    for (i, cell_ops) in pes.into_iter().enumerate() {
                        for op in cell_ops {
                            t.pe_mut(CellId::new(i as u32)).push(op);
                        }
                    }
                    t
                });
                EvTrace {
                    header: EvHeader::new(ncells, "fuzz", "test"),
                    streams,
                    ops,
                    counters: counters.map(|(interval_ns, series)| CounterTicks {
                        interval_ns,
                        series: series
                            .into_iter()
                            .map(|(i, vals)| (format!("series_{i}"), vals))
                            .collect(),
                    }),
                    fault_ron: fault_ron.map(|seed| format!("FaultSpec(seed: {seed})")),
                    summary: EvSummary { total_ns, events },
                }
            })
            .boxed()
    }

    proptest! {
        /// Arbitrary documents survive a binary round trip bit-exactly.
        #[test]
        fn doc_round_trips(doc in arb_doc()) {
            let bytes = encode(&doc);
            let back = EvTrace::decode(&bytes).unwrap();
            prop_assert_eq!(back, doc);
        }

        /// The binary ops section and the JSON codec agree: the same
        /// random trace round-trips identically through both, so the two
        /// interchange formats can never drift apart silently.
        #[test]
        fn ops_agree_with_json_codec(
            pes in proptest::collection::vec(
                proptest::collection::vec(arb_op(), 0..12),
                1..6,
            )
        ) {
            let mut t = Trace::new(pes.len());
            for (i, ops) in pes.into_iter().enumerate() {
                for op in ops {
                    t.pe_mut(CellId::new(i as u32)).push(op);
                }
            }
            let doc = EvTrace {
                header: EvHeader::new(t.ncells() as u32, "x", "test"),
                ops: Some(t.clone()),
                ..EvTrace::default()
            };
            let via_binary = EvTrace::decode(&encode(&doc)).unwrap().ops.unwrap();
            let via_json = Trace::from_json_str(&t.to_json_string()).unwrap();
            prop_assert_eq!(&via_binary, &via_json);
            prop_assert_eq!(&via_binary, &t);
        }

        /// Every truncation of a valid file is a structured error.
        #[test]
        fn truncation_never_panics(doc in arb_doc(), cut in 0.0f64..1.0) {
            let bytes = encode(&doc);
            let len = (bytes.len() as f64 * cut) as usize;
            prop_assert!(EvTrace::decode(&bytes[..len.min(bytes.len().saturating_sub(1))]).is_err());
        }

        /// Bit-flipping any byte of a valid file either still decodes (the
        /// flip hit a value field) or fails with a structured error —
        /// never a panic, never an unbounded allocation.
        #[test]
        fn bit_flips_never_panic(doc in arb_doc(), pos in any::<u64>(), bit in 0u8..8) {
            let mut bytes = encode(&doc);
            let i = (pos % bytes.len() as u64) as usize;
            bytes[i] ^= 1 << bit;
            let _ = EvTrace::decode(&bytes); // must return, Ok or Err
        }

        /// Random byte soup (with and without a valid magic prefix) never
        /// panics the decoder.
        #[test]
        fn random_bytes_never_panic(mut bytes in proptest::collection::vec(any::<u8>(), 0..400), magic in any::<bool>()) {
            if magic && bytes.len() >= 8 {
                bytes[..7].copy_from_slice(&MAGIC);
                bytes[7] = VERSION;
            }
            let _ = EvTrace::decode(&bytes);
        }
    }
}

//! Probe traces and communication statistics.
//!
//! The paper's methodology (§5) is *trace-driven* simulation: real
//! application runs are instrumented with probes "at entries and exits of
//! the communication and synchronization library", and MLSim replays the
//! recorded events under different machine parameter sets. This crate
//! defines the trace format produced by the `apcore` runtime's probes and
//! consumed by `mlsim`, plus the statistics that regenerate **Table 3**
//! (SEND / Gop / V Gop / Sync / PUT / PUTS / GET / GETS per PE and average
//! message size).

pub mod evtrace;
pub mod json;
pub mod op;
pub mod stats;

pub use evtrace::{
    read_index, CounterTicks, EvError, EvHeader, EvIndexEntry, EvStream, EvSummary, EvTrace,
    StreamWriter,
};
pub use op::{Op, OpCounts, PeTrace, Trace};
pub use stats::{AppStats, StatsRow};

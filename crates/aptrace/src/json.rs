//! Versioned JSON serialization of [`Trace`]s.
//!
//! Traces are the interchange artifact between the `apcore` emulator (which
//! records them) and `mlsim` (which replays them under different machine
//! parameters), so the on-disk format carries an explicit header:
//!
//! ```json
//! {"format": "aptrace", "version": 1, "ncells": 2, "pes": [[...], [...]]}
//! ```
//!
//! [`Trace::from_json_str`] rejects documents whose `format` tag is wrong
//! or whose `version` is newer than this library understands, so a trace
//! written by a future revision fails loudly instead of replaying garbage.
//!
//! # Examples
//!
//! ```
//! use aptrace::{Op, Trace};
//! use aputil::CellId;
//!
//! let mut t = Trace::new(2);
//! t.pe_mut(CellId::new(0)).push(Op::Work { flops: 42 });
//! t.pe_mut(CellId::new(1)).push(Op::Barrier);
//! let text = t.to_json_string();
//! assert_eq!(Trace::from_json_str(&text).unwrap(), t);
//! ```

use crate::op::{Op, PeTrace, Trace};
use aputil::{CellId, Json};

/// Format tag in the trace header.
pub const FORMAT: &str = "aptrace";
/// Newest trace format version this library reads and the one it writes.
pub const VERSION: u64 = 1;

impl Op {
    /// Encodes one operation as a tagged JSON object.
    pub fn to_json(&self) -> Json {
        match *self {
            Op::Work { flops } => Json::obj([("op", Json::from("work")), ("flops", flops.into())]),
            Op::Rts { units } => Json::obj([("op", Json::from("rts")), ("units", units.into())]),
            Op::Put {
                dst,
                bytes,
                stride,
                ack,
                send_flag,
                recv_flag,
            } => Json::obj([
                ("op", Json::from("put")),
                ("dst", dst.as_u32().into()),
                ("bytes", bytes.into()),
                ("stride", stride.into()),
                ("ack", ack.into()),
                ("send_flag", send_flag.into()),
                ("recv_flag", recv_flag.into()),
            ]),
            Op::Get {
                src,
                bytes,
                stride,
                ack_probe,
                send_flag,
                recv_flag,
            } => Json::obj([
                ("op", Json::from("get")),
                ("src", src.as_u32().into()),
                ("bytes", bytes.into()),
                ("stride", stride.into()),
                ("ack_probe", ack_probe.into()),
                ("send_flag", send_flag.into()),
                ("recv_flag", recv_flag.into()),
            ]),
            Op::Send { dst, bytes } => Json::obj([
                ("op", Json::from("send")),
                ("dst", dst.as_u32().into()),
                ("bytes", bytes.into()),
            ]),
            Op::Recv { src, bytes } => Json::obj([
                ("op", Json::from("recv")),
                ("src", src.as_u32().into()),
                ("bytes", bytes.into()),
            ]),
            Op::WaitFlag { flag, target } => Json::obj([
                ("op", Json::from("wait_flag")),
                ("flag", flag.into()),
                ("target", Json::from(target as u64)),
            ]),
            Op::Barrier => Json::obj([("op", Json::from("barrier"))]),
            Op::Bcast { root, bytes } => Json::obj([
                ("op", Json::from("bcast")),
                ("root", root.as_u32().into()),
                ("bytes", bytes.into()),
            ]),
            Op::RegStore { dst, reg } => Json::obj([
                ("op", Json::from("reg_store")),
                ("dst", dst.as_u32().into()),
                ("reg", Json::from(reg as u64)),
            ]),
            Op::RegLoad { reg } => Json::obj([
                ("op", Json::from("reg_load")),
                ("reg", Json::from(reg as u64)),
            ]),
            Op::RemoteStore { dst, bytes } => Json::obj([
                ("op", Json::from("remote_store")),
                ("dst", dst.as_u32().into()),
                ("bytes", bytes.into()),
            ]),
            Op::RemoteLoad { src, bytes } => Json::obj([
                ("op", Json::from("remote_load")),
                ("src", src.as_u32().into()),
                ("bytes", bytes.into()),
            ]),
            Op::RemoteFence => Json::obj([("op", Json::from("remote_fence"))]),
            Op::MarkGopScalar => Json::obj([("op", Json::from("mark_gop_scalar"))]),
            Op::MarkGopVector => Json::obj([("op", Json::from("mark_gop_vector"))]),
        }
    }

    /// Decodes one operation from its tagged JSON object.
    pub fn from_json(j: &Json) -> Result<Op, String> {
        let tag = j
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("op object missing \"op\" tag: {j}"))?;
        let op = match tag {
            "work" => Op::Work {
                flops: field_u64(j, "flops")?,
            },
            "rts" => Op::Rts {
                units: field_u64(j, "units")?,
            },
            "put" => Op::Put {
                dst: field_cell(j, "dst")?,
                bytes: field_u64(j, "bytes")?,
                stride: field_bool(j, "stride")?,
                ack: field_bool(j, "ack")?,
                send_flag: field_u64(j, "send_flag")?,
                recv_flag: field_u64(j, "recv_flag")?,
            },
            "get" => Op::Get {
                src: field_cell(j, "src")?,
                bytes: field_u64(j, "bytes")?,
                stride: field_bool(j, "stride")?,
                ack_probe: field_bool(j, "ack_probe")?,
                send_flag: field_u64(j, "send_flag")?,
                recv_flag: field_u64(j, "recv_flag")?,
            },
            "send" => Op::Send {
                dst: field_cell(j, "dst")?,
                bytes: field_u64(j, "bytes")?,
            },
            "recv" => Op::Recv {
                src: field_cell(j, "src")?,
                bytes: field_u64(j, "bytes")?,
            },
            "wait_flag" => Op::WaitFlag {
                flag: field_u64(j, "flag")?,
                target: field_u32(j, "target")?,
            },
            "barrier" => Op::Barrier,
            "bcast" => Op::Bcast {
                root: field_cell(j, "root")?,
                bytes: field_u64(j, "bytes")?,
            },
            "reg_store" => Op::RegStore {
                dst: field_cell(j, "dst")?,
                reg: field_u16(j, "reg")?,
            },
            "reg_load" => Op::RegLoad {
                reg: field_u16(j, "reg")?,
            },
            "remote_store" => Op::RemoteStore {
                dst: field_cell(j, "dst")?,
                bytes: field_u64(j, "bytes")?,
            },
            "remote_load" => Op::RemoteLoad {
                src: field_cell(j, "src")?,
                bytes: field_u64(j, "bytes")?,
            },
            "remote_fence" => Op::RemoteFence,
            "mark_gop_scalar" => Op::MarkGopScalar,
            "mark_gop_vector" => Op::MarkGopVector,
            other => return Err(format!("unknown op tag {other:?}")),
        };
        Ok(op)
    }
}

fn field_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_u32(j: &Json, key: &str) -> Result<u32, String> {
    let v = field_u64(j, key)?;
    u32::try_from(v).map_err(|_| format!("field {key:?} = {v} out of u32 range"))
}

fn field_u16(j: &Json, key: &str) -> Result<u16, String> {
    let v = field_u64(j, key)?;
    u16::try_from(v).map_err(|_| format!("field {key:?} = {v} out of u16 range"))
}

fn field_bool(j: &Json, key: &str) -> Result<bool, String> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or non-bool field {key:?}"))
}

fn field_cell(j: &Json, key: &str) -> Result<CellId, String> {
    field_u32(j, key).map(CellId::new)
}

impl Trace {
    /// Encodes the whole trace, header included.
    pub fn to_json(&self) -> Json {
        let pes: Vec<Json> = self
            .iter()
            .map(|(_, pe)| Json::Arr(pe.ops.iter().map(Op::to_json).collect()))
            .collect();
        Json::obj([
            ("format", Json::from(FORMAT)),
            ("version", Json::from(VERSION)),
            ("ncells", Json::from(self.ncells() as u64)),
            ("pes", Json::Arr(pes)),
        ])
    }

    /// The compact textual form of [`Trace::to_json`].
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Decodes a trace, validating the header.
    pub fn from_json(j: &Json) -> Result<Trace, String> {
        match j.get("format").and_then(Json::as_str) {
            Some(FORMAT) => {}
            Some(other) => return Err(format!("not an aptrace document (format {other:?})")),
            None => return Err("missing \"format\" header".to_string()),
        }
        let version = field_u64(j, "version")?;
        if version > VERSION {
            // Same shape as the binary codec's `EvError::Version` message:
            // always name both the version found and the newest supported.
            return Err(format!(
                "aptrace version {version} is newer than supported version {VERSION}"
            ));
        }
        let ncells = field_u64(j, "ncells")? as usize;
        if ncells == 0 {
            return Err("trace header declares zero cells".to_string());
        }
        let pes = j
            .get("pes")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing \"pes\" array".to_string())?;
        if pes.len() != ncells {
            return Err(format!(
                "header says {ncells} cells but \"pes\" has {} entries",
                pes.len()
            ));
        }
        let mut trace = Trace::new(ncells);
        for (i, pe) in pes.iter().enumerate() {
            let ops = pe
                .as_arr()
                .ok_or_else(|| format!("pe {i} is not an array"))?;
            let decoded: Result<Vec<Op>, String> = ops.iter().map(Op::from_json).collect();
            *trace.pe_mut(CellId::new(i as u32)) = PeTrace { ops: decoded? };
        }
        Ok(trace)
    }

    /// Parses the textual form produced by [`Trace::to_json_string`].
    ///
    /// The *entire* input must be one trace document: trailing bytes
    /// after the closing brace (a concatenated second document, shell
    /// redirection junk, a partially-overwritten file) are an error, not
    /// silently ignored.
    pub fn from_json_str(text: &str) -> Result<Trace, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        Trace::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(2);
        let pe0 = t.pe_mut(CellId::new(0));
        pe0.push(Op::Work { flops: 1000 });
        pe0.push(Op::Put {
            dst: CellId::new(1),
            bytes: 8192,
            stride: true,
            ack: false,
            send_flag: 3,
            recv_flag: 4,
        });
        pe0.push(Op::WaitFlag { flag: 3, target: 1 });
        pe0.push(Op::Barrier);
        let pe1 = t.pe_mut(CellId::new(1));
        pe1.push(Op::RegStore {
            dst: CellId::new(0),
            reg: 65535,
        });
        pe1.push(Op::RemoteFence);
        pe1.push(Op::Barrier);
        t
    }

    #[test]
    fn header_fields_present() {
        let j = sample_trace().to_json();
        assert_eq!(j.get("format").and_then(Json::as_str), Some(FORMAT));
        assert_eq!(j.get("version").and_then(Json::as_u64), Some(VERSION));
        assert_eq!(j.get("ncells").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn round_trip_preserves_trace() {
        let t = sample_trace();
        let back = Trace::from_json_str(&t.to_json_string()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_wrong_format_and_newer_version() {
        let err = Trace::from_json_str(r#"{"format":"other","version":1}"#).unwrap_err();
        assert!(err.contains("not an aptrace document"), "{err}");
        let err =
            Trace::from_json_str(r#"{"format":"aptrace","version":999,"ncells":1,"pes":[[]]}"#)
                .unwrap_err();
        // The refusal names both the found and the supported version,
        // matching the binary codec's error style.
        assert!(
            err.contains("999") && err.contains("supported version 1"),
            "{err}"
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut text = sample_trace().to_json_string();
        text.push_str("garbage");
        let err = Trace::from_json_str(&text).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
        // A second concatenated document is garbage too.
        let doubled = format!(
            "{}{}",
            sample_trace().to_json_string(),
            sample_trace().to_json_string()
        );
        assert!(Trace::from_json_str(&doubled).is_err());
        // Trailing whitespace alone stays fine.
        let padded = format!("{} \n\t", sample_trace().to_json_string());
        assert!(Trace::from_json_str(&padded).is_ok());
    }

    #[test]
    fn rejects_cell_count_mismatch() {
        let err = Trace::from_json_str(r#"{"format":"aptrace","version":1,"ncells":2,"pes":[[]]}"#)
            .unwrap_err();
        assert!(err.contains("2 cells"), "{err}");
    }

    #[test]
    fn rejects_unknown_op() {
        let text = r#"{"format":"aptrace","version":1,"ncells":1,"pes":[[{"op":"warp"}]]}"#;
        let err = Trace::from_json_str(text).unwrap_err();
        assert!(err.contains("unknown op tag"), "{err}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_cell() -> BoxedStrategy<CellId> {
        (0u32..1024).prop_map(CellId::new).boxed()
    }

    fn arb_op() -> BoxedStrategy<Op> {
        prop_oneof![
            (0u64..1_000_000_000).prop_map(|flops| Op::Work { flops }),
            (0u64..1_000_000).prop_map(|units| Op::Rts { units }),
            (
                arb_cell(),
                0u64..1_000_000,
                any::<bool>(),
                any::<bool>(),
                0u64..64,
                0u64..64
            )
                .prop_map(|(dst, bytes, stride, ack, send_flag, recv_flag)| {
                    Op::Put {
                        dst,
                        bytes,
                        stride,
                        ack,
                        send_flag,
                        recv_flag,
                    }
                }),
            (
                arb_cell(),
                0u64..1_000_000,
                any::<bool>(),
                any::<bool>(),
                0u64..64,
                0u64..64
            )
                .prop_map(|(src, bytes, stride, ack_probe, send_flag, recv_flag)| {
                    Op::Get {
                        src,
                        bytes,
                        stride,
                        ack_probe,
                        send_flag,
                        recv_flag,
                    }
                }),
            (arb_cell(), 0u64..1_000_000).prop_map(|(dst, bytes)| Op::Send { dst, bytes }),
            (arb_cell(), 0u64..1_000_000).prop_map(|(src, bytes)| Op::Recv { src, bytes }),
            (0u64..64, 0u32..100).prop_map(|(flag, target)| Op::WaitFlag { flag, target }),
            Just(Op::Barrier),
            (arb_cell(), 0u64..1_000_000).prop_map(|(root, bytes)| Op::Bcast { root, bytes }),
            (arb_cell(), any::<u16>()).prop_map(|(dst, reg)| Op::RegStore { dst, reg }),
            any::<u16>().prop_map(|reg| Op::RegLoad { reg }),
            (arb_cell(), 0u64..1_000_000).prop_map(|(dst, bytes)| Op::RemoteStore { dst, bytes }),
            (arb_cell(), 0u64..1_000_000).prop_map(|(src, bytes)| Op::RemoteLoad { src, bytes }),
            Just(Op::RemoteFence),
            Just(Op::MarkGopScalar),
            Just(Op::MarkGopVector),
        ]
        .boxed()
    }

    proptest! {
        /// Every operation survives a JSON round trip unchanged.
        #[test]
        fn op_round_trips(op in arb_op()) {
            let back = Op::from_json(&op.to_json()).unwrap();
            prop_assert_eq!(back, op);
        }

        /// Whole traces — header, per-cell partition, op order — survive a
        /// textual round trip unchanged.
        #[test]
        fn trace_round_trips(
            pes in proptest::collection::vec(
                proptest::collection::vec(arb_op(), 0..12),
                1..6,
            )
        ) {
            let mut t = Trace::new(pes.len());
            for (i, ops) in pes.into_iter().enumerate() {
                for op in ops {
                    t.pe_mut(CellId::new(i as u32)).push(op);
                }
            }
            let back = Trace::from_json_str(&t.to_json_string()).unwrap();
            prop_assert_eq!(back, t);
        }
    }
}

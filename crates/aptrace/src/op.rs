//! Trace operations.

use aputil::CellId;

/// One recorded library-level operation of a cell program.
///
/// The trace is *machine-independent*: it records what the program asked
/// for (sizes, destinations, dependencies), never how long anything took —
/// timing is entirely the business of the replaying model, which is what
/// lets one trace be replayed under AP1000, AP1000★, and AP1000+
/// parameters (§5).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Op {
    /// Pure computation measured in abstract floating-point operations;
    /// converted to time by the model's `computation_factor`.
    Work {
        /// Abstract operation count.
        flops: u64,
    },
    /// VPP Fortran run-time-system work (global→local index conversion,
    /// stride-pattern discovery, …) measured in abstract units.
    Rts {
        /// Abstract RTS work units.
        units: u64,
    },
    /// One-sided write (§3.1 `put` / `put_stride`).
    Put {
        /// Destination cell.
        dst: CellId,
        /// Payload bytes.
        bytes: u64,
        /// Whether either side used a non-contiguous stride (Table 3 PUTS).
        stride: bool,
        /// Whether the RTS requested an acknowledgment (a GET probe
        /// follows in the trace).
        ack: bool,
        /// Local flag id bumped at send-DMA completion (0 = none).
        send_flag: u64,
        /// Remote flag id bumped at receive-DMA completion (0 = none).
        recv_flag: u64,
    },
    /// One-sided read (§3.1 `get` / `get_stride`).
    Get {
        /// Cell owning the data.
        src: CellId,
        /// Payload bytes of the reply.
        bytes: u64,
        /// Whether either side used a non-contiguous stride (Table 3 GETS).
        stride: bool,
        /// `true` for the GET-to-address-0 acknowledge probe, which
        /// Table 3 excludes from GET counts and message sizes.
        ack_probe: bool,
        /// Remote flag id bumped when the reply leaves (0 = none).
        send_flag: u64,
        /// Local flag id bumped when the reply lands (0 = none).
        recv_flag: u64,
    },
    /// Blocking SEND into the destination's ring buffer (§4.3). The SEND
    /// library "waits to complete data transfer in the SEND library"
    /// (§5.4), which is where CG's overhead comes from.
    Send {
        /// Destination cell.
        dst: CellId,
        /// Message bytes.
        bytes: u64,
    },
    /// Blocking RECEIVE of the next ring-buffer message from `src`.
    Recv {
        /// Expected source cell.
        src: CellId,
        /// Expected message bytes (for accounting; matching is by source).
        bytes: u64,
    },
    /// Spin on a local flag until it reaches `target` (PUT/GET completion
    /// detection, §3.1).
    WaitFlag {
        /// Flag id.
        flag: u64,
        /// Value to wait for (absolute).
        target: u32,
    },
    /// Machine-wide S-net barrier.
    Barrier,
    /// Collective B-net broadcast: every cell participates, `root`'s buffer
    /// is delivered to all cells at once (§4: "broadcast communication and
    /// data distribution").
    Bcast {
        /// The broadcasting cell.
        root: CellId,
        /// Payload bytes.
        bytes: u64,
    },
    /// Store to a remote cell's communication register (scalar-reduction
    /// and group-barrier building block, §4.4/§4.5).
    RegStore {
        /// Destination cell.
        dst: CellId,
        /// Register index.
        reg: u16,
    },
    /// Blocking load of a local communication register: retries until the
    /// p-bit is set (§4.4), i.e. waits for a matching [`Op::RegStore`].
    RegLoad {
        /// Register index.
        reg: u16,
    },
    /// Non-blocking DSM remote store (§4.2): hardware-generated when the
    /// processor stores into shared memory space. Completion is detected
    /// by [`Op::RemoteFence`] through automatic acknowledge packets.
    RemoteStore {
        /// Owning cell of the stored address.
        dst: CellId,
        /// Stored bytes.
        bytes: u64,
    },
    /// Blocking DSM remote load (§4.2): "remote load is blocking".
    RemoteLoad {
        /// Owning cell of the loaded address.
        src: CellId,
        /// Loaded bytes.
        bytes: u64,
    },
    /// Block until every issued remote store has been acknowledged (the
    /// implicit acknowledge flag of §2.2).
    RemoteFence,
    /// Marker: one scalar global reduction completed on this cell
    /// (Table 3 "Gop"). Zero-time; the constituent RegStore/RegLoad ops
    /// carry the cost.
    MarkGopScalar,
    /// Marker: one vector global reduction completed on this cell
    /// (Table 3 "V Gop"). Zero-time; the constituent Send/Recv ops carry
    /// the cost.
    MarkGopVector,
}

impl Op {
    /// `true` for ops that can block on another cell's progress.
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            Op::Send { .. }
                | Op::Recv { .. }
                | Op::WaitFlag { .. }
                | Op::Barrier
                | Op::Bcast { .. }
                | Op::RegLoad { .. }
                | Op::RemoteLoad { .. }
                | Op::RemoteFence
        )
    }
}

/// The recorded operation sequence of one cell.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PeTrace {
    /// Program-ordered operations.
    pub ops: Vec<Op>,
}

impl PeTrace {
    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }
}

/// A whole-application trace: one [`PeTrace`] per cell.
///
/// # Examples
///
/// ```
/// use aptrace::{Op, Trace};
/// use aputil::CellId;
///
/// let mut t = Trace::new(2);
/// t.pe_mut(CellId::new(0)).push(Op::Work { flops: 100 });
/// t.pe_mut(CellId::new(1)).push(Op::Barrier);
/// assert_eq!(t.ncells(), 2);
/// assert_eq!(t.pe(CellId::new(0)).ops.len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    pes: Vec<PeTrace>,
}

impl Trace {
    /// Creates an empty trace for `ncells` cells.
    ///
    /// # Panics
    ///
    /// Panics if `ncells` is zero.
    pub fn new(ncells: usize) -> Self {
        assert!(ncells > 0, "trace needs at least one cell");
        Trace {
            pes: vec![PeTrace::default(); ncells],
        }
    }

    /// Number of cells.
    pub fn ncells(&self) -> usize {
        self.pes.len()
    }

    /// The trace of one cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn pe(&self, cell: CellId) -> &PeTrace {
        &self.pes[cell.index()]
    }

    /// Mutable access to one cell's trace.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn pe_mut(&mut self, cell: CellId) -> &mut PeTrace {
        &mut self.pes[cell.index()]
    }

    /// Iterates `(cell, trace)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &PeTrace)> {
        self.pes
            .iter()
            .enumerate()
            .map(|(i, p)| (CellId::new(i as u32), p))
    }

    /// Total operations across all cells.
    pub fn total_ops(&self) -> usize {
        self.pes.iter().map(|p| p.ops.len()).sum()
    }

    /// Per-class operation totals across all cells — what differential
    /// checkers compare against the program that generated the trace.
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for pe in &self.pes {
            for op in &pe.ops {
                match op {
                    Op::Work { .. } => c.works += 1,
                    Op::Rts { .. } => c.rts += 1,
                    Op::Put { .. } => c.puts += 1,
                    Op::Get { ack_probe, .. } => {
                        if *ack_probe {
                            c.ack_probes += 1;
                        } else {
                            c.gets += 1;
                        }
                    }
                    Op::Send { .. } => c.sends += 1,
                    Op::Recv { .. } => c.recvs += 1,
                    Op::WaitFlag { .. } => c.flag_waits += 1,
                    Op::Barrier => c.barriers += 1,
                    Op::Bcast { .. } => c.bcasts += 1,
                    Op::RegStore { .. } => c.reg_stores += 1,
                    Op::RegLoad { .. } => c.reg_loads += 1,
                    Op::RemoteStore { .. } => c.remote_stores += 1,
                    Op::RemoteLoad { .. } => c.remote_loads += 1,
                    Op::RemoteFence => c.fences += 1,
                    Op::MarkGopScalar | Op::MarkGopVector => c.marks += 1,
                }
            }
        }
        c
    }
}

/// Whole-trace operation totals, one field per [`Op`] class (GETs split
/// into data GETs and acknowledge probes, the same split Table 3 makes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    pub works: u64,
    pub rts: u64,
    pub puts: u64,
    pub gets: u64,
    pub ack_probes: u64,
    pub sends: u64,
    pub recvs: u64,
    pub flag_waits: u64,
    pub barriers: u64,
    pub bcasts: u64,
    pub reg_stores: u64,
    pub reg_loads: u64,
    pub remote_stores: u64,
    pub remote_loads: u64,
    pub fences: u64,
    pub marks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification() {
        assert!(Op::Barrier.is_blocking());
        assert!(Op::RegLoad { reg: 0 }.is_blocking());
        assert!(Op::WaitFlag { flag: 1, target: 1 }.is_blocking());
        assert!(!Op::Work { flops: 1 }.is_blocking());
        assert!(!Op::Put {
            dst: CellId::new(0),
            bytes: 8,
            stride: false,
            ack: false,
            send_flag: 0,
            recv_flag: 0
        }
        .is_blocking());
    }

    #[test]
    fn trace_indexing() {
        let mut t = Trace::new(3);
        t.pe_mut(CellId::new(2)).push(Op::Barrier);
        assert_eq!(t.total_ops(), 1);
        let cells: Vec<_> = t.iter().map(|(c, _)| c.index()).collect();
        assert_eq!(cells, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_trace_panics() {
        let _ = Trace::new(0);
    }
}

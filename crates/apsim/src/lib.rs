//! Discrete-event simulation kernel for the AP1000+ reproduction.
//!
//! This crate provides the time-ordered machinery every simulator in the
//! workspace is built on:
//!
//! * [`EventQueue`] — a priority queue of `(SimTime, E)` pairs with strict
//!   FIFO ordering among events scheduled for the same instant, which is the
//!   property that makes whole-machine simulations deterministic.
//! * [`Clock`] — the monotonically advancing notion of "now".
//! * [`resource::Resource`] — a serially-occupied hardware
//!   resource (a DMA engine, a network link, the B-net bus) with
//!   busy-until-time reservation semantics.
//!
//! # Examples
//!
//! ```
//! use apsim::{Clock, EventQueue};
//! use aputil::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_nanos(10), "late");
//! q.push(SimTime::from_nanos(5), "early");
//! q.push(SimTime::from_nanos(5), "early-but-second");
//!
//! let mut clock = Clock::new();
//! let mut order = Vec::new();
//! while let Some((t, e)) = q.pop() {
//!     clock.advance_to(t);
//!     order.push(e);
//! }
//! assert_eq!(order, ["early", "early-but-second", "late"]);
//! assert_eq!(clock.now(), SimTime::from_nanos(10));
//! ```

pub mod queue;
pub mod resource;

pub use queue::EventQueue;
pub use resource::Resource;

use aputil::SimTime;

/// The simulation clock: a monotone "current time".
///
/// The clock can only move forward; [`Clock::advance_to`] with an earlier
/// time is a logic error and panics, catching causality bugs at their source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    #[inline]
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "clock moved backwards: {} -> {}",
            self.now,
            t
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_nanos(5));
        c.advance_to(SimTime::from_nanos(5)); // same instant is fine
        assert_eq!(c.now(), SimTime::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_rejects_time_travel() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_nanos(5));
        c.advance_to(SimTime::from_nanos(4));
    }
}

//! Serially-occupied hardware resources.

use aputil::SimTime;

/// A hardware unit that serves one job at a time.
///
/// DMA engines, T-net links, and the B-net bus all share the same timing
/// shape: a job arriving at time `t` starts at `max(t, busy_until)`, holds
/// the unit for its duration, and pushes `busy_until` forward. `Resource`
/// captures that shape once.
///
/// # Examples
///
/// ```
/// use apsim::Resource;
/// use aputil::SimTime;
///
/// let mut link = Resource::new();
/// let (s1, e1) = link.reserve(SimTime::ZERO, SimTime::from_nanos(100));
/// assert_eq!((s1.as_nanos(), e1.as_nanos()), (0, 100));
/// // A job arriving at t=40 must wait for the link to free up.
/// let (s2, e2) = link.reserve(SimTime::from_nanos(40), SimTime::from_nanos(10));
/// assert_eq!((s2.as_nanos(), e2.as_nanos()), (100, 110));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Resource {
    busy_until: SimTime,
    busy_time: SimTime,
    jobs: u64,
}

impl Resource {
    /// A resource that is free from time zero.
    pub fn new() -> Self {
        Resource::default()
    }

    /// Reserves the resource for a job arriving at `earliest` that needs it
    /// for `duration`. Returns the `(start, end)` of the granted occupation.
    pub fn reserve(&mut self, earliest: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = earliest.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy_time += duration;
        self.jobs += 1;
        (start, end)
    }

    /// The time at which the resource next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total time the resource has been occupied (utilization numerator).
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn back_to_back_jobs_serialize() {
        let mut r = Resource::new();
        let (_, e1) = r.reserve(ns(0), ns(50));
        let (s2, e2) = r.reserve(ns(0), ns(50));
        assert_eq!(s2, e1);
        assert_eq!(e2, ns(100));
        assert_eq!(r.jobs(), 2);
        assert_eq!(r.busy_time(), ns(100));
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut r = Resource::new();
        r.reserve(ns(0), ns(10));
        let (s, e) = r.reserve(ns(100), ns(10));
        assert_eq!((s, e), (ns(100), ns(110)));
        assert_eq!(r.busy_time(), ns(20));
        assert_eq!(r.busy_until(), ns(110));
    }

    #[test]
    fn zero_duration_job_is_instant() {
        let mut r = Resource::new();
        let (s, e) = r.reserve(ns(5), SimTime::ZERO);
        assert_eq!(s, e);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Grants never overlap and never start before the job arrives.
        #[test]
        fn grants_are_disjoint_and_causal(
            jobs in proptest::collection::vec((0u64..1000, 0u64..100), 1..100)
        ) {
            let mut r = Resource::new();
            let mut arrivals: Vec<(u64, u64)> = jobs;
            // Resource semantics assume nondecreasing arrival inspection is
            // NOT required — jobs may arrive in any order; grants still
            // serialize. Track the previous end.
            let mut prev_end = SimTime::ZERO;
            for (arr, dur) in arrivals.drain(..) {
                let (s, e) = r.reserve(SimTime::from_nanos(arr), SimTime::from_nanos(dur));
                prop_assert!(s >= SimTime::from_nanos(arr));
                prop_assert!(s >= prev_end);
                prop_assert_eq!(e, s + SimTime::from_nanos(dur));
                prev_end = e;
            }
        }
    }
}

//! The deterministic event queue.

use aputil::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// Events popped from the queue come out in nondecreasing time order; among
/// events scheduled for the *same* instant, insertion order is preserved.
/// This last property is what makes simulations built on the queue
/// reproducible run-to-run: `BinaryHeap` alone leaves same-key order
/// unspecified, so each entry carries a monotone sequence number.
///
/// # Examples
///
/// ```
/// use apsim::EventQueue;
/// use aputil::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(1), 'b');
/// q.push(SimTime::from_nanos(1), 'c');
/// q.push(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Reverse ordering: BinaryHeap is a max-heap, we want earliest (time, seq)
// first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic counter).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 'a');
        q.push(SimTime::from_nanos(5), 'b');
        assert_eq!(q.pop().unwrap().1, 'a');
        // New same-time event scheduled *after* 'b' must come out after 'b'.
        q.push(SimTime::from_nanos(5), 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping the whole queue yields a sequence sorted by time, and
        /// stable (insertion-ordered) among equal times.
        #[test]
        fn pop_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            expected.sort(); // stable on (time, index) because index is unique & increasing
            let mut got = Vec::new();
            while let Some((t, i)) = q.pop() {
                got.push((t.as_nanos(), i));
            }
            prop_assert_eq!(got, expected);
        }
    }
}

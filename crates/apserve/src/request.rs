//! Request validation and canonicalization.
//!
//! Every `POST /submit` body is parsed, strictly validated (unknown
//! fields, duplicate keys, out-of-range values, and kind-irrelevant
//! fields are all structured errors naming the offending field), and
//! then rebuilt into a **canonical document**: defaults filled in, every
//! value re-typed, object keys sorted. Two requests that mean the same
//! job — whatever their key order, float spelling, or omitted defaults —
//! canonicalize to the same bytes, and the FNV-1a hash of those bytes is
//! the job's content address. That hash is the whole cache story:
//! reports are byte-reproducible and `host_ms`-stripped, so
//! `same canonical request ⇒ same report bytes`, forever.

use aputil::{fnv1a_64, Json, JsonErrorKind};

/// What a request asks the simulator to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// One suite-style run over `apps` (a sweep with default sizes and
    /// factors), reported as a versioned `ap1000plus.bench` document.
    Bench,
    /// An app × size × factor grid, reported the same way.
    Sweep,
    /// Apps under a seed-derived survivable fault schedule.
    Fault,
    /// Re-cost a recorded `.evtrace` under a factor grid.
    Remodel,
    /// Sleep for `ms` host-milliseconds (testing/CI only; the server
    /// refuses it unless explicitly enabled).
    Sleep,
}

impl Kind {
    pub fn as_str(&self) -> &'static str {
        match self {
            Kind::Bench => "bench",
            Kind::Sweep => "sweep",
            Kind::Fault => "fault",
            Kind::Remodel => "remodel",
            Kind::Sleep => "sleep",
        }
    }
}

/// Structured rejection: which field, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// The offending field (or `body` for document-level problems).
    pub field: String,
    pub detail: String,
}

impl RequestError {
    fn new(field: impl Into<String>, detail: impl Into<String>) -> RequestError {
        RequestError {
            field: field.into(),
            detail: detail.into(),
        }
    }

    /// The JSON error document the server sends with HTTP 400.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("error", Json::from("bad_request")),
            ("field", Json::from(self.field.clone())),
            ("detail", Json::from(self.detail.clone())),
        ])
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.field, self.detail)
    }
}

/// A validated, canonicalized, content-addressed request.
#[derive(Clone, Debug)]
pub struct CanonRequest {
    pub kind: Kind,
    /// The canonical document (defaults filled, keys sorted).
    pub canonical: Json,
    /// `canonical` serialized compactly — the hashed bytes.
    pub text: String,
    /// `fnv1a_64(text)`: the content address.
    pub key: u64,
    /// Transport option (progress streaming); never part of the hash.
    pub stream: bool,
}

impl CanonRequest {
    /// The content address as cache files and `X-Key` headers spell it.
    pub fn key_hex(&self) -> String {
        aputil::key_hex(self.key)
    }

    /// Convenience accessor into the canonical document.
    pub fn field(&self, name: &str) -> Option<&Json> {
        self.canonical.get(name)
    }
}

/// Most entries accepted in `apps`/`sizes`/`factors` — bounds the cost
/// of a single job.
const MAX_LIST: usize = 16;
/// Largest accepted machine size (the emulator's cell cap).
const MAX_PE: u64 = 65_536;
/// Longest accepted sleep, in host-milliseconds.
const MAX_SLEEP_MS: u64 = 60_000;

fn duplicate_key(v: &Json) -> Option<String> {
    match v {
        Json::Obj(members) => {
            for (i, (k, inner)) in members.iter().enumerate() {
                if members.iter().take(i).any(|(prev, _)| prev == k) {
                    return Some(k.clone());
                }
                if let Some(d) = duplicate_key(inner) {
                    return Some(d);
                }
            }
            None
        }
        Json::Arr(items) => items.iter().find_map(duplicate_key),
        _ => None,
    }
}

fn str_list(v: &Json, field: &str, max_item_len: usize) -> Result<Vec<String>, RequestError> {
    let items = v
        .as_arr()
        .ok_or_else(|| RequestError::new(field, "must be an array of strings"))?;
    if items.is_empty() || items.len() > MAX_LIST {
        return Err(RequestError::new(
            field,
            format!("must have 1..={MAX_LIST} entries, got {}", items.len()),
        ));
    }
    items
        .iter()
        .map(|j| {
            let s = j
                .as_str()
                .ok_or_else(|| RequestError::new(field, "entries must be strings"))?;
            if s.is_empty() || s.len() > max_item_len {
                return Err(RequestError::new(
                    field,
                    format!("entry '{s}' must be 1..={max_item_len} characters"),
                ));
            }
            Ok(s.to_string())
        })
        .collect()
}

fn parse_scale(v: Option<&Json>) -> Result<&'static str, RequestError> {
    match v {
        None => Ok("test"),
        Some(j) => match j.as_str() {
            Some("test") => Ok("test"),
            Some("paper") => Ok("paper"),
            _ => Err(RequestError::new(
                "scale",
                format!("must be \"test\" or \"paper\", got {j}"),
            )),
        },
    }
}

fn parse_sizes(v: Option<&Json>) -> Result<Vec<Json>, RequestError> {
    let Some(j) = v else {
        return Ok(vec![Json::from("default")]);
    };
    let items = j
        .as_arr()
        .ok_or_else(|| RequestError::new("sizes", "must be an array"))?;
    if items.is_empty() || items.len() > MAX_LIST {
        return Err(RequestError::new(
            "sizes",
            format!("must have 1..={MAX_LIST} entries, got {}", items.len()),
        ));
    }
    items
        .iter()
        .map(|item| {
            if item.as_str() == Some("default") {
                return Ok(Json::from("default"));
            }
            match item.as_u64() {
                Some(pe) if (1..=MAX_PE).contains(&pe) => Ok(Json::from(pe)),
                _ => Err(RequestError::new(
                    "sizes",
                    format!(
                        "entries must be \"default\" or a PE count in 1..={MAX_PE}, got {item}"
                    ),
                )),
            }
        })
        .collect()
}

fn parse_factors(v: Option<&Json>) -> Result<Vec<Json>, RequestError> {
    let Some(j) = v else {
        return Ok(vec![Json::F(1.0)]);
    };
    let items = j
        .as_arr()
        .ok_or_else(|| RequestError::new("factors", "must be an array of numbers"))?;
    if items.is_empty() || items.len() > MAX_LIST {
        return Err(RequestError::new(
            "factors",
            format!("must have 1..={MAX_LIST} entries, got {}", items.len()),
        ));
    }
    items
        .iter()
        .map(|item| match item.as_f64() {
            Some(f) if f.is_finite() && f > 0.0 && f <= 1000.0 => Ok(Json::F(f)),
            _ => Err(RequestError::new(
                "factors",
                format!("entries must be finite numbers in (0, 1000], got {item}"),
            )),
        })
        .collect()
}

fn parse_rev(v: Option<&Json>) -> Result<Json, RequestError> {
    match v {
        None | Some(Json::Null) => Ok(Json::Null),
        Some(j) => match j.as_str() {
            Some(s) if !s.is_empty() && s.len() <= 64 => Ok(Json::from(s)),
            _ => Err(RequestError::new(
                "rev",
                format!("must be a 1..=64-character string or null, got {j}"),
            )),
        },
    }
}

/// Parses and canonicalizes one `POST /submit` body.
pub fn parse_request(body: &[u8]) -> Result<CanonRequest, RequestError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| RequestError::new("body", "request body is not UTF-8"))?;
    let doc = Json::parse(text).map_err(|e| {
        let detail = match e.kind {
            JsonErrorKind::TooDeep => format!("rejected: {e}"),
            JsonErrorKind::Syntax => format!("request body is not valid JSON: {e}"),
        };
        RequestError::new("body", detail)
    })?;
    let members = doc
        .as_obj()
        .ok_or_else(|| RequestError::new("body", "request body must be a JSON object"))?;
    if let Some(k) = duplicate_key(&doc) {
        return Err(RequestError::new(k, "duplicate key"));
    }

    let kind = match doc.get("kind").map(|j| (j, j.as_str())) {
        None => return Err(RequestError::new("kind", "required field is missing")),
        Some((_, Some("bench"))) => Kind::Bench,
        Some((_, Some("sweep"))) => Kind::Sweep,
        Some((_, Some("fault"))) => Kind::Fault,
        Some((_, Some("remodel"))) => Kind::Remodel,
        Some((_, Some("sleep"))) => Kind::Sleep,
        Some((j, _)) => {
            return Err(RequestError::new(
                "kind",
                format!("must be one of bench|sweep|fault|remodel|sleep, got {j}"),
            ))
        }
    };

    let stream = match doc.get("stream") {
        None => false,
        Some(j) => j
            .as_bool()
            .ok_or_else(|| RequestError::new("stream", format!("must be a boolean, got {j}")))?,
    };

    // Strict field allowlist per kind: a field the job would silently
    // ignore must not silently vary the content address.
    let allowed: &[&str] = match kind {
        Kind::Bench | Kind::Sweep => {
            &["kind", "stream", "apps", "scale", "sizes", "factors", "rev"]
        }
        Kind::Fault => &["kind", "stream", "apps", "scale", "fault_seed"],
        Kind::Remodel => &["kind", "stream", "trace", "factors", "rev"],
        Kind::Sleep => &["kind", "stream", "ms", "crash"],
    };
    for (k, _) in members {
        if !allowed.contains(&k.as_str()) {
            return Err(RequestError::new(
                k.clone(),
                format!("unknown field for kind \"{}\"", kind.as_str()),
            ));
        }
    }

    // Rebuild the canonical document with defaults filled and values
    // re-typed; `canonicalize` then pins the key order.
    let mut canon: Vec<(String, Json)> = vec![("kind".into(), Json::from(kind.as_str()))];
    match kind {
        Kind::Bench | Kind::Sweep => {
            let apps = match doc.get("apps") {
                Some(v) => str_list(v, "apps", 32)?,
                None => vec!["EP".to_string()],
            };
            canon.push(("apps".into(), Json::from(apps)));
            canon.push(("scale".into(), Json::from(parse_scale(doc.get("scale"))?)));
            canon.push(("sizes".into(), Json::Arr(parse_sizes(doc.get("sizes"))?)));
            canon.push((
                "factors".into(),
                Json::Arr(parse_factors(doc.get("factors"))?),
            ));
            canon.push(("rev".into(), parse_rev(doc.get("rev"))?));
        }
        Kind::Fault => {
            let apps = match doc.get("apps") {
                Some(v) => str_list(v, "apps", 32)?,
                None => vec!["CG".to_string()],
            };
            canon.push(("apps".into(), Json::from(apps)));
            canon.push(("scale".into(), Json::from(parse_scale(doc.get("scale"))?)));
            let seed = match doc.get("fault_seed") {
                None => 1,
                Some(j) => j.as_u64().ok_or_else(|| {
                    RequestError::new(
                        "fault_seed",
                        format!("must be a non-negative integer, got {j}"),
                    )
                })?,
            };
            canon.push(("fault_seed".into(), Json::from(seed)));
        }
        Kind::Remodel => {
            let trace = doc
                .get("trace")
                .and_then(Json::as_str)
                .ok_or_else(|| RequestError::new("trace", "required string field is missing"))?;
            if trace.is_empty() || trace.len() > 512 {
                return Err(RequestError::new("trace", "must be 1..=512 characters"));
            }
            // The server reads this path: keep it inside the working
            // directory. Absolute paths and parent traversal are refused.
            if trace.starts_with('/')
                || trace.contains('\\')
                || std::path::Path::new(trace)
                    .components()
                    .any(|c| matches!(c, std::path::Component::ParentDir))
            {
                return Err(RequestError::new(
                    "trace",
                    "must be a relative path without '..' components",
                ));
            }
            canon.push(("trace".into(), Json::from(trace)));
            canon.push((
                "factors".into(),
                Json::Arr(parse_factors(doc.get("factors"))?),
            ));
            canon.push(("rev".into(), parse_rev(doc.get("rev"))?));
        }
        Kind::Sleep => {
            let ms = match doc.get("ms") {
                None => 10,
                Some(j) => match j.as_u64() {
                    Some(ms) if ms <= MAX_SLEEP_MS => ms,
                    _ => {
                        return Err(RequestError::new(
                            "ms",
                            format!("must be an integer in 0..={MAX_SLEEP_MS}, got {j}"),
                        ))
                    }
                },
            };
            canon.push(("ms".into(), Json::from(ms)));
            // Deliberate failure injection for the sandbox test matrix:
            // `"crash":"panic"` panics after the sleep, `"abort"` calls
            // `abort(2)`. Only meaningful where sleep jobs are enabled.
            let crash = match doc.get("crash") {
                None | Some(Json::Null) => Json::Null,
                Some(j) => match j.as_str() {
                    Some("panic") => Json::from("panic"),
                    Some("abort") => Json::from("abort"),
                    _ => {
                        return Err(RequestError::new(
                            "crash",
                            format!("must be null, \"panic\", or \"abort\", got {j}"),
                        ))
                    }
                },
            };
            canon.push(("crash".into(), crash));
        }
    }

    let canonical = Json::Obj(canon).canonicalize();
    let text = canonical.to_string();
    let key = fnv1a_64(text.as_bytes());
    Ok(CanonRequest {
        kind,
        canonical,
        text,
        key,
        stream,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<CanonRequest, RequestError> {
        parse_request(s.as_bytes())
    }

    #[test]
    fn canonicalization_is_spelling_invariant() {
        // Key order, omitted defaults, and integral-float spelling all
        // collapse to one content address.
        let a = parse(r#"{"kind":"bench","apps":["EP"]}"#).unwrap();
        let b = parse(
            r#"{"factors":[1.0],"scale":"test","apps":["EP"],"kind":"bench","sizes":["default"],"rev":null}"#,
        )
        .unwrap();
        let c = parse(r#"{"kind":"bench","apps":["EP"],"factors":[1]}"#).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.key, b.key);
        assert_eq!(a.key, c.key, "1 and 1.0 must hash identically");
        // Canonical text is sorted and fully defaulted.
        assert_eq!(
            a.text,
            r#"{"apps":["EP"],"factors":[1.0],"kind":"bench","rev":null,"scale":"test","sizes":["default"]}"#
        );
    }

    #[test]
    fn different_jobs_get_different_keys() {
        let a = parse(r#"{"kind":"bench","apps":["EP"]}"#).unwrap();
        let b = parse(r#"{"kind":"bench","apps":["MatMul"]}"#).unwrap();
        let c = parse(r#"{"kind":"sweep","apps":["EP"]}"#).unwrap();
        assert_ne!(a.key, b.key);
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn stream_is_transport_only() {
        let plain = parse(r#"{"kind":"sleep","ms":5}"#).unwrap();
        let stream = parse(r#"{"kind":"sleep","ms":5,"stream":true}"#).unwrap();
        assert!(!plain.stream);
        assert!(stream.stream);
        assert_eq!(plain.key, stream.key, "stream must not change the address");
    }

    #[test]
    fn unknown_and_misplaced_fields_are_named() {
        let e = parse(r#"{"kind":"bench","bogus":1}"#).unwrap_err();
        assert_eq!(e.field, "bogus");
        // `fault_seed` belongs to fault requests only.
        let e = parse(r#"{"kind":"bench","fault_seed":1}"#).unwrap_err();
        assert_eq!(e.field, "fault_seed");
        let e = parse(r#"{"kind":"warp"}"#).unwrap_err();
        assert_eq!(e.field, "kind");
        let e = parse(r#"{"apps":["EP"]}"#).unwrap_err();
        assert_eq!(e.field, "kind");
    }

    #[test]
    fn hostile_values_are_structured_errors() {
        for (body, field) in [
            (r#"not json"#, "body"),
            (r#"[1,2]"#, "body"),
            (r#"{"kind":"bench","apps":[]}"#, "apps"),
            (r#"{"kind":"bench","apps":[1]}"#, "apps"),
            (r#"{"kind":"bench","scale":"huge"}"#, "scale"),
            (r#"{"kind":"bench","sizes":[0]}"#, "sizes"),
            (r#"{"kind":"bench","sizes":[999999999]}"#, "sizes"),
            (r#"{"kind":"bench","factors":[-1.0]}"#, "factors"),
            (r#"{"kind":"bench","factors":["x"]}"#, "factors"),
            (r#"{"kind":"sleep","ms":99999999}"#, "ms"),
            (r#"{"kind":"remodel"}"#, "trace"),
            (r#"{"kind":"remodel","trace":"/etc/passwd"}"#, "trace"),
            (
                r#"{"kind":"remodel","trace":"../../secret.evtrace"}"#,
                "trace",
            ),
            (r#"{"kind":"bench","apps":["EP"],"apps":["CG"]}"#, "apps"),
            (r#"{"kind":"bench","stream":"yes"}"#, "stream"),
            (r#"{"kind":"sleep","crash":"sometimes"}"#, "crash"),
            (r#"{"kind":"bench","crash":"panic"}"#, "crash"),
        ] {
            let e = parse(body).unwrap_err();
            assert_eq!(e.field, field, "{body} -> {e:?}");
        }
    }

    #[test]
    fn too_deep_body_is_reported_not_fatal() {
        let deep = format!(r#"{{"kind":{}1{}}}"#, "[".repeat(200), "]".repeat(200));
        let e = parse(&deep).unwrap_err();
        assert_eq!(e.field, "body");
        assert!(e.detail.contains("rejected"), "{e:?}");
    }

    #[test]
    fn sleep_crash_injection_canonicalizes() {
        let plain = parse(r#"{"kind":"sleep","ms":5}"#).unwrap();
        let explicit = parse(r#"{"kind":"sleep","ms":5,"crash":null}"#).unwrap();
        assert_eq!(plain.key, explicit.key, "null crash is the default");
        let panic = parse(r#"{"kind":"sleep","ms":5,"crash":"panic"}"#).unwrap();
        assert_ne!(plain.key, panic.key, "crash mode is part of the address");
        assert_eq!(panic.field("crash").and_then(Json::as_str), Some("panic"));
    }

    #[test]
    fn apps_list_cap_is_enforced() {
        let many: Vec<String> = (0..17).map(|i| format!("\"A{i}\"")).collect();
        let body = format!(r#"{{"kind":"bench","apps":[{}]}}"#, many.join(","));
        assert_eq!(parse(&body).unwrap_err().field, "apps");
    }
}

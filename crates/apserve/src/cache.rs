//! Content-addressed result cache: in-memory LRU front, optional
//! persistent disk tier.
//!
//! Keys are FNV-1a hashes of canonical request text ([`crate::request`]);
//! values are complete report documents as bytes. Because reports are
//! byte-reproducible, a hit at either tier is *exactly* the bytes a cold
//! run would produce — callers never need to distinguish tiers for
//! correctness, only for the `X-Cache` diagnostic header.
//!
//! Disk entries are one file per key, `<key-hex>.json`, holding a
//! versioned envelope that records the canonical request alongside the
//! report (so a cache directory is auditable on its own). Files are
//! written via [`aputil::write_atomic`]; a crash mid-write leaves either
//! the old entry or none, and any corrupt or truncated file is treated
//! as a miss and overwritten on the next store.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::SystemTime;

use aputil::{key_hex, parse_key_hex, Json};

/// Where a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTier {
    Memory,
    Disk,
}

/// Schema tag for on-disk entries; bump `DISK_VERSION` on layout change
/// and old entries become misses (recomputed, then overwritten).
const DISK_SCHEMA: &str = "ap1000plus.cached";
const DISK_VERSION: u64 = 1;

/// LRU of complete report bodies, with optional write-through to disk.
pub struct ResultCache {
    /// key -> report bytes.
    map: HashMap<u64, Vec<u8>>,
    /// Keys in recency order, most recent last. Small (≤ capacity), so
    /// the O(n) reposition on hit is noise next to a simulation run.
    order: Vec<u64>,
    capacity: usize,
    dir: Option<PathBuf>,
    /// Evictions performed since construction (memory tier only).
    pub evictions: u64,
    /// Total bytes held by the memory tier.
    bytes: usize,
    /// Byte budget for the disk tier; `None` means unbounded (the
    /// pre-budget behaviour).
    disk_budget: Option<u64>,
    /// Disk keys in recency order, most recent last. Seeded from the
    /// directory scan (mtime order) so the budget holds across restarts.
    disk_order: Vec<u64>,
    /// key -> on-disk envelope size in bytes.
    disk_sizes: HashMap<u64, u64>,
    /// Disk-tier entries deleted to hold `disk_budget`.
    pub disk_evictions: u64,
}

impl ResultCache {
    /// `capacity` is the memory-tier entry cap (≥ 1); `dir`, when given,
    /// enables the persistent tier (created on first store);
    /// `disk_budget` bounds the disk tier's total bytes with LRU
    /// eviction (existing entries are inventoried, oldest-mtime first,
    /// so a restart over a full directory trims it immediately).
    pub fn new(capacity: usize, dir: Option<PathBuf>, disk_budget: Option<u64>) -> ResultCache {
        let mut cache = ResultCache {
            map: HashMap::new(),
            order: Vec::new(),
            capacity: capacity.max(1),
            dir,
            evictions: 0,
            bytes: 0,
            disk_budget,
            disk_order: Vec::new(),
            disk_sizes: HashMap::new(),
            disk_evictions: 0,
        };
        cache.scan_disk();
        cache.enforce_disk_budget();
        cache
    }

    /// Inventories the disk tier: every `<key-hex>.json` file, ordered
    /// oldest-mtime first so pre-existing entries evict before anything
    /// written this run. Unparseable filenames are ignored (they are
    /// not cache entries and are never deleted).
    fn scan_disk(&mut self) {
        let Some(dir) = self.dir.as_ref() else { return };
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        let mut found: Vec<(SystemTime, u64, u64)> = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            let Some(key) = parse_key_hex(stem) else { continue };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            found.push((mtime, key, meta.len()));
        }
        found.sort();
        for (_, key, len) in found {
            self.disk_order.push(key);
            self.disk_sizes.insert(key, len);
        }
    }

    /// Deletes oldest disk entries until the tier fits the budget. The
    /// most recently used entry is never evicted, however small the
    /// budget — a cache that immediately forgets its only entry is
    /// worse than one slightly over budget.
    fn enforce_disk_budget(&mut self) {
        let Some(budget) = self.disk_budget else { return };
        while self.disk_order.len() > 1 && self.disk_bytes() > budget {
            let victim = self.disk_order.remove(0);
            self.disk_sizes.remove(&victim);
            if let Some(path) = self.disk_path(victim) {
                let _ = std::fs::remove_file(path);
            }
            self.disk_evictions += 1;
        }
    }

    fn touch_disk(&mut self, key: u64) {
        if let Some(pos) = self.disk_order.iter().position(|&k| k == key) {
            self.disk_order.remove(pos);
            self.disk_order.push(key);
        }
    }

    /// Disk-tier entry count (0 when no disk tier is configured).
    pub fn disk_entries(&self) -> usize {
        self.disk_sizes.len()
    }

    /// Total bytes of on-disk envelopes.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_sizes.values().sum()
    }

    pub fn entries(&self) -> usize {
        self.map.len()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push(key);
    }

    fn disk_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", key_hex(key))))
    }

    /// Looks `key` up in memory, then on disk. A disk hit is promoted
    /// into the memory tier.
    pub fn get(&mut self, key: u64) -> Option<(Vec<u8>, CacheTier)> {
        if let Some(body) = self.map.get(&key) {
            let body = body.clone();
            self.touch(key);
            return Some((body, CacheTier::Memory));
        }
        let path = self.disk_path(key)?;
        let raw = std::fs::read(&path).ok()?;
        let body = decode_disk_entry(&raw, key)?;
        self.insert_memory(key, body.clone());
        self.touch_disk(key);
        Some((body, CacheTier::Disk))
    }

    fn insert_memory(&mut self, key: u64, body: Vec<u8>) {
        if let Some(old) = self.map.insert(key, body) {
            self.bytes -= old.len();
        }
        self.bytes += self.map[&key].len();
        self.touch(key);
        while self.map.len() > self.capacity {
            let victim = self.order.remove(0);
            if let Some(old) = self.map.remove(&victim) {
                self.bytes -= old.len();
            }
            self.evictions += 1;
        }
    }

    /// Stores a freshly computed report under `key`, writing through to
    /// the disk tier if one is configured. Disk write failures are
    /// returned for logging but do not poison the memory entry.
    pub fn put(&mut self, key: u64, canonical_request: &str, body: &[u8]) -> Result<(), String> {
        self.insert_memory(key, body.to_vec());
        let Some(path) = self.disk_path(key) else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        let report = std::str::from_utf8(body)
            .map_err(|_| "report is not UTF-8; disk tier skipped".to_string())?;
        let request = Json::parse(canonical_request)
            .map_err(|e| format!("canonical request does not reparse: {e}"))?;
        let envelope = Json::obj([
            ("schema", Json::from(DISK_SCHEMA)),
            ("version", Json::from(DISK_VERSION)),
            ("key", Json::from(key_hex(key))),
            ("request", request),
            ("report", Json::from(report)),
        ]);
        let encoded = envelope.to_string();
        aputil::write_atomic(&path, encoded.as_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        if self.disk_sizes.insert(key, encoded.len() as u64).is_none() {
            self.disk_order.push(key);
        }
        self.touch_disk(key);
        self.enforce_disk_budget();
        Ok(())
    }

    /// Deletes any partial or complete disk entry for `key` (used when a
    /// job is abandoned mid-flight; write_atomic means this is usually a
    /// no-op, but it keeps "no partial entries" an invariant, not a hope).
    pub fn forget_disk(&mut self, key: u64) {
        if self.disk_sizes.remove(&key).is_some() {
            self.disk_order.retain(|&k| k != key);
        }
        if let Some(path) = self.disk_path(key) {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Validates and unwraps one on-disk envelope; `None` means "treat as
/// miss" (corrupt, truncated, wrong schema, or key mismatch).
fn decode_disk_entry(raw: &[u8], key: u64) -> Option<Vec<u8>> {
    let text = std::str::from_utf8(raw).ok()?;
    let doc = Json::parse(text).ok()?;
    if doc.get("schema")?.as_str()? != DISK_SCHEMA {
        return None;
    }
    if doc.get("version")?.as_u64()? != DISK_VERSION {
        return None;
    }
    if doc.get("key")?.as_str()? != key_hex(key) {
        return None;
    }
    Some(doc.get("report")?.as_str()?.as_bytes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("apserve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2, None, None);
        c.put(1, "{}", b"one").unwrap();
        c.put(2, "{}", b"two").unwrap();
        assert!(c.get(1).is_some()); // 1 now most recent
        c.put(3, "{}", b"three").unwrap(); // evicts 2
        assert_eq!(c.evictions, 1);
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1).unwrap().0, b"one");
        assert_eq!(c.get(3).unwrap().0, b"three");
        assert_eq!(c.bytes(), "one".len() + "three".len());
    }

    #[test]
    fn disk_tier_survives_a_new_cache_and_promotes() {
        let dir = tmpdir("disk");
        let mut c = ResultCache::new(4, Some(dir.clone()), None);
        c.put(7, r#"{"kind":"sleep","ms":1}"#, b"report-bytes")
            .unwrap();

        // Fresh cache over the same directory: memory is cold, disk hits.
        let mut c2 = ResultCache::new(4, Some(dir.clone()), None);
        let (body, tier) = c2.get(7).unwrap();
        assert_eq!(body, b"report-bytes");
        assert_eq!(tier, CacheTier::Disk);
        // Promoted: second lookup is a memory hit.
        assert_eq!(c2.get(7).unwrap().1, CacheTier::Memory);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_entries_are_misses() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        for garbage in [
            &b"not json at all"[..],
            br#"{"schema":"wrong","version":1,"key":"0000000000000009","report":"x"}"#,
            br#"{"schema":"ap1000plus.cached","version":99,"key":"0000000000000009","report":"x"}"#,
            br#"{"schema":"ap1000plus.cached","version":1,"key":"ffffffffffffffff","report":"x"}"#,
            br#"{"schema":"ap1000plus.cached","version":1,"key":"0000000000000009""#,
        ] {
            std::fs::write(dir.join(format!("{}.json", key_hex(9))), garbage).unwrap();
            let mut c = ResultCache::new(4, Some(dir.clone()), None);
            assert!(c.get(9).is_none(), "{garbage:?} should be a miss");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_cache_recomputes_after_eviction() {
        let mut c = ResultCache::new(1, None, None);
        c.put(1, "{}", b"a").unwrap();
        c.put(2, "{}", b"b").unwrap();
        assert!(c.get(1).is_none(), "no disk tier: eviction means miss");
    }

    /// A 1000-byte body: envelope overhead (~100 bytes) is noise next
    /// to it, so "budget holds N entries" arithmetic below is robust.
    fn big(fill: char) -> Vec<u8> {
        fill.to_string().repeat(1000).into_bytes()
    }

    #[test]
    fn disk_budget_evicts_oldest_but_never_newest() {
        let dir = tmpdir("budget");
        // ~1.1 KB per envelope; a 2.5 KB budget holds two entries.
        let mut c = ResultCache::new(8, Some(dir.clone()), Some(2500));
        c.put(1, "{}", &big('a')).unwrap();
        c.put(2, "{}", &big('b')).unwrap();
        assert_eq!(c.disk_entries(), 2);
        assert_eq!(c.disk_evictions, 0);
        c.put(3, "{}", &big('c')).unwrap(); // over budget: key 1 goes
        assert_eq!(c.disk_evictions, 1);
        assert_eq!(c.disk_entries(), 2);
        assert!(!dir.join(format!("{}.json", key_hex(1))).exists());
        assert!(dir.join(format!("{}.json", key_hex(3))).exists());
        assert!(c.disk_bytes() <= 2500);

        // A budget smaller than one entry still keeps the newest entry.
        let mut tiny = ResultCache::new(8, Some(tmpdir("tiny")), Some(1));
        tiny.put(9, "{}", b"only").unwrap();
        assert_eq!(tiny.disk_entries(), 1, "most-recent entry is immortal");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_scan_enforces_the_budget_by_mtime() {
        let dir = tmpdir("rescan");
        {
            let mut c = ResultCache::new(8, Some(dir.clone()), None);
            for key in 1..=4u64 {
                c.put(key, "{}", &big('x')).unwrap();
                // Distinct mtimes so the scan's LRU order is deterministic.
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            assert_eq!(c.disk_entries(), 4);
        }
        // Reopen with a budget that fits two entries: the two oldest are
        // trimmed at construction, the two newest survive.
        let c = ResultCache::new(8, Some(dir.clone()), Some(2500));
        assert_eq!(c.disk_evictions, 2);
        assert!(!dir.join(format!("{}.json", key_hex(1))).exists());
        assert!(!dir.join(format!("{}.json", key_hex(2))).exists());
        assert!(dir.join(format!("{}.json", key_hex(3))).exists());
        assert!(dir.join(format!("{}.json", key_hex(4))).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_hits_refresh_recency_and_forget_removes_files() {
        let dir = tmpdir("touch");
        let mut c = ResultCache::new(1, Some(dir.clone()), Some(2500));
        c.put(1, "{}", &big('a')).unwrap();
        c.put(2, "{}", &big('b')).unwrap();
        // Touch 1 via a disk hit (memory tier only holds one entry, so
        // key 1 was evicted from memory and must come from disk).
        assert_eq!(c.get(1).unwrap().1, CacheTier::Disk);
        c.put(3, "{}", &big('c')).unwrap(); // evicts 2, not the touched 1
        assert!(dir.join(format!("{}.json", key_hex(1))).exists());
        assert!(!dir.join(format!("{}.json", key_hex(2))).exists());

        c.forget_disk(3);
        assert!(!dir.join(format!("{}.json", key_hex(3))).exists());
        assert_eq!(c.disk_entries(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

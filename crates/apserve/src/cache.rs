//! Content-addressed result cache: in-memory LRU front, optional
//! persistent disk tier.
//!
//! Keys are FNV-1a hashes of canonical request text ([`crate::request`]);
//! values are complete report documents as bytes. Because reports are
//! byte-reproducible, a hit at either tier is *exactly* the bytes a cold
//! run would produce — callers never need to distinguish tiers for
//! correctness, only for the `X-Cache` diagnostic header.
//!
//! Disk entries are one file per key, `<key-hex>.json`, holding a
//! versioned envelope that records the canonical request alongside the
//! report (so a cache directory is auditable on its own). Files are
//! written via [`aputil::write_atomic`]; a crash mid-write leaves either
//! the old entry or none, and any corrupt or truncated file is treated
//! as a miss and overwritten on the next store.

use std::collections::HashMap;
use std::path::PathBuf;

use aputil::{key_hex, Json};

/// Where a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTier {
    Memory,
    Disk,
}

/// Schema tag for on-disk entries; bump `DISK_VERSION` on layout change
/// and old entries become misses (recomputed, then overwritten).
const DISK_SCHEMA: &str = "ap1000plus.cached";
const DISK_VERSION: u64 = 1;

/// LRU of complete report bodies, with optional write-through to disk.
pub struct ResultCache {
    /// key -> report bytes.
    map: HashMap<u64, Vec<u8>>,
    /// Keys in recency order, most recent last. Small (≤ capacity), so
    /// the O(n) reposition on hit is noise next to a simulation run.
    order: Vec<u64>,
    capacity: usize,
    dir: Option<PathBuf>,
    /// Evictions performed since construction (memory tier only).
    pub evictions: u64,
    /// Total bytes held by the memory tier.
    bytes: usize,
}

impl ResultCache {
    /// `capacity` is the memory-tier entry cap (≥ 1); `dir`, when given,
    /// enables the persistent tier (created on first store).
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            order: Vec::new(),
            capacity: capacity.max(1),
            dir,
            evictions: 0,
            bytes: 0,
        }
    }

    pub fn entries(&self) -> usize {
        self.map.len()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push(key);
    }

    fn disk_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", key_hex(key))))
    }

    /// Looks `key` up in memory, then on disk. A disk hit is promoted
    /// into the memory tier.
    pub fn get(&mut self, key: u64) -> Option<(Vec<u8>, CacheTier)> {
        if let Some(body) = self.map.get(&key) {
            let body = body.clone();
            self.touch(key);
            return Some((body, CacheTier::Memory));
        }
        let path = self.disk_path(key)?;
        let raw = std::fs::read(&path).ok()?;
        let body = decode_disk_entry(&raw, key)?;
        self.insert_memory(key, body.clone());
        Some((body, CacheTier::Disk))
    }

    fn insert_memory(&mut self, key: u64, body: Vec<u8>) {
        if let Some(old) = self.map.insert(key, body) {
            self.bytes -= old.len();
        }
        self.bytes += self.map[&key].len();
        self.touch(key);
        while self.map.len() > self.capacity {
            let victim = self.order.remove(0);
            if let Some(old) = self.map.remove(&victim) {
                self.bytes -= old.len();
            }
            self.evictions += 1;
        }
    }

    /// Stores a freshly computed report under `key`, writing through to
    /// the disk tier if one is configured. Disk write failures are
    /// returned for logging but do not poison the memory entry.
    pub fn put(&mut self, key: u64, canonical_request: &str, body: &[u8]) -> Result<(), String> {
        self.insert_memory(key, body.to_vec());
        let Some(path) = self.disk_path(key) else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        let report = std::str::from_utf8(body)
            .map_err(|_| "report is not UTF-8; disk tier skipped".to_string())?;
        let request = Json::parse(canonical_request)
            .map_err(|e| format!("canonical request does not reparse: {e}"))?;
        let envelope = Json::obj([
            ("schema", Json::from(DISK_SCHEMA)),
            ("version", Json::from(DISK_VERSION)),
            ("key", Json::from(key_hex(key))),
            ("request", request),
            ("report", Json::from(report)),
        ]);
        aputil::write_atomic(&path, envelope.to_string().as_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))
    }
}

/// Validates and unwraps one on-disk envelope; `None` means "treat as
/// miss" (corrupt, truncated, wrong schema, or key mismatch).
fn decode_disk_entry(raw: &[u8], key: u64) -> Option<Vec<u8>> {
    let text = std::str::from_utf8(raw).ok()?;
    let doc = Json::parse(text).ok()?;
    if doc.get("schema")?.as_str()? != DISK_SCHEMA {
        return None;
    }
    if doc.get("version")?.as_u64()? != DISK_VERSION {
        return None;
    }
    if doc.get("key")?.as_str()? != key_hex(key) {
        return None;
    }
    Some(doc.get("report")?.as_str()?.as_bytes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("apserve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2, None);
        c.put(1, "{}", b"one").unwrap();
        c.put(2, "{}", b"two").unwrap();
        assert!(c.get(1).is_some()); // 1 now most recent
        c.put(3, "{}", b"three").unwrap(); // evicts 2
        assert_eq!(c.evictions, 1);
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1).unwrap().0, b"one");
        assert_eq!(c.get(3).unwrap().0, b"three");
        assert_eq!(c.bytes(), "one".len() + "three".len());
    }

    #[test]
    fn disk_tier_survives_a_new_cache_and_promotes() {
        let dir = tmpdir("disk");
        let mut c = ResultCache::new(4, Some(dir.clone()));
        c.put(7, r#"{"kind":"sleep","ms":1}"#, b"report-bytes")
            .unwrap();

        // Fresh cache over the same directory: memory is cold, disk hits.
        let mut c2 = ResultCache::new(4, Some(dir.clone()));
        let (body, tier) = c2.get(7).unwrap();
        assert_eq!(body, b"report-bytes");
        assert_eq!(tier, CacheTier::Disk);
        // Promoted: second lookup is a memory hit.
        assert_eq!(c2.get(7).unwrap().1, CacheTier::Memory);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_entries_are_misses() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        for garbage in [
            &b"not json at all"[..],
            br#"{"schema":"wrong","version":1,"key":"0000000000000009","report":"x"}"#,
            br#"{"schema":"ap1000plus.cached","version":99,"key":"0000000000000009","report":"x"}"#,
            br#"{"schema":"ap1000plus.cached","version":1,"key":"ffffffffffffffff","report":"x"}"#,
            br#"{"schema":"ap1000plus.cached","version":1,"key":"0000000000000009""#,
        ] {
            std::fs::write(dir.join(format!("{}.json", key_hex(9))), garbage).unwrap();
            let mut c = ResultCache::new(4, Some(dir.clone()));
            assert!(c.get(9).is_none(), "{garbage:?} should be a miss");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_cache_recomputes_after_eviction() {
        let mut c = ResultCache::new(1, None);
        c.put(1, "{}", b"a").unwrap();
        c.put(2, "{}", b"b").unwrap();
        assert!(c.get(1).is_none(), "no disk tier: eviction means miss");
    }
}

//! Minimal HTTP/1.1 machinery over `std::net` — no external crates.
//!
//! The server speaks the smallest useful subset of HTTP/1.1:
//! `Connection: close` on every exchange (one request per connection, so
//! file descriptors cannot pile up behind idle keep-alives), explicit
//! `Content-Length` bodies, and hard input limits. Every limit violation
//! is a structured [`HttpError`] that the serving layer renders as a
//! JSON error document — a hostile or confused client gets a diagnosis,
//! never a panic, a hang, or unbounded memory growth.

use std::io::{BufRead, Write};

/// Largest accepted request body, in bytes. Requests are small JSON
/// documents; a megabyte is already two orders of magnitude of headroom.
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Largest accepted request line or single header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 << 10;
/// Most header lines accepted in one request.
pub const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    pub method: String,
    /// Path exactly as sent (no query-string splitting; the API does not
    /// use queries).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one HTTP status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or length field (HTTP 400).
    BadRequest(String),
    /// Body longer than [`MAX_BODY_BYTES`] (HTTP 413).
    TooLarge { declared: usize, limit: usize },
    /// Socket error or timeout mid-request.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Io(m) => write!(f, "i/o: {m}"),
        }
    }
}

fn read_line(r: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = std::io::Read::read(r, &mut byte).map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Io("connection closed mid-line".into()));
        }
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::BadRequest(format!(
                "line exceeds the {MAX_LINE_BYTES}-byte limit"
            )));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::BadRequest("line is not UTF-8".into()))
}

/// Reads one complete request (request line, headers, `Content-Length`
/// body) off the stream.
pub fn read_request(r: &mut impl BufRead) -> Result<HttpRequest, HttpError> {
    let request_line = read_line(r)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line '{request_line}'"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol '{version}'"
        )));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::BadRequest(format!(
                "more than {MAX_HEADERS} header lines"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "chunked request bodies are not supported; send Content-Length".into(),
        ));
    }
    if let Some(len) = req.header("content-length") {
        let declared: usize = len.parse().map_err(|_| {
            HttpError::BadRequest(format!("Content-Length is not a number: '{len}'"))
        })?;
        if declared > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge {
                declared,
                limit: MAX_BODY_BYTES,
            });
        }
        let mut body = vec![0u8; declared];
        std::io::Read::read_exact(r, &mut body).map_err(|e| HttpError::Io(e.to_string()))?;
        req.body = body;
    }
    Ok(req)
}

/// A response about to be written. `Connection: close` is implied.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with no extra headers.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into(),
        }
    }
}

/// The standard reason phrase for the handful of statuses the API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes `resp` (with `Content-Length`) onto the stream.
pub fn write_response(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    )?;
    for (k, v) in &resp.headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(&resp.body)?;
    w.flush()
}

/// Writes the header block of a streamed (NDJSON, no `Content-Length`)
/// response; the caller then writes newline-terminated lines and relies
/// on `Connection: close` to delimit the body.
pub fn write_stream_header(w: &mut impl Write, extra: &[(String, String)]) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n"
    )?;
    for (k, v) in extra {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"rest")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/submit");
        assert_eq!(req.body, b"{\"a\"");
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse(b"GARBAGE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies_and_bad_lengths() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(HttpError::TooLarge { .. })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_header_floods() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&raw), Err(HttpError::BadRequest(_))));
        let long = format!(
            "GET / HTTP/1.1\r\nh: {}\r\n\r\n",
            "x".repeat(MAX_LINE_BYTES)
        );
        assert!(matches!(
            parse(long.as_bytes()),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn response_round_trip_shape() {
        let mut out = Vec::new();
        let mut resp = Response::json(429, r#"{"error":"queue_full"}"#);
        resp.headers.push(("Retry-After".into(), "1".into()));
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"queue_full\"}"));
    }
}

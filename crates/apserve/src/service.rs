//! The job engine: bounded worker pool, single-flight deduplication,
//! crash containment, and the cache/backpressure decision — everything
//! below the HTTP layer, so all of it is testable without a socket.
//!
//! One lock ([`Service::inner`]) guards the cache, the in-flight table,
//! the queue, the child-process registry, and the poison set, so the
//! submit decision — *poisoned? hit? join? enqueue? reject?* — is
//! atomic. The invariants the integration suite pins:
//!
//! - **Single-flight**: at most one execution per content address is
//!   ever in flight; concurrent identical submissions join it
//!   (`runs == misses` for successful jobs, always).
//! - **Bounded**: the queue never exceeds `queue_cap`; beyond that,
//!   submissions are rejected *immediately* with a structured error —
//!   the server's memory is bounded by `queue_cap`, not by clients.
//! - **Byte-stable**: a cached result is returned verbatim, so cold and
//!   cached responses are identical bytes — and so are sandboxed and
//!   in-process responses, because the worker envelope transports the
//!   executor's output through one exact JSON round trip.
//! - **Contained**: with a sandbox configured, a job that panics,
//!   aborts, OOMs, or overruns its deadline kills *its own process*;
//!   the server answers with a structured error and keeps serving.
//!   A crashed (not cleanly-failed) job is retried once with backoff;
//!   if it crashes again its key is poisoned — subsequent submissions
//!   get a structured 422 instead of another turn on the pool.

use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use apobs::CacheCounters;
use aputil::Json;

use crate::cache::{CacheTier, ResultCache};
use crate::request::{CanonRequest, Kind};
use crate::worker::{ChildSlot, KillReason, RunOutcome, SandboxConfig};

/// Computes one job: canonical request in, complete report document
/// out. Injected by the binary that owns the simulators (`apbench`),
/// keeping this crate free of a dependency cycle. Must be pure in the
/// caching sense: same canonical request ⇒ same bytes.
pub type Executor = Arc<dyn Fn(&CanonRequest) -> Result<String, String> + Send + Sync>;

/// Most keys the crash-loop breaker remembers; beyond this the oldest
/// poisoned key is forgotten (and would have to crash-loop again to
/// re-trip). Bounds a hostile client's ability to grow server memory.
const POISON_CAP: usize = 1024;

/// Server/service configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads executing (or supervising) jobs.
    pub workers: usize,
    /// Jobs admitted but not yet running; beyond this, reject.
    pub queue_cap: usize,
    /// Memory-tier cache capacity, in entries.
    pub cache_entries: usize,
    /// Disk-tier directory; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Disk-tier byte budget with LRU eviction; `None` = unbounded.
    pub disk_cache_bytes: Option<u64>,
    /// Accept `kind:"sleep"` test jobs. Off in production.
    pub allow_sleep: bool,
    /// Process isolation policy; `None` runs jobs in-process (PR 9
    /// behaviour, plus panic containment via `catch_unwind`).
    pub sandbox: Option<SandboxConfig>,
    /// How long `shutdown` waits for in-flight jobs to finish before
    /// killing their worker processes.
    pub drain_ms: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 8,
            cache_entries: 64,
            cache_dir: None,
            disk_cache_bytes: None,
            allow_sleep: false,
            sandbox: None,
            drain_ms: 2_000,
        }
    }
}

/// How a job failed — each variant maps to one structured HTTP error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job ran to completion and reported an error of its own
    /// (unknown app, unreadable trace...). `500 job_failed`.
    Failed(String),
    /// The worker process (or, in-process, the worker thread's
    /// `catch_unwind`) died without a result. `500 job_crashed`.
    Crashed { status: String, stderr_tail: String },
    /// Killed for exceeding the per-job deadline. `504 job_timeout`.
    Timeout { deadline_ms: u64 },
    /// The key tripped the crash-loop breaker. `422 job_poisoned`.
    Poisoned { crashes: u32 },
    /// The server is shutting down. `503 job_canceled`.
    Canceled(String),
}

impl JobError {
    /// The machine-readable `error` field of the response document.
    pub fn code(&self) -> &'static str {
        match self {
            JobError::Failed(_) => "job_failed",
            JobError::Crashed { .. } => "job_crashed",
            JobError::Timeout { .. } => "job_timeout",
            JobError::Poisoned { .. } => "job_poisoned",
            JobError::Canceled(_) => "job_canceled",
        }
    }

    pub fn http_status(&self) -> u16 {
        match self {
            JobError::Failed(_) | JobError::Crashed { .. } => 500,
            JobError::Timeout { .. } => 504,
            JobError::Poisoned { .. } => 422,
            JobError::Canceled(_) => 503,
        }
    }

    /// The structured error document (HTTP body).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("error", Json::from(self.code())),
            ("detail", Json::from(self.to_string())),
        ];
        match self {
            JobError::Crashed {
                status,
                stderr_tail,
            } => {
                fields.push(("exit_status", Json::from(status.as_str())));
                fields.push(("stderr_tail", Json::from(stderr_tail.as_str())));
            }
            JobError::Timeout { deadline_ms } => {
                fields.push(("deadline_ms", Json::from(*deadline_ms)));
            }
            JobError::Poisoned { crashes } => {
                fields.push(("crashes", Json::from(u64::from(*crashes))));
            }
            JobError::Failed(_) | JobError::Canceled(_) => {}
        }
        Json::obj(fields)
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Failed(msg) | JobError::Canceled(msg) => write!(f, "{msg}"),
            JobError::Crashed { status, .. } => write!(f, "worker crashed: {status}"),
            JobError::Timeout { deadline_ms } => {
                write!(f, "job exceeded the {deadline_ms} ms deadline and was killed")
            }
            JobError::Poisoned { crashes } => write!(
                f,
                "request key is poisoned after {crashes} crashed executions"
            ),
        }
    }
}

/// The streaming waiter's client disconnected mid-stream; the job
/// itself keeps running (other waiters, and the cache, still want it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientGone;

/// One admitted job, shared by its executing worker and every waiter
/// that joined it.
pub struct Job {
    pub request: CanonRequest,
    state: Mutex<JobState>,
    done_cv: Condvar,
}

struct JobState {
    /// Progress lines appended as the job advances; waiters stream them.
    progress: Vec<String>,
    /// `Some` once finished: the report bytes or a structured failure.
    outcome: Option<Result<Vec<u8>, JobError>>,
}

impl Job {
    fn new(request: CanonRequest) -> Arc<Job> {
        Arc::new(Job {
            request,
            state: Mutex::new(JobState {
                progress: vec!["queued".to_string()],
                outcome: None,
            }),
            done_cv: Condvar::new(),
        })
    }

    fn push_progress(&self, line: &str) {
        let mut st = self.state.lock().unwrap();
        st.progress.push(line.to_string());
        self.done_cv.notify_all();
    }

    fn complete(&self, outcome: Result<Vec<u8>, JobError>) {
        let mut st = self.state.lock().unwrap();
        st.progress
            .push(if outcome.is_ok() { "done" } else { "failed" }.to_string());
        st.outcome = Some(outcome);
        self.done_cv.notify_all();
    }

    /// Blocks until the job finishes; returns report bytes or failure.
    pub fn wait(&self) -> Result<Vec<u8>, JobError> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(outcome) = &st.outcome {
                return outcome.clone();
            }
            st = self.done_cv.wait(st).unwrap();
        }
    }

    /// Streaming wait: hands each progress line past `seen` to `emit`,
    /// then returns the outcome. `emit` returning `Err(ClientGone)`
    /// stops the stream early without affecting the job.
    pub fn wait_streaming(
        &self,
        mut emit: impl FnMut(&str) -> Result<(), ClientGone>,
    ) -> Result<Result<Vec<u8>, JobError>, ClientGone> {
        let mut seen = 0usize;
        let mut st = self.state.lock().unwrap();
        loop {
            while seen < st.progress.len() {
                let line = st.progress[seen].clone();
                seen += 1;
                // Drop the lock while the client socket is written to.
                drop(st);
                emit(&line)?;
                st = self.state.lock().unwrap();
            }
            if let Some(outcome) = &st.outcome {
                return Ok(outcome.clone());
            }
            st = self.done_cv.wait(st).unwrap();
        }
    }
}

/// What `submit` decided, atomically, under one lock.
pub enum Submission {
    /// Served from cache: the exact bytes a cold run would produce.
    Done { body: Vec<u8>, tier: CacheTier },
    /// Admitted (or joined onto an identical in-flight job).
    Pending { job: Arc<Job>, joined: bool },
    /// Queue full — structured backpressure, client should retry later.
    Rejected { queued: usize, capacity: usize },
    /// The key crash-looped and is poisoned — structured 422, no run.
    Poisoned { crashes: u32 },
}

struct Inner {
    cache: ResultCache,
    /// Content address -> the one job currently computing it.
    inflight: HashMap<u64, Arc<Job>>,
    queue: VecDeque<Arc<Job>>,
    /// Content address -> the live child computing it (sandbox mode);
    /// this is what the shutdown drain kills.
    children: HashMap<u64, Arc<ChildSlot>>,
    /// Crash-loop breaker: key -> total crashed executions. Bounded by
    /// [`POISON_CAP`] (oldest key forgotten first).
    poisoned: HashMap<u64, u32>,
    poison_order: VecDeque<u64>,
    counters: CacheCounters,
    shutdown: bool,
}

/// The engine. Construct with [`Service::new`], then attach workers via
/// [`Service::spawn_workers`].
pub struct Service {
    pub cfg: Config,
    inner: Mutex<Inner>,
    work_cv: Condvar,
    executor: Executor,
    /// Serializes [`Service::shutdown`]: the first caller drains, every
    /// concurrent caller blocks here until the drain has finished (the
    /// flag records "drained"). Without this a foreground server could
    /// observe the shutdown flag and exit the process mid-drain.
    drain_lock: Mutex<bool>,
}

/// A point-in-time `/stats` snapshot.
#[derive(Clone, Debug)]
pub struct Stats {
    pub counters: CacheCounters,
    pub in_flight: usize,
    pub queue_depth: usize,
    pub cache_entries: usize,
    pub cache_bytes: usize,
    pub disk_entries: usize,
    pub disk_bytes: u64,
    pub workers: usize,
    pub queue_capacity: usize,
    pub poisoned_keys: usize,
    pub children: usize,
    pub sandbox: bool,
}

/// The report document for a `kind:"sleep"` job — shared with `repro
/// job-exec` so sandboxed and in-process sleep results are identical.
pub fn sleep_report(ms: u64) -> String {
    Json::obj([
        ("schema", Json::from("ap1000plus.sleep")),
        ("version", Json::from(1u64)),
        ("slept_ms", Json::from(ms)),
    ])
    .to_string()
}

impl Service {
    pub fn new(cfg: Config, executor: Executor) -> Arc<Service> {
        let cache = ResultCache::new(cfg.cache_entries, cfg.cache_dir.clone(), cfg.disk_cache_bytes);
        Arc::new(Service {
            cfg,
            inner: Mutex::new(Inner {
                cache,
                inflight: HashMap::new(),
                queue: VecDeque::new(),
                children: HashMap::new(),
                poisoned: HashMap::new(),
                poison_order: VecDeque::new(),
                counters: CacheCounters::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            executor,
            drain_lock: Mutex::new(false),
        })
    }

    /// Starts the worker pool; returns the join handles.
    pub fn spawn_workers(self: &Arc<Service>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|i| {
                let svc = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("apserve-worker-{i}"))
                    .spawn(move || svc.worker_loop())
                    .expect("spawn worker")
            })
            .collect()
    }

    /// The atomic admit decision: poisoned, cache hit, join, enqueue,
    /// or reject.
    pub fn submit(&self, request: CanonRequest) -> Submission {
        let key = request.key;
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Submission::Rejected {
                queued: inner.queue.len(),
                capacity: 0,
            };
        }
        // The breaker outranks the cache: a poisoned key has never been
        // cached as success (only Ok results are stored), and answering
        // 422 here keeps repeat crashers off the pool entirely.
        if let Some(&crashes) = inner.poisoned.get(&key) {
            inner.counters.poison_rejects += 1;
            return Submission::Poisoned { crashes };
        }
        if let Some((body, tier)) = inner.cache.get(key) {
            match tier {
                CacheTier::Memory => inner.counters.hits += 1,
                CacheTier::Disk => inner.counters.disk_hits += 1,
            }
            inner.counters.evictions = inner.cache.evictions;
            return Submission::Done { body, tier };
        }
        if let Some(job) = inner.inflight.get(&key).map(Arc::clone) {
            inner.counters.joins += 1;
            return Submission::Pending { job, joined: true };
        }
        if inner.queue.len() >= self.cfg.queue_cap {
            inner.counters.rejected += 1;
            return Submission::Rejected {
                queued: inner.queue.len(),
                capacity: self.cfg.queue_cap,
            };
        }
        inner.counters.misses += 1;
        let job = Job::new(request);
        inner.inflight.insert(key, Arc::clone(&job));
        inner.queue.push_back(Arc::clone(&job));
        drop(inner);
        self.work_cv.notify_one();
        Submission::Pending { job, joined: false }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some(job) = inner.queue.pop_front() {
                        break job;
                    }
                    if inner.shutdown {
                        return;
                    }
                    inner = self.work_cv.wait(inner).unwrap();
                }
            };
            job.push_progress("started");
            let result = self.run_with_retry(&job);
            let mut inner = self.inner.lock().unwrap();
            let key = job.request.key;
            if let Ok(body) = &result {
                inner.counters.runs += 1;
                if let Err(e) = inner.cache.put(key, &job.request.text, body) {
                    // The memory tier took the entry; only persistence
                    // failed. Log and carry on — correctness is a
                    // recompute, not an error.
                    eprintln!("apserve: disk cache write failed: {e}");
                }
                inner.counters.evictions = inner.cache.evictions;
                inner.counters.disk_evictions = inner.cache.disk_evictions;
            }
            inner.inflight.remove(&key);
            drop(inner);
            job.complete(result);
        }
    }

    /// Executes a job to its final verdict, applying the crash policy:
    /// a crashed (not cleanly-failed, not timed-out) execution gets
    /// `retries` deterministic retries with linear backoff; when the
    /// last one also crashes, the key is poisoned. Timeouts neither
    /// retry (the deadline would just burn twice) nor poison (slow is
    /// not crash-looping); clean failures pass straight through.
    fn run_with_retry(&self, job: &Arc<Job>) -> Result<Vec<u8>, JobError> {
        let (retries, backoff_ms) = match &self.cfg.sandbox {
            Some(s) => (s.retries, s.retry_backoff_ms),
            None => (1, 100),
        };
        let mut attempt: u32 = 0;
        loop {
            match self.execute_once(job) {
                RunOutcome::Ok(body) => return Ok(body),
                RunOutcome::CleanFail(msg) => {
                    self.inner.lock().unwrap().counters.failures += 1;
                    return Err(JobError::Failed(msg));
                }
                RunOutcome::Timeout { deadline_ms } => {
                    let mut inner = self.inner.lock().unwrap();
                    inner.counters.timeouts += 1;
                    inner.counters.kills += 1;
                    return Err(JobError::Timeout { deadline_ms });
                }
                RunOutcome::Canceled => {
                    self.inner.lock().unwrap().counters.failures += 1;
                    return Err(JobError::Canceled(
                        "job killed by server shutdown".to_string(),
                    ));
                }
                RunOutcome::Crashed {
                    status,
                    stderr_tail,
                } => {
                    self.inner.lock().unwrap().counters.crashed += 1;
                    if attempt < retries && !self.is_shutdown() {
                        attempt += 1;
                        self.inner.lock().unwrap().counters.job_retries += 1;
                        job.push_progress(&format!(
                            "crashed ({status}); retrying ({attempt}/{retries})"
                        ));
                        std::thread::sleep(Duration::from_millis(
                            backoff_ms.saturating_mul(u64::from(attempt)),
                        ));
                        continue;
                    }
                    self.poison(job.request.key, attempt + 1);
                    return Err(JobError::Crashed {
                        status,
                        stderr_tail,
                    });
                }
            }
        }
    }

    /// One execution attempt, sandboxed or in-process.
    fn execute_once(&self, job: &Arc<Job>) -> RunOutcome {
        let request = &job.request;
        // The sleep gate is server policy, enforced before any process
        // is spawned; the child itself always honours sleep requests.
        if request.kind == Kind::Sleep && !self.cfg.allow_sleep {
            return RunOutcome::CleanFail("sleep jobs are disabled on this server".to_string());
        }
        match &self.cfg.sandbox {
            Some(sandbox) => self.execute_sandboxed(sandbox, request),
            None => self.execute_inproc(request),
        }
    }

    fn execute_sandboxed(&self, sandbox: &SandboxConfig, request: &CanonRequest) -> RunOutcome {
        if self.is_shutdown() {
            return RunOutcome::Canceled;
        }
        let key = request.key;
        let outcome = crate::worker::run_job(sandbox, &request.text, |slot| {
            self.inner.lock().unwrap().children.insert(key, slot);
        });
        self.inner.lock().unwrap().children.remove(&key);
        outcome
    }

    /// In-process execution with panic containment: a panicking
    /// executor becomes [`RunOutcome::Crashed`] — same retry and
    /// breaker policy as a sandboxed crash, it just can't survive
    /// `abort(2)` or enforce deadlines (that needs `sandbox`).
    fn execute_inproc(&self, request: &CanonRequest) -> RunOutcome {
        let run = || -> Result<String, String> {
            if request.kind == Kind::Sleep {
                let ms = request.field("ms").and_then(Json::as_u64).unwrap_or(0);
                match request.field("crash").and_then(Json::as_str) {
                    Some("panic") => {
                        std::thread::sleep(Duration::from_millis(ms));
                        panic!("injected panic (crash=\"panic\")");
                    }
                    Some("abort") => {
                        return Err(
                            "crash=\"abort\" requires sandbox mode (--sandbox)".to_string()
                        )
                    }
                    _ => {}
                }
                std::thread::sleep(Duration::from_millis(ms));
                return Ok(sleep_report(ms));
            }
            (self.executor)(request)
        };
        match std::panic::catch_unwind(AssertUnwindSafe(run)) {
            Ok(Ok(body)) => RunOutcome::Ok(body.into_bytes()),
            Ok(Err(msg)) => RunOutcome::CleanFail(msg),
            Err(payload) => RunOutcome::Crashed {
                status: "panic in worker thread".to_string(),
                stderr_tail: panic_message(payload.as_ref()),
            },
        }
    }

    /// Trips the breaker for `key`, evicting the oldest poisoned key
    /// if the set is at capacity.
    fn poison(&self, key: u64, crashes: u32) {
        let mut inner = self.inner.lock().unwrap();
        if inner.poisoned.len() >= POISON_CAP && !inner.poisoned.contains_key(&key) {
            if let Some(old) = inner.poison_order.pop_front() {
                inner.poisoned.remove(&old);
            }
        }
        if inner.poisoned.insert(key, crashes).is_none() {
            inner.poison_order.push_back(key);
        }
    }

    /// Graceful drain: refuse new work, fail everything still queued,
    /// give running jobs `drain_ms` to finish, then kill the remaining
    /// worker processes and wait (bounded) for their reaping — so a
    /// stopped server leaves no orphan processes behind.
    ///
    /// Safe to call from multiple threads: the first caller drains,
    /// everyone else blocks until that drain is complete. This is what
    /// lets a foreground server exit the process only *after* the drain
    /// has actually finished, whichever thread started it.
    pub fn shutdown(&self) {
        let mut drained = self.drain_lock.lock().unwrap();
        if !*drained {
            self.drain();
            *drained = true;
        }
    }

    fn drain(&self) {
        self.inner.lock().unwrap().shutdown = true;
        let drained: Vec<Arc<Job>> = {
            let mut inner = self.inner.lock().unwrap();
            inner.queue.drain(..).collect()
        };
        for job in &drained {
            let mut inner = self.inner.lock().unwrap();
            inner.inflight.remove(&job.request.key);
            inner.counters.failures += 1;
            drop(inner);
            job.complete(Err(JobError::Canceled("server shutting down".to_string())));
        }
        self.work_cv.notify_all();

        // Phase 1: let in-flight jobs finish on their own.
        let drain_deadline = Instant::now() + Duration::from_millis(self.cfg.drain_ms);
        while Instant::now() < drain_deadline {
            if self.inner.lock().unwrap().inflight.is_empty() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Phase 2: kill whatever is still running in a child process.
        let slots: Vec<Arc<ChildSlot>> = {
            let mut inner = self.inner.lock().unwrap();
            let slots: Vec<_> = inner.children.values().map(Arc::clone).collect();
            inner.counters.kills += slots.len() as u64;
            slots
        };
        for slot in &slots {
            slot.kill(KillReason::Drain);
        }
        if slots.is_empty() {
            // In-process stragglers can't be killed; the worker join in
            // the server's stop path bounds what happens next.
            return;
        }
        // Phase 3: bounded wait for the supervisors to reap the kills.
        let reap_deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < reap_deadline {
            let inner = self.inner.lock().unwrap();
            if inner.inflight.is_empty() {
                return;
            }
            // Close the register-after-sweep race: kill any child that
            // appeared since phase 2 (idempotent on dead children).
            for slot in inner.children.values() {
                slot.kill(KillReason::Drain);
            }
            drop(inner);
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Whether [`Service::shutdown`] has run (e.g. via `POST /shutdown`).
    pub fn is_shutdown(&self) -> bool {
        self.inner.lock().unwrap().shutdown
    }

    pub fn stats(&self) -> Stats {
        let inner = self.inner.lock().unwrap();
        Stats {
            counters: inner.counters.clone(),
            in_flight: inner.inflight.len(),
            queue_depth: inner.queue.len(),
            cache_entries: inner.cache.entries(),
            cache_bytes: inner.cache.bytes(),
            disk_entries: inner.cache.disk_entries(),
            disk_bytes: inner.cache.disk_bytes(),
            workers: self.cfg.workers,
            queue_capacity: self.cfg.queue_cap,
            poisoned_keys: inner.poisoned.len(),
            children: inner.children.len(),
            sandbox: self.cfg.sandbox.is_some(),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::parse_request;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// An executor that counts invocations and echoes the request key.
    fn counting_executor(counter: Arc<AtomicU64>) -> Executor {
        Arc::new(move |req: &CanonRequest| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(format!(r#"{{"echo":"{}"}}"#, req.key_hex()))
        })
    }

    fn req(body: &str) -> CanonRequest {
        parse_request(body.as_bytes()).unwrap()
    }

    fn svc(cfg: Config, runs: Arc<AtomicU64>) -> (Arc<Service>, Vec<std::thread::JoinHandle<()>>) {
        let svc = Service::new(cfg, counting_executor(runs));
        let workers = svc.spawn_workers();
        (svc, workers)
    }

    fn finish(svc: Arc<Service>, workers: Vec<std::thread::JoinHandle<()>>) {
        svc.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn cold_then_hit_is_byte_identical_and_runs_once() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(Config::default(), Arc::clone(&runs));
        let cold = match svc.submit(req(r#"{"kind":"bench","apps":["EP"]}"#)) {
            Submission::Pending { job, joined } => {
                assert!(!joined);
                job.wait().unwrap()
            }
            _ => panic!("expected pending"),
        };
        let hit = match svc.submit(req(r#"{"apps":["EP"],"kind":"bench"}"#)) {
            Submission::Done { body, tier } => {
                assert_eq!(tier, CacheTier::Memory);
                body
            }
            _ => panic!("expected cache hit"),
        };
        assert_eq!(cold, hit, "cached bytes must equal cold bytes");
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        let st = svc.stats();
        assert_eq!(
            (st.counters.misses, st.counters.hits, st.counters.runs),
            (1, 1, 1)
        );
        finish(svc, workers);
    }

    #[test]
    fn identical_concurrent_submissions_single_flight() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(
            Config {
                allow_sleep: true,
                ..Config::default()
            },
            Arc::clone(&runs),
        );
        // A slow job: both submissions overlap its execution window.
        let first = match svc.submit(req(r#"{"kind":"sleep","ms":300}"#)) {
            Submission::Pending { job, joined } => {
                assert!(!joined);
                job
            }
            _ => panic!("expected pending"),
        };
        // Give the worker a moment to dequeue it, then submit the twin.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let second = match svc.submit(req(r#"{"kind":"sleep","ms":300}"#)) {
            Submission::Pending { job, joined } => {
                assert!(joined, "identical in-flight request must join");
                job
            }
            _ => panic!("expected join"),
        };
        assert!(Arc::ptr_eq(&first, &second), "joined the same job object");
        let a = first.wait().unwrap();
        let b = second.wait().unwrap();
        assert_eq!(a, b);
        let st = svc.stats();
        assert_eq!(st.counters.joins, 1);
        assert_eq!(st.counters.misses, st.counters.runs);
        finish(svc, workers);
    }

    #[test]
    fn full_queue_rejects_with_capacity() {
        let runs = Arc::new(AtomicU64::new(0));
        // One worker, one queue slot, slow jobs: the third distinct
        // submission must bounce.
        let (svc, workers) = svc(
            Config {
                workers: 1,
                queue_cap: 1,
                allow_sleep: true,
                ..Config::default()
            },
            Arc::clone(&runs),
        );
        let j1 = match svc.submit(req(r#"{"kind":"sleep","ms":400}"#)) {
            Submission::Pending { job, .. } => job,
            _ => panic!("expected pending"),
        };
        // Wait until the worker has picked up job 1 (queue empty again).
        while svc.stats().queue_depth > 0 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let j2 = match svc.submit(req(r#"{"kind":"sleep","ms":401}"#)) {
            Submission::Pending { job, .. } => job,
            _ => panic!("expected pending"),
        };
        match svc.submit(req(r#"{"kind":"sleep","ms":402}"#)) {
            Submission::Rejected { queued, capacity } => {
                assert_eq!((queued, capacity), (1, 1));
            }
            _ => panic!("expected rejection"),
        }
        j1.wait().unwrap();
        j2.wait().unwrap();
        assert_eq!(svc.stats().counters.rejected, 1);
        finish(svc, workers);
    }

    #[test]
    fn eviction_recomputes_byte_identically() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(
            Config {
                cache_entries: 1,
                ..Config::default()
            },
            Arc::clone(&runs),
        );
        let run = |body: &str| match svc.submit(req(body)) {
            Submission::Pending { job, .. } => job.wait().unwrap(),
            Submission::Done { body, .. } => body,
            _ => panic!("rejected"),
        };
        let first = run(r#"{"kind":"bench","apps":["EP"]}"#);
        run(r#"{"kind":"bench","apps":["MatMul"]}"#); // evicts EP
        let again = run(r#"{"kind":"bench","apps":["EP"]}"#); // recompute
        assert_eq!(first, again, "recomputed result must be byte-identical");
        assert_eq!(runs.load(Ordering::SeqCst), 3);
        let st = svc.stats();
        assert_eq!(st.counters.evictions, 2);
        assert_eq!(st.counters.hits, 0);
        finish(svc, workers);
    }

    #[test]
    fn executor_failures_are_reported_not_cached() {
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let exec: Executor = Arc::new(move |_req| {
            calls2.fetch_add(1, Ordering::SeqCst);
            Err("workload exploded".to_string())
        });
        let svc = Service::new(Config::default(), exec);
        let workers = svc.spawn_workers();
        for _ in 0..2 {
            match svc.submit(req(r#"{"kind":"bench","apps":["EP"]}"#)) {
                Submission::Pending { job, .. } => {
                    let err = job.wait().unwrap_err();
                    assert_eq!(err, JobError::Failed("workload exploded".to_string()));
                    assert_eq!(err.code(), "job_failed");
                }
                _ => panic!("failures must not be cached"),
            }
        }
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(svc.stats().counters.failures, 2);
        finish(svc, workers);
    }

    #[test]
    fn sleep_is_refused_unless_enabled() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(Config::default(), runs);
        match svc.submit(req(r#"{"kind":"sleep","ms":1}"#)) {
            Submission::Pending { job, .. } => {
                assert!(job.wait().unwrap_err().to_string().contains("disabled"));
            }
            _ => panic!("expected pending"),
        }
        finish(svc, workers);
    }

    #[test]
    fn progress_streams_queued_started_done() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(Config::default(), runs);
        let job = match svc.submit(req(r#"{"kind":"bench","apps":["EP"]}"#)) {
            Submission::Pending { job, .. } => job,
            _ => panic!("expected pending"),
        };
        let mut lines = Vec::new();
        let outcome = job
            .wait_streaming(|line| {
                lines.push(line.to_string());
                Ok(())
            })
            .unwrap();
        assert!(outcome.is_ok());
        assert_eq!(lines, ["queued", "started", "done"]);
        finish(svc, workers);
    }

    #[test]
    fn panicking_executor_is_contained_retried_and_poisons_the_key() {
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let exec: Executor = Arc::new(move |_req| {
            calls2.fetch_add(1, Ordering::SeqCst);
            panic!("simulated simulator bug");
        });
        let svc = Service::new(Config::default(), exec);
        let workers = svc.spawn_workers();
        let body = r#"{"kind":"bench","apps":["EP"]}"#;
        match svc.submit(req(body)) {
            Submission::Pending { job, .. } => match job.wait().unwrap_err() {
                JobError::Crashed {
                    status,
                    stderr_tail,
                } => {
                    assert!(status.contains("panic"), "{status}");
                    assert!(stderr_tail.contains("simulated simulator bug"));
                }
                other => panic!("expected Crashed, got {other:?}"),
            },
            _ => panic!("expected pending"),
        }
        // One retry happened: the executor ran twice for one submit.
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let st = svc.stats();
        assert_eq!(st.counters.crashed, 2);
        assert_eq!(st.counters.job_retries, 1);
        assert_eq!(st.poisoned_keys, 1, "final crash poisons the key");
        finish(svc, workers);
    }

    #[test]
    fn poisoned_key_is_rejected_without_running() {
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let exec: Executor = Arc::new(move |_req| {
            calls2.fetch_add(1, Ordering::SeqCst);
            panic!("always crashes");
        });
        let svc = Service::new(Config::default(), exec);
        let workers = svc.spawn_workers();
        let body = r#"{"kind":"bench","apps":["EP"]}"#;
        match svc.submit(req(body)) {
            Submission::Pending { job, .. } => {
                assert!(matches!(job.wait().unwrap_err(), JobError::Crashed { .. }));
            }
            _ => panic!("expected pending"),
        }
        // Same key again: the breaker answers, the executor does not run.
        let before = calls.load(Ordering::SeqCst);
        match svc.submit(req(body)) {
            Submission::Poisoned { crashes } => assert_eq!(crashes, 2),
            _ => panic!("expected poisoned"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), before);
        let st = svc.stats();
        assert_eq!(st.counters.poison_rejects, 1);
        assert_eq!(st.poisoned_keys, 1);
        // A *different* key still runs (and also crashes — but it ran).
        match svc.submit(req(r#"{"kind":"bench","apps":["CG"]}"#)) {
            Submission::Pending { job, .. } => {
                let _ = job.wait();
            }
            _ => panic!("expected pending"),
        }
        assert!(calls.load(Ordering::SeqCst) > before);
        finish(svc, workers);
    }

    #[test]
    fn error_documents_are_structured() {
        let crashed = JobError::Crashed {
            status: "killed by signal 9".to_string(),
            stderr_tail: "oom".to_string(),
        };
        assert_eq!(crashed.http_status(), 500);
        let j = crashed.to_json();
        assert_eq!(j.get("error").and_then(Json::as_str), Some("job_crashed"));
        assert_eq!(
            j.get("exit_status").and_then(Json::as_str),
            Some("killed by signal 9")
        );
        assert_eq!(j.get("stderr_tail").and_then(Json::as_str), Some("oom"));

        let timeout = JobError::Timeout { deadline_ms: 250 };
        assert_eq!(timeout.http_status(), 504);
        assert_eq!(
            timeout.to_json().get("deadline_ms").and_then(Json::as_u64),
            Some(250)
        );

        let poisoned = JobError::Poisoned { crashes: 2 };
        assert_eq!(poisoned.http_status(), 422);
        assert_eq!(
            poisoned.to_json().get("crashes").and_then(Json::as_u64),
            Some(2)
        );
    }
}

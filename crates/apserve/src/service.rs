//! The job engine: bounded worker pool, single-flight deduplication,
//! and the cache/backpressure decision — everything below the HTTP
//! layer, so all of it is testable without a socket.
//!
//! One lock ([`Service::inner`]) guards the cache, the in-flight table,
//! and the queue, so the submit decision — *hit? join? enqueue?
//! reject?* — is atomic. The invariants the integration suite pins:
//!
//! - **Single-flight**: at most one execution per content address is
//!   ever in flight; concurrent identical submissions join it
//!   (`runs == misses`, always).
//! - **Bounded**: the queue never exceeds `queue_cap`; beyond that,
//!   submissions are rejected *immediately* with a structured error —
//!   the server's memory is bounded by `queue_cap`, not by clients.
//! - **Byte-stable**: a cached result is returned verbatim, so cold and
//!   cached responses are identical bytes.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use apobs::CacheCounters;

use crate::cache::{CacheTier, ResultCache};
use crate::request::CanonRequest;

/// Computes one job: canonical request in, complete report document
/// out. Injected by the binary that owns the simulators (`apbench`),
/// keeping this crate free of a dependency cycle. Must be pure in the
/// caching sense: same canonical request ⇒ same bytes.
pub type Executor = Arc<dyn Fn(&CanonRequest) -> Result<String, String> + Send + Sync>;

/// Server/service configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Jobs admitted but not yet running; beyond this, reject.
    pub queue_cap: usize,
    /// Memory-tier cache capacity, in entries.
    pub cache_entries: usize,
    /// Disk-tier directory; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Accept `kind:"sleep"` test jobs. Off in production.
    pub allow_sleep: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 8,
            cache_entries: 64,
            cache_dir: None,
            allow_sleep: false,
        }
    }
}

/// The streaming waiter's client disconnected mid-stream; the job
/// itself keeps running (other waiters, and the cache, still want it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientGone;

/// One admitted job, shared by its executing worker and every waiter
/// that joined it.
pub struct Job {
    pub request: CanonRequest,
    state: Mutex<JobState>,
    done_cv: Condvar,
}

struct JobState {
    /// Progress lines appended as the job advances; waiters stream them.
    progress: Vec<String>,
    /// `Some` once finished: the report bytes or a failure message.
    outcome: Option<Result<Vec<u8>, String>>,
}

impl Job {
    fn new(request: CanonRequest) -> Arc<Job> {
        Arc::new(Job {
            request,
            state: Mutex::new(JobState {
                progress: vec!["queued".to_string()],
                outcome: None,
            }),
            done_cv: Condvar::new(),
        })
    }

    fn push_progress(&self, line: &str) {
        let mut st = self.state.lock().unwrap();
        st.progress.push(line.to_string());
        self.done_cv.notify_all();
    }

    fn complete(&self, outcome: Result<Vec<u8>, String>) {
        let mut st = self.state.lock().unwrap();
        st.progress
            .push(if outcome.is_ok() { "done" } else { "failed" }.to_string());
        st.outcome = Some(outcome);
        self.done_cv.notify_all();
    }

    /// Blocks until the job finishes; returns report bytes or failure.
    pub fn wait(&self) -> Result<Vec<u8>, String> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(outcome) = &st.outcome {
                return outcome.clone();
            }
            st = self.done_cv.wait(st).unwrap();
        }
    }

    /// Streaming wait: hands each progress line past `seen` to `emit`,
    /// then returns the outcome. `emit` returning `Err(ClientGone)`
    /// stops the stream early without affecting the job.
    pub fn wait_streaming(
        &self,
        mut emit: impl FnMut(&str) -> Result<(), ClientGone>,
    ) -> Result<Result<Vec<u8>, String>, ClientGone> {
        let mut seen = 0usize;
        let mut st = self.state.lock().unwrap();
        loop {
            while seen < st.progress.len() {
                let line = st.progress[seen].clone();
                seen += 1;
                // Drop the lock while the client socket is written to.
                drop(st);
                emit(&line)?;
                st = self.state.lock().unwrap();
            }
            if let Some(outcome) = &st.outcome {
                return Ok(outcome.clone());
            }
            st = self.done_cv.wait(st).unwrap();
        }
    }
}

/// What `submit` decided, atomically, under one lock.
pub enum Submission {
    /// Served from cache: the exact bytes a cold run would produce.
    Done { body: Vec<u8>, tier: CacheTier },
    /// Admitted (or joined onto an identical in-flight job).
    Pending { job: Arc<Job>, joined: bool },
    /// Queue full — structured backpressure, client should retry later.
    Rejected { queued: usize, capacity: usize },
}

struct Inner {
    cache: ResultCache,
    /// Content address -> the one job currently computing it.
    inflight: HashMap<u64, Arc<Job>>,
    queue: VecDeque<Arc<Job>>,
    counters: CacheCounters,
    shutdown: bool,
}

/// The engine. Construct with [`Service::new`], then attach workers via
/// [`Service::spawn_workers`].
pub struct Service {
    pub cfg: Config,
    inner: Mutex<Inner>,
    work_cv: Condvar,
    executor: Executor,
}

/// A point-in-time `/stats` snapshot.
#[derive(Clone, Debug)]
pub struct Stats {
    pub counters: CacheCounters,
    pub in_flight: usize,
    pub queue_depth: usize,
    pub cache_entries: usize,
    pub cache_bytes: usize,
    pub workers: usize,
    pub queue_capacity: usize,
}

impl Service {
    pub fn new(cfg: Config, executor: Executor) -> Arc<Service> {
        let cache = ResultCache::new(cfg.cache_entries, cfg.cache_dir.clone());
        Arc::new(Service {
            cfg,
            inner: Mutex::new(Inner {
                cache,
                inflight: HashMap::new(),
                queue: VecDeque::new(),
                counters: CacheCounters::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            executor,
        })
    }

    /// Starts the worker pool; returns the join handles.
    pub fn spawn_workers(self: &Arc<Service>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|i| {
                let svc = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("apserve-worker-{i}"))
                    .spawn(move || svc.worker_loop())
                    .expect("spawn worker")
            })
            .collect()
    }

    /// The atomic admit decision: cache hit, join, enqueue, or reject.
    pub fn submit(&self, request: CanonRequest) -> Submission {
        let key = request.key;
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Submission::Rejected {
                queued: inner.queue.len(),
                capacity: 0,
            };
        }
        if let Some((body, tier)) = inner.cache.get(key) {
            match tier {
                CacheTier::Memory => inner.counters.hits += 1,
                CacheTier::Disk => inner.counters.disk_hits += 1,
            }
            inner.counters.evictions = inner.cache.evictions;
            return Submission::Done { body, tier };
        }
        if let Some(job) = inner.inflight.get(&key).map(Arc::clone) {
            inner.counters.joins += 1;
            return Submission::Pending { job, joined: true };
        }
        if inner.queue.len() >= self.cfg.queue_cap {
            inner.counters.rejected += 1;
            return Submission::Rejected {
                queued: inner.queue.len(),
                capacity: self.cfg.queue_cap,
            };
        }
        inner.counters.misses += 1;
        let job = Job::new(request);
        inner.inflight.insert(key, Arc::clone(&job));
        inner.queue.push_back(Arc::clone(&job));
        drop(inner);
        self.work_cv.notify_one();
        Submission::Pending { job, joined: false }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some(job) = inner.queue.pop_front() {
                        break job;
                    }
                    if inner.shutdown {
                        return;
                    }
                    inner = self.work_cv.wait(inner).unwrap();
                }
            };
            job.push_progress("started");
            let result = self.execute(&job.request);
            let mut inner = self.inner.lock().unwrap();
            let key = job.request.key;
            match &result {
                Ok(body) => {
                    inner.counters.runs += 1;
                    if let Err(e) = inner.cache.put(key, &job.request.text, body.as_bytes()) {
                        // The memory tier took the entry; only persistence
                        // failed. Log and carry on — correctness is a
                        // recompute, not an error.
                        eprintln!("apserve: disk cache write failed: {e}");
                    }
                    inner.counters.evictions = inner.cache.evictions;
                }
                Err(_) => inner.counters.failures += 1,
            }
            inner.inflight.remove(&key);
            drop(inner);
            job.complete(result.map(String::into_bytes));
        }
    }

    fn execute(&self, request: &CanonRequest) -> Result<String, String> {
        if request.kind == crate::request::Kind::Sleep {
            if !self.cfg.allow_sleep {
                return Err("sleep jobs are disabled on this server".to_string());
            }
            let ms = request
                .field("ms")
                .and_then(aputil::Json::as_u64)
                .unwrap_or(0);
            std::thread::sleep(std::time::Duration::from_millis(ms));
            return Ok(aputil::Json::obj([
                ("schema", aputil::Json::from("ap1000plus.sleep")),
                ("version", aputil::Json::from(1u64)),
                ("slept_ms", aputil::Json::from(ms)),
            ])
            .to_string());
        }
        (self.executor)(request)
    }

    /// Flips the shutdown flag, fails everything still queued, and wakes
    /// the workers so they can exit.
    pub fn shutdown(&self) {
        let drained: Vec<Arc<Job>> = {
            let mut inner = self.inner.lock().unwrap();
            inner.shutdown = true;
            inner.queue.drain(..).collect()
        };
        for job in &drained {
            let mut inner = self.inner.lock().unwrap();
            inner.inflight.remove(&job.request.key);
            inner.counters.failures += 1;
            drop(inner);
            job.complete(Err("server shutting down".to_string()));
        }
        self.work_cv.notify_all();
    }

    /// Whether [`Service::shutdown`] has run (e.g. via `POST /shutdown`).
    pub fn is_shutdown(&self) -> bool {
        self.inner.lock().unwrap().shutdown
    }

    pub fn stats(&self) -> Stats {
        let inner = self.inner.lock().unwrap();
        Stats {
            counters: inner.counters.clone(),
            in_flight: inner.inflight.len(),
            queue_depth: inner.queue.len(),
            cache_entries: inner.cache.entries(),
            cache_bytes: inner.cache.bytes(),
            workers: self.cfg.workers,
            queue_capacity: self.cfg.queue_cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::parse_request;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// An executor that counts invocations and echoes the request key.
    fn counting_executor(counter: Arc<AtomicU64>) -> Executor {
        Arc::new(move |req: &CanonRequest| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(format!(r#"{{"echo":"{}"}}"#, req.key_hex()))
        })
    }

    fn req(body: &str) -> CanonRequest {
        parse_request(body.as_bytes()).unwrap()
    }

    fn svc(cfg: Config, runs: Arc<AtomicU64>) -> (Arc<Service>, Vec<std::thread::JoinHandle<()>>) {
        let svc = Service::new(cfg, counting_executor(runs));
        let workers = svc.spawn_workers();
        (svc, workers)
    }

    fn finish(svc: Arc<Service>, workers: Vec<std::thread::JoinHandle<()>>) {
        svc.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn cold_then_hit_is_byte_identical_and_runs_once() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(Config::default(), Arc::clone(&runs));
        let cold = match svc.submit(req(r#"{"kind":"bench","apps":["EP"]}"#)) {
            Submission::Pending { job, joined } => {
                assert!(!joined);
                job.wait().unwrap()
            }
            _ => panic!("expected pending"),
        };
        let hit = match svc.submit(req(r#"{"apps":["EP"],"kind":"bench"}"#)) {
            Submission::Done { body, tier } => {
                assert_eq!(tier, CacheTier::Memory);
                body
            }
            _ => panic!("expected cache hit"),
        };
        assert_eq!(cold, hit, "cached bytes must equal cold bytes");
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        let st = svc.stats();
        assert_eq!(
            (st.counters.misses, st.counters.hits, st.counters.runs),
            (1, 1, 1)
        );
        finish(svc, workers);
    }

    #[test]
    fn identical_concurrent_submissions_single_flight() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(
            Config {
                allow_sleep: true,
                ..Config::default()
            },
            Arc::clone(&runs),
        );
        // A slow job: both submissions overlap its execution window.
        let first = match svc.submit(req(r#"{"kind":"sleep","ms":300}"#)) {
            Submission::Pending { job, joined } => {
                assert!(!joined);
                job
            }
            _ => panic!("expected pending"),
        };
        // Give the worker a moment to dequeue it, then submit the twin.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let second = match svc.submit(req(r#"{"kind":"sleep","ms":300}"#)) {
            Submission::Pending { job, joined } => {
                assert!(joined, "identical in-flight request must join");
                job
            }
            _ => panic!("expected join"),
        };
        assert!(Arc::ptr_eq(&first, &second), "joined the same job object");
        let a = first.wait().unwrap();
        let b = second.wait().unwrap();
        assert_eq!(a, b);
        let st = svc.stats();
        assert_eq!(st.counters.joins, 1);
        assert_eq!(st.counters.misses, st.counters.runs);
        finish(svc, workers);
    }

    #[test]
    fn full_queue_rejects_with_capacity() {
        let runs = Arc::new(AtomicU64::new(0));
        // One worker, one queue slot, slow jobs: the third distinct
        // submission must bounce.
        let (svc, workers) = svc(
            Config {
                workers: 1,
                queue_cap: 1,
                allow_sleep: true,
                ..Config::default()
            },
            Arc::clone(&runs),
        );
        let j1 = match svc.submit(req(r#"{"kind":"sleep","ms":400}"#)) {
            Submission::Pending { job, .. } => job,
            _ => panic!("expected pending"),
        };
        // Wait until the worker has picked up job 1 (queue empty again).
        while svc.stats().queue_depth > 0 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let j2 = match svc.submit(req(r#"{"kind":"sleep","ms":401}"#)) {
            Submission::Pending { job, .. } => job,
            _ => panic!("expected pending"),
        };
        match svc.submit(req(r#"{"kind":"sleep","ms":402}"#)) {
            Submission::Rejected { queued, capacity } => {
                assert_eq!((queued, capacity), (1, 1));
            }
            _ => panic!("expected rejection"),
        }
        j1.wait().unwrap();
        j2.wait().unwrap();
        assert_eq!(svc.stats().counters.rejected, 1);
        finish(svc, workers);
    }

    #[test]
    fn eviction_recomputes_byte_identically() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(
            Config {
                cache_entries: 1,
                ..Config::default()
            },
            Arc::clone(&runs),
        );
        let run = |body: &str| match svc.submit(req(body)) {
            Submission::Pending { job, .. } => job.wait().unwrap(),
            Submission::Done { body, .. } => body,
            Submission::Rejected { .. } => panic!("rejected"),
        };
        let first = run(r#"{"kind":"bench","apps":["EP"]}"#);
        run(r#"{"kind":"bench","apps":["MatMul"]}"#); // evicts EP
        let again = run(r#"{"kind":"bench","apps":["EP"]}"#); // recompute
        assert_eq!(first, again, "recomputed result must be byte-identical");
        assert_eq!(runs.load(Ordering::SeqCst), 3);
        let st = svc.stats();
        assert_eq!(st.counters.evictions, 2);
        assert_eq!(st.counters.hits, 0);
        finish(svc, workers);
    }

    #[test]
    fn executor_failures_are_reported_not_cached() {
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let exec: Executor = Arc::new(move |_req| {
            calls2.fetch_add(1, Ordering::SeqCst);
            Err("workload exploded".to_string())
        });
        let svc = Service::new(Config::default(), exec);
        let workers = svc.spawn_workers();
        for _ in 0..2 {
            match svc.submit(req(r#"{"kind":"bench","apps":["EP"]}"#)) {
                Submission::Pending { job, .. } => {
                    assert_eq!(job.wait().unwrap_err(), "workload exploded");
                }
                _ => panic!("failures must not be cached"),
            }
        }
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(svc.stats().counters.failures, 2);
        finish(svc, workers);
    }

    #[test]
    fn sleep_is_refused_unless_enabled() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(Config::default(), runs);
        match svc.submit(req(r#"{"kind":"sleep","ms":1}"#)) {
            Submission::Pending { job, .. } => {
                assert!(job.wait().unwrap_err().contains("disabled"));
            }
            _ => panic!("expected pending"),
        }
        finish(svc, workers);
    }

    #[test]
    fn progress_streams_queued_started_done() {
        let runs = Arc::new(AtomicU64::new(0));
        let (svc, workers) = svc(Config::default(), runs);
        let job = match svc.submit(req(r#"{"kind":"bench","apps":["EP"]}"#)) {
            Submission::Pending { job, .. } => job,
            _ => panic!("expected pending"),
        };
        let mut lines = Vec::new();
        let outcome = job
            .wait_streaming(|line| {
                lines.push(line.to_string());
                Ok(())
            })
            .unwrap();
        assert!(outcome.is_ok());
        assert_eq!(lines, ["queued", "started", "done"]);
        finish(svc, workers);
    }
}

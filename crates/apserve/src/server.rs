//! The HTTP front end: accept loop, routing, and response shaping over
//! [`crate::service::Service`].
//!
//! Response-shaping rule that the cache-correctness suite pins: cache
//! status travels in the `X-Cache` header (`miss`, `hit`, `disk-hit`,
//! `join`), **never** in the body — so a cached response body is
//! byte-for-byte the cold response body.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aputil::Json;

use crate::http::{
    read_request, write_response, write_stream_header, HttpError, HttpRequest, Response,
};
use crate::service::{Config, Executor, Service, Stats, Submission};

/// Per-connection socket deadline: a stalled or vanished client cannot
/// hold a handler thread (and its file descriptor) forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(120);

/// A running server: the bound address plus shutdown/join machinery.
pub struct ServerHandle {
    /// Actual bound address (resolves port 0).
    pub addr: SocketAddr,
    service: Arc<Service>,
    stopping: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Stops accepting, fails queued jobs, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.service.shutdown();
        // Poke the blocking accept() with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    pub fn stats(&self) -> Stats {
        self.service.stats()
    }

    /// True once the service has been asked to stop — by a local
    /// [`ServerHandle::shutdown`] or a client's `POST /shutdown`. Lets a
    /// foreground `repro serve` turn a remote shutdown into process exit.
    pub fn shutting_down(&self) -> bool {
        self.stopping.load(Ordering::SeqCst) || self.service.is_shutdown()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `cfg.addr`, starts the worker pool and accept loop, and
/// returns immediately.
pub fn serve(cfg: Config, executor: Executor) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let service = Service::new(cfg, executor);
    let workers = service.spawn_workers();
    let stopping = Arc::new(AtomicBool::new(false));
    let open_connections = Arc::new(AtomicUsize::new(0));

    let svc = Arc::clone(&service);
    let stop = Arc::clone(&stopping);
    let accept_thread = std::thread::Builder::new()
        .name("apserve-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let svc = Arc::clone(&svc);
                let gauge = Arc::clone(&open_connections);
                gauge.fetch_add(1, Ordering::SeqCst);
                // Detached handler thread per connection; bounded in
                // practice by Connection: close + the socket deadline.
                let _ = std::thread::Builder::new()
                    .name("apserve-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(&svc, stream, &gauge);
                        gauge.fetch_sub(1, Ordering::SeqCst);
                    });
            }
        })
        .expect("spawn accept loop");

    Ok(ServerHandle {
        addr,
        service,
        stopping,
        accept_thread: Some(accept_thread),
        workers,
    })
}

fn error_body(error: &str, detail: &str) -> Vec<u8> {
    Json::obj([("error", Json::from(error)), ("detail", Json::from(detail))])
        .to_string()
        .into_bytes()
}

fn handle_connection(
    svc: &Service,
    stream: TcpStream,
    gauge: &Arc<AtomicUsize>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let req = match read_request(&mut reader) {
        Ok(req) => req,
        Err(HttpError::Io(_)) => return Ok(()), // client vanished; nothing to say
        Err(HttpError::BadRequest(m)) => {
            return write_response(
                &mut writer,
                &Response::json(400, error_body("bad_request", &m)),
            );
        }
        Err(e @ HttpError::TooLarge { .. }) => {
            return write_response(
                &mut writer,
                &Response::json(413, error_body("payload_too_large", &e.to_string())),
            );
        }
    };
    route(svc, &req, &mut writer, gauge)
}

fn route(
    svc: &Service,
    req: &HttpRequest,
    w: &mut TcpStream,
    gauge: &Arc<AtomicUsize>,
) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let st = svc.stats();
            let doc = Json::obj([
                ("status", Json::from("ok")),
                ("sandbox", Json::Bool(st.sandbox)),
                ("workers", Json::from(st.workers)),
                ("poisoned_keys", Json::from(st.poisoned_keys)),
            ]);
            write_response(w, &Response::json(200, doc.to_string().into_bytes()))
        }
        ("GET", "/stats") => {
            let doc = stats_json(svc, gauge.load(Ordering::SeqCst));
            write_response(w, &Response::json(200, doc.to_string().into_bytes()))
        }
        ("POST", "/submit") => submit(svc, req, w),
        ("POST", "/shutdown") => {
            // Acknowledge *before* draining: the drain can take up to
            // `drain_ms` plus the reap window, and the client should not
            // have its response truncated by the process exiting the
            // moment the drain completes.
            let sent = write_response(
                w,
                &Response::json(200, br#"{"status":"stopping"}"#.to_vec()),
            );
            svc.shutdown();
            sent
        }
        (_, "/healthz" | "/stats" | "/submit" | "/shutdown") => write_response(
            w,
            &Response::json(
                405,
                error_body(
                    "method_not_allowed",
                    &format!("{} is not supported on {}", req.method, req.path),
                ),
            ),
        ),
        _ => write_response(
            w,
            &Response::json(
                404,
                error_body("not_found", &format!("no route for {}", req.path)),
            ),
        ),
    }
}

fn stats_json(svc: &Service, open_connections: usize) -> Json {
    let st = svc.stats();
    Json::obj([
        ("schema", Json::from("ap1000plus.servestats")),
        ("version", Json::from(1u64)),
        ("cache", st.counters.to_json()),
        (
            "gauges",
            Json::obj([
                ("in_flight", Json::from(st.in_flight)),
                ("queue_depth", Json::from(st.queue_depth)),
                ("cache_entries", Json::from(st.cache_entries)),
                ("cache_bytes", Json::from(st.cache_bytes)),
                ("open_connections", Json::from(open_connections)),
                ("workers", Json::from(st.workers)),
                ("queue_capacity", Json::from(st.queue_capacity)),
                ("disk_entries", Json::from(st.disk_entries)),
                ("disk_bytes", Json::from(st.disk_bytes)),
                ("poisoned_keys", Json::from(st.poisoned_keys)),
                ("children", Json::from(st.children)),
                ("sandbox", Json::Bool(st.sandbox)),
            ]),
        ),
    ])
}

fn submit(svc: &Service, req: &HttpRequest, w: &mut TcpStream) -> std::io::Result<()> {
    let canon = match crate::request::parse_request(&req.body) {
        Ok(c) => c,
        Err(e) => {
            return write_response(
                w,
                &Response::json(400, e.to_json().to_string().into_bytes()),
            );
        }
    };
    let key = canon.key_hex();
    let stream = canon.stream;
    match svc.submit(canon) {
        Submission::Done { body, tier } => {
            let status = match tier {
                crate::cache::CacheTier::Memory => "hit",
                crate::cache::CacheTier::Disk => "disk-hit",
            };
            if stream {
                // A streamed hit has no progress to narrate: the stream
                // is just the final report line.
                let extra = vec![
                    ("X-Cache".to_string(), status.to_string()),
                    ("X-Key".to_string(), key.clone()),
                ];
                write_stream_header(w, &extra)?;
                w.write_all(&body)?;
                w.write_all(b"\n")?;
                w.flush()
            } else {
                finish(w, &key, status, Ok(body))
            }
        }
        Submission::Pending { job, joined } => {
            let status = if joined { "join" } else { "miss" };
            if stream {
                // NDJSON: progress lines as they happen, then the final
                // report line. Headers go out first so the client sees
                // the stream start before the job finishes.
                let extra = vec![
                    ("X-Cache".to_string(), status.to_string()),
                    ("X-Key".to_string(), key.clone()),
                ];
                write_stream_header(w, &extra)?;
                let outcome = job.wait_streaming(|line| {
                    let doc = Json::obj([("progress", Json::from(line))]);
                    writeln!(w, "{doc}")
                        .and_then(|()| w.flush())
                        .map_err(|_| crate::service::ClientGone)
                });
                let Ok(outcome) = outcome else {
                    return Ok(()); // client went away mid-stream
                };
                let line = match outcome {
                    Ok(body) => {
                        // Reports are compact JSON (single line) by
                        // construction; stream it as the final record.
                        String::from_utf8(body)
                            .unwrap_or_else(|_| r#"{"error":"non-utf8 report"}"#.to_string())
                    }
                    Err(e) => e.to_json().to_string(),
                };
                writeln!(w, "{line}")?;
                w.flush()
            } else {
                finish(w, &key, status, job.wait())
            }
        }
        Submission::Poisoned { crashes } => {
            let err = crate::service::JobError::Poisoned { crashes };
            let mut resp =
                Response::json(err.http_status(), err.to_json().to_string().into_bytes());
            resp.headers.push(("X-Key".to_string(), key));
            write_response(w, &resp)
        }
        Submission::Rejected { queued, capacity } => {
            let body = Json::obj([
                ("error", Json::from("queue_full")),
                ("queued", Json::from(queued)),
                ("capacity", Json::from(capacity)),
                (
                    "detail",
                    Json::from("worker queue is at capacity; retry after a job finishes"),
                ),
            ]);
            let mut resp = Response::json(429, body.to_string().into_bytes());
            resp.headers
                .push(("Retry-After".to_string(), "1".to_string()));
            write_response(w, &resp)
        }
    }
}

/// Writes the terminal response for a non-streamed submit. Cache status
/// rides in `X-Cache`; the body is exactly the report bytes.
fn finish(
    w: &mut TcpStream,
    key: &str,
    cache_status: &str,
    outcome: Result<Vec<u8>, crate::service::JobError>,
) -> std::io::Result<()> {
    let mut resp = match outcome {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::json(e.http_status(), e.to_json().to_string().into_bytes()),
    };
    resp.headers
        .push(("X-Cache".to_string(), cache_status.to_string()));
    resp.headers.push(("X-Key".to_string(), key.to_string()));
    write_response(w, &resp)
}

//! The process-isolated worker sandbox: one self-exec'd child per job.
//!
//! In sandbox mode the service does not run simulations on its own
//! threads. Each admitted job spawns the configured worker command
//! (`repro job-exec` in production — the server re-executing itself in
//! a hidden mode), writes the *canonical* request document to the
//! child's stdin, and reads a versioned result envelope back from its
//! stdout. The supervisor in this module turns every way a child can
//! die into a structured verdict:
//!
//! - clean exit + well-formed envelope → the report bytes (or the
//!   job's own failure message) — **byte-identical** to what in-process
//!   execution would have produced, because the envelope transports the
//!   executor's output string verbatim through one JSON round trip;
//! - wall-clock deadline exceeded → SIGKILL + [`RunOutcome::Timeout`];
//! - panic, abort, OOM-kill, or any other nonzero/signal death →
//!   [`RunOutcome::Crashed`] carrying [`aputil::exit_desc`] and a
//!   bounded stderr tail;
//! - killed by the shutdown drain → [`RunOutcome::Canceled`].
//!
//! The supervisor never blocks in `wait(2)`: it polls `try_wait` every
//! [`POLL_INTERVAL`] while dedicated threads drain stdout (unbounded —
//! it is the report) and stderr (bounded by [`STDERR_TAIL_BYTES`]), so
//! a child that fills a pipe and stalls still hits the deadline.

use std::io::{Read, Write};
use std::process::Child;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use aputil::{exit_desc, spawn_limited, Json, TailBuf};

/// Result-envelope schema the child writes on stdout; bump the version
/// and old workers read as crashed (malformed envelope), never as a
/// silently misparsed report.
pub const RESULT_SCHEMA: &str = "ap1000plus.jobresult";
pub const RESULT_VERSION: u64 = 1;

/// How often the supervisor polls the child for exit and the deadline.
const POLL_INTERVAL: Duration = Duration::from_millis(10);
/// Bytes of child stderr retained for the `job_crashed` document.
pub const STDERR_TAIL_BYTES: usize = 2048;

/// Sandbox policy: what to run and how hard to contain it.
#[derive(Clone, Debug)]
pub struct SandboxConfig {
    /// Worker command: program plus leading arguments (the canonical
    /// request arrives on the child's stdin). `repro serve --sandbox`
    /// passes `[current_exe, "job-exec"]`.
    pub cmd: Vec<String>,
    /// Per-job wall-clock deadline; exceeding it is a kill + 504.
    pub job_timeout_ms: u64,
    /// Address-space ceiling for the child (best-effort `ulimit -v`).
    pub mem_limit_bytes: Option<u64>,
    /// Crashed executions retried before the breaker trips (the
    /// deterministic "one retry with backoff" is `1`).
    pub retries: u32,
    /// Backoff before retry attempt `n` is `retry_backoff_ms * n`.
    pub retry_backoff_ms: u64,
}

impl SandboxConfig {
    /// Sandbox with production defaults: 10-minute deadline, no memory
    /// ceiling, one retry after 100 ms.
    pub fn new(cmd: Vec<String>) -> SandboxConfig {
        SandboxConfig {
            cmd,
            job_timeout_ms: 600_000,
            mem_limit_bytes: None,
            retries: 1,
            retry_backoff_ms: 100,
        }
    }
}

/// Why the supervisor killed a child.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillReason {
    /// The per-job wall-clock deadline expired.
    Deadline,
    /// The server is shutting down and the drain deadline passed.
    Drain,
}

/// A handle to a running child that both the supervising worker thread
/// and the shutdown drain can reach: the worker polls it for exit, the
/// drain kills through it. First kill wins; the reason is remembered so
/// the reaper can tell a deadline kill from a drain kill.
pub struct ChildSlot {
    state: Mutex<SlotState>,
}

struct SlotState {
    child: Child,
    killed: Option<KillReason>,
}

impl ChildSlot {
    fn new(child: Child) -> Arc<ChildSlot> {
        Arc::new(ChildSlot {
            state: Mutex::new(SlotState {
                child,
                killed: None,
            }),
        })
    }

    /// SIGKILLs the child (idempotent; the first reason sticks).
    pub fn kill(&self, reason: KillReason) {
        let mut st = self.state.lock().unwrap();
        if st.killed.is_none() {
            st.killed = Some(reason);
        }
        let _ = st.child.kill();
    }

    /// The child's OS pid (valid until reaped).
    pub fn pid(&self) -> u32 {
        self.state.lock().unwrap().child.id()
    }

    /// Non-blocking reap attempt; `Some` once the child has exited.
    fn try_wait(&self) -> (Option<std::process::ExitStatus>, Option<KillReason>) {
        let mut st = self.state.lock().unwrap();
        (st.child.try_wait().ok().flatten(), st.killed)
    }
}

/// The verdict on one sandboxed execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Clean exit, `ok: true` envelope: the report bytes.
    Ok(Vec<u8>),
    /// Clean exit, `ok: false` envelope: the job failed on its own
    /// terms (unknown app, unreadable trace, ...). Not a crash.
    CleanFail(String),
    /// The process died without delivering a result.
    Crashed { status: String, stderr_tail: String },
    /// Killed by the supervisor for exceeding the deadline.
    Timeout { deadline_ms: u64 },
    /// Killed by the shutdown drain.
    Canceled,
}

/// Spawns the worker command for one job and supervises it to a
/// [`RunOutcome`]. `register` publishes the live [`ChildSlot`] (so the
/// drain can kill it); the slot is valid until this function returns.
pub fn run_job(
    cfg: &SandboxConfig,
    request_text: &str,
    register: impl FnOnce(Arc<ChildSlot>),
) -> RunOutcome {
    let Some((program, args)) = cfg.cmd.split_first() else {
        return RunOutcome::CleanFail("sandbox worker command is empty".to_string());
    };
    let mut child = match spawn_limited(program, args, cfg.mem_limit_bytes) {
        Ok(c) => c,
        Err(e) => return RunOutcome::CleanFail(format!("cannot spawn worker '{program}': {e}")),
    };
    // Take the pipes before the child is shared; the slot only needs
    // the process handle for kill/try_wait.
    let stdin = child.stdin.take();
    let stdout = child.stdout.take();
    let stderr = child.stderr.take();
    let slot = ChildSlot::new(child);
    register(Arc::clone(&slot));

    // Feed the canonical request. A write error just means the child
    // died before reading — the reaper below will report the crash.
    if let Some(mut w) = stdin {
        let _ = w.write_all(request_text.as_bytes());
        // Dropping w closes the pipe: the child's stdin read sees EOF.
    }

    // Drain both pipes concurrently so a chatty child can never stall
    // against a full pipe while the supervisor waits for it to exit.
    let out_thread = std::thread::spawn(move || {
        let mut buf = Vec::new();
        if let Some(mut r) = stdout {
            let _ = r.read_to_end(&mut buf);
        }
        buf
    });
    let err_thread = std::thread::spawn(move || {
        let mut tail = TailBuf::new(STDERR_TAIL_BYTES);
        if let Some(mut r) = stderr {
            let mut chunk = [0u8; 1024];
            loop {
                match r.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => tail.push(&chunk[..n]),
                }
            }
        }
        tail
    });

    let started = Instant::now();
    let deadline = Duration::from_millis(cfg.job_timeout_ms);
    let (status, killed) = loop {
        let (status, killed) = slot.try_wait();
        if let Some(status) = status {
            break (status, killed);
        }
        if killed.is_none() && started.elapsed() >= deadline {
            slot.kill(KillReason::Deadline);
        }
        std::thread::sleep(POLL_INTERVAL);
    };
    // A killed child's output is not consulted, so don't join the
    // reader threads for it: surviving grandchildren could hold the
    // pipes open long after the kill, and the verdict must not wait on
    // them. The detached readers exit on their own once the pipes close.
    match killed {
        Some(KillReason::Deadline) => {
            return RunOutcome::Timeout {
                deadline_ms: cfg.job_timeout_ms,
            }
        }
        Some(KillReason::Drain) => return RunOutcome::Canceled,
        None => {}
    }
    let stdout_bytes = out_thread.join().unwrap_or_default();
    let stderr_tail = err_thread
        .join()
        .unwrap_or_else(|_| TailBuf::new(STDERR_TAIL_BYTES));

    if !status.success() {
        return RunOutcome::Crashed {
            status: exit_desc(&status),
            stderr_tail: stderr_tail.render(),
        };
    }
    match decode_envelope(&stdout_bytes) {
        Ok(Ok(report)) => RunOutcome::Ok(report),
        Ok(Err(error)) => RunOutcome::CleanFail(error),
        Err(detail) => RunOutcome::Crashed {
            status: format!("{} with a malformed result envelope", exit_desc(&status)),
            stderr_tail: if stderr_tail.is_empty() {
                detail
            } else {
                stderr_tail.render()
            },
        },
    }
}

/// Encodes a job result as the one-line stdout envelope `repro
/// job-exec` writes. The report travels as a JSON string, so arbitrary
/// report bytes round-trip exactly (reports are UTF-8 by construction).
pub fn result_envelope(result: &Result<String, String>) -> String {
    let mut fields = vec![
        ("schema", Json::from(RESULT_SCHEMA)),
        ("version", Json::from(RESULT_VERSION)),
        ("ok", Json::Bool(result.is_ok())),
    ];
    match result {
        Ok(report) => fields.push(("report", Json::from(report.as_str()))),
        Err(error) => fields.push(("error", Json::from(error.as_str()))),
    }
    Json::obj(fields).to_string()
}

/// Decodes the child's stdout back into the job result. The outer `Err`
/// means the envelope itself is unusable (truncated stdout, wrong
/// schema/version, stray output) — the supervisor treats that as a
/// crash, because a worker that cannot speak the protocol delivered
/// nothing trustworthy.
pub fn decode_envelope(stdout: &[u8]) -> Result<Result<Vec<u8>, String>, String> {
    let text = std::str::from_utf8(stdout).map_err(|_| "stdout is not UTF-8".to_string())?;
    let doc = Json::parse(text.trim_end()).map_err(|e| format!("stdout is not a result envelope: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some(RESULT_SCHEMA) {
        return Err("missing or wrong envelope schema".to_string());
    }
    if doc.get("version").and_then(Json::as_u64) != Some(RESULT_VERSION) {
        return Err("unsupported envelope version".to_string());
    }
    match doc.get("ok").and_then(Json::as_bool) {
        Some(true) => {
            let report = doc
                .get("report")
                .and_then(Json::as_str)
                .ok_or("ok envelope without a report")?;
            Ok(Ok(report.as_bytes().to_vec()))
        }
        Some(false) => {
            let error = doc
                .get("error")
                .and_then(Json::as_str)
                .ok_or("failure envelope without an error")?;
            Ok(Err(error.to_string()))
        }
        None => Err("envelope without an ok field".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> SandboxConfig {
        SandboxConfig {
            cmd: vec!["/bin/sh".into(), "-c".into(), script.into()],
            job_timeout_ms: 5_000,
            mem_limit_bytes: None,
            retries: 1,
            retry_backoff_ms: 1,
        }
    }

    #[test]
    fn envelope_round_trips_reports_and_errors() {
        let ok = Ok(r#"{"schema":"ap1000plus.bench","rows":[1,2]}"#.to_string());
        let enc = result_envelope(&ok);
        assert_eq!(
            decode_envelope(enc.as_bytes()).unwrap().unwrap(),
            ok.unwrap().into_bytes()
        );
        let fail: Result<String, String> = Err("no such app \"Zap\"".to_string());
        let enc = result_envelope(&fail);
        assert_eq!(
            decode_envelope(enc.as_bytes()).unwrap().unwrap_err(),
            "no such app \"Zap\""
        );
        // Garbage stdout is a protocol error, not a report.
        assert!(decode_envelope(b"Segmentation fault").is_err());
        assert!(decode_envelope(br#"{"schema":"wrong","version":1,"ok":true}"#).is_err());
    }

    #[test]
    fn clean_child_delivers_the_report_bytes() {
        // The child echoes stdin back inside a well-formed envelope via
        // printf; use a fixed report to keep the script simple.
        let cfg = sh(
            r#"cat > /dev/null; printf '%s' '{"schema":"ap1000plus.jobresult","version":1,"ok":true,"report":"payload-bytes"}'"#,
        );
        match run_job(&cfg, "{\"kind\":\"bench\"}", |_| {}) {
            RunOutcome::Ok(body) => assert_eq!(body, b"payload-bytes"),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn dying_child_is_a_crash_with_stderr_tail() {
        let cfg = sh("echo boom-diagnostic >&2; exit 7");
        match run_job(&cfg, "", |_| {}) {
            RunOutcome::Crashed {
                status,
                stderr_tail,
            } => {
                assert_eq!(status, "exit code 7");
                assert!(stderr_tail.contains("boom-diagnostic"), "{stderr_tail}");
            }
            other => panic!("expected Crashed, got {other:?}"),
        }
    }

    #[test]
    fn deadline_overrun_is_killed_and_reported_as_timeout() {
        let mut cfg = sh("exec sleep 30");
        cfg.job_timeout_ms = 150;
        let t0 = Instant::now();
        match run_job(&cfg, "", |_| {}) {
            RunOutcome::Timeout { deadline_ms } => assert_eq!(deadline_ms, 150),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "the kill must not wait for the sleep"
        );
    }

    #[test]
    fn drain_kill_is_canceled_not_timeout() {
        let cfg = sh("exec sleep 30");
        let slot_out: Arc<Mutex<Option<Arc<ChildSlot>>>> = Arc::new(Mutex::new(None));
        let slot_in = Arc::clone(&slot_out);
        let killer = std::thread::spawn(move || {
            loop {
                if let Some(slot) = slot_in.lock().unwrap().as_ref() {
                    std::thread::sleep(Duration::from_millis(50));
                    slot.kill(KillReason::Drain);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let outcome = run_job(&cfg, "", |slot| {
            *slot_out.lock().unwrap() = Some(slot);
        });
        killer.join().unwrap();
        assert_eq!(outcome, RunOutcome::Canceled);
    }

    #[test]
    fn garbage_stdout_from_a_clean_exit_is_a_crash() {
        let cfg = sh("echo 'not an envelope'");
        match run_job(&cfg, "", |_| {}) {
            RunOutcome::Crashed { status, .. } => {
                assert!(status.contains("malformed result envelope"), "{status}");
            }
            other => panic!("expected Crashed, got {other:?}"),
        }
    }
}

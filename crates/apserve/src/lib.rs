//! # apserve — simulation-as-a-service for the AP1000+ reproduction
//!
//! A long-running job server that turns the workspace's deterministic
//! simulators into a shared service: clients `POST /submit` small JSON
//! job documents (bench suites, sweep grids, fault campaigns, trace
//! remodels) and get back the same versioned report documents the CLI
//! tools write — except that identical requests are answered from a
//! **content-addressed result cache** instead of being re-simulated.
//!
//! The design leans entirely on a property the rest of the workspace
//! already pays for: reports are byte-reproducible (deterministic
//! simulation, `host_ms`-stripped, stable serialization). That makes
//! caching trivially correct — the cache key is an FNV-1a hash of the
//! *canonicalized* request (defaults filled, keys sorted, values
//! re-typed), and `same key ⇒ same report bytes`.
//!
//! Layering (each layer testable without the one above):
//!
//! - [`http`]: minimal HTTP/1.1 over `std::net` with hard input limits;
//! - [`request`]: strict validation + canonicalization + hashing;
//! - [`cache`]: in-memory LRU + optional persistent disk tier;
//! - [`service`]: bounded worker pool, single-flight deduplication,
//!   explicit backpressure (full queue ⇒ structured 429, never
//!   unbounded memory), crash retry, and the crash-loop breaker;
//! - [`worker`]: the process-isolation supervisor — per-job child
//!   processes, wall-clock deadlines, rlimit ceilings, and the
//!   stdin/stdout result-envelope protocol for `repro job-exec`;
//! - [`server`]: accept loop and routing (`/healthz`, `/stats`,
//!   `/submit`, `/shutdown`), with NDJSON progress streaming;
//! - [`client`]: the blocking client used by `repro submit` and CI.
//!
//! The crate is simulator-agnostic: the binary that owns the workloads
//! (`apbench`'s `repro serve`) injects an [`Executor`] closure, keeping
//! the dependency graph acyclic.

pub mod cache;
pub mod client;
pub mod http;
pub mod request;
pub mod server;
pub mod service;
pub mod worker;

pub use cache::{CacheTier, ResultCache};
pub use client::HttpResponse;
pub use http::{HttpError, HttpRequest, Response, MAX_BODY_BYTES};
pub use request::{parse_request, CanonRequest, Kind, RequestError};
pub use server::{serve, ServerHandle};
pub use service::{
    sleep_report, ClientGone, Config, Executor, JobError, Service, Stats, Submission,
};
pub use worker::{result_envelope, SandboxConfig};

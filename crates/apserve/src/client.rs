//! A minimal blocking HTTP client for talking to an apserve server —
//! used by `repro submit`, the integration suite, and CI smoke jobs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long the client waits for a connect or a read before giving up.
/// Generous: a cold `paper`-scale job runs for a while before its
/// response lands.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(600);

/// A complete response: status line code, headers (names lowercased),
/// body bytes.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn read_response(stream: TcpStream) -> Result<HttpResponse, String> {
    let mut r = BufReader::new(stream);
    let mut status_line = String::new();
    r.read_line(&mut status_line)
        .map_err(|e| format!("read status line: {e}"))?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line '{}'", status_line.trim_end()))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        r.read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            r.read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
            body
        }
        None => {
            // Streamed response: read to connection close.
            let mut body = Vec::new();
            r.read_to_end(&mut body)
                .map_err(|e| format!("read stream: {e}"))?;
            body
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// One request/response exchange (the server closes after each).
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<HttpResponse, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut w = stream.try_clone().map_err(|e| e.to_string())?;
    write!(
        w,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .map_err(|e| format!("write request: {e}"))?;
    w.write_all(body).map_err(|e| format!("write body: {e}"))?;
    w.flush().map_err(|e| e.to_string())?;
    read_response(stream)
}

/// `GET path`.
pub fn get(addr: &str, path: &str) -> Result<HttpResponse, String> {
    request(addr, "GET", path, b"")
}

/// `POST /submit` with a JSON job document.
pub fn submit(addr: &str, job_json: &str) -> Result<HttpResponse, String> {
    request(addr, "POST", "/submit", job_json.as_bytes())
}

/// `POST /submit` for a streaming job: invokes `on_line` for every
/// NDJSON line as it arrives (progress lines first, the report last)
/// and returns the final line.
pub fn submit_stream(
    addr: &str,
    job_json: &str,
    mut on_line: impl FnMut(&str),
) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut w = stream.try_clone().map_err(|e| e.to_string())?;
    write!(
        w,
        "POST /submit HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        job_json.len()
    )
    .map_err(|e| format!("write request: {e}"))?;
    w.write_all(job_json.as_bytes())
        .map_err(|e| format!("write body: {e}"))?;
    w.flush().map_err(|e| e.to_string())?;

    let mut r = BufReader::new(stream);
    // Skip the status line and headers.
    let mut status = String::new();
    r.read_line(&mut status).map_err(|e| e.to_string())?;
    if !status.contains("200") {
        return Err(format!("stream refused: {}", status.trim_end()));
    }
    loop {
        let mut line = String::new();
        r.read_line(&mut line).map_err(|e| e.to_string())?;
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut last = String::new();
    loop {
        let mut line = String::new();
        let n = r.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            break;
        }
        let line = line.trim_end().to_string();
        if line.is_empty() {
            continue;
        }
        on_line(&line);
        last = line;
    }
    if last.is_empty() {
        return Err("stream ended with no report line".to_string());
    }
    Ok(last)
}

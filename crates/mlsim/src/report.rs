//! Table-2 / Figure-8 report helpers.

use crate::replay::ReplayResult;
use aputil::SimTime;

/// Speedup of `fast` relative to `slow` — Table 2 reports
/// `time(AP1000) / time(model)`.
pub fn speedup(slow: &ReplayResult, fast: &ReplayResult) -> f64 {
    if fast.total == SimTime::ZERO {
        return 0.0;
    }
    slow.total.as_nanos() as f64 / fast.total.as_nanos() as f64
}

/// One stacked bar of Figure 8, as percentages of a reference total.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig8Row {
    /// Execution time (%).
    pub exec: f64,
    /// Run-time-system time (%).
    pub rts: f64,
    /// Communication overhead (%).
    pub overhead: f64,
    /// Idle time (%).
    pub idle: f64,
    /// Total height of the bar (%) — 100 for the reference model.
    pub total: f64,
}

impl Fig8Row {
    /// Sum of the four components.
    pub fn stack(&self) -> f64 {
        self.exec + self.rts + self.overhead + self.idle
    }
}

/// Builds the Figure-8 bars for a set of replays of the same trace,
/// normalized to `reference`'s total time (the paper normalizes to the
/// AP1000+ bar = 100%).
pub fn fig8_rows(reference: &ReplayResult, models: &[&ReplayResult]) -> Vec<Fig8Row> {
    let norm = reference.total.as_nanos() as f64;
    models
        .iter()
        .map(|r| {
            let mean = |f: fn(&crate::replay::PeBreakdown) -> SimTime| {
                r.mean(f).as_nanos() as f64 / norm * 100.0
            };
            Fig8Row {
                exec: mean(|b| b.exec),
                rts: mean(|b| b.rts),
                overhead: mean(|b| b.overhead),
                idle: mean(|b| b.idle),
                total: r.total.as_nanos() as f64 / norm * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::PeBreakdown;

    fn result(total_us: u64, exec_us: u64, idle_us: u64) -> ReplayResult {
        ReplayResult {
            model: "t".into(),
            per_pe: vec![PeBreakdown {
                exec: SimTime::from_micros(exec_us),
                rts: SimTime::ZERO,
                overhead: SimTime::ZERO,
                idle: SimTime::from_micros(idle_us),
                finish: SimTime::from_micros(total_us),
            }],
            total: SimTime::from_micros(total_us),
            counters: Default::default(),
            timeline: Default::default(),
        }
    }

    #[test]
    fn speedup_ratio() {
        let slow = result(800, 800, 0);
        let fast = result(100, 100, 0);
        assert_eq!(speedup(&slow, &fast), 8.0);
        assert_eq!(speedup(&slow, &result(0, 0, 0)), 0.0);
    }

    #[test]
    fn fig8_normalizes_to_reference() {
        let plus = result(100, 80, 20);
        let star = result(150, 80, 70);
        let rows = fig8_rows(&plus, &[&plus, &star]);
        assert_eq!(rows[0].total, 100.0);
        assert!((rows[0].exec - 80.0).abs() < 1e-9);
        assert!((rows[1].total - 150.0).abs() < 1e-9);
        assert!((rows[1].idle - 70.0).abs() < 1e-9);
        assert!((rows[0].stack() - 100.0).abs() < 1e-9);
    }
}

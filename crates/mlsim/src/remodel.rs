//! Trace-driven re-modeling: replay one recorded trace under many
//! parameter sets.
//!
//! This is the paper's §5 methodology turned into a tool: record a real
//! run once (the expensive part), then answer "what if the CPU were 8×
//! faster" or "what if the network prolog doubled" by replaying the
//! recorded traffic under modified [`ModelParams`] — no emulator, no
//! re-execution, seconds instead of minutes. `repro remodel` drives this
//! from a binary `.evtrace` recording.

use crate::params::ModelParams;
use crate::replay::{replay, ReplayError, ReplayResult};
use aptrace::Trace;

/// One point of a re-modeling sweep: a label and the full parameter set
/// to replay under.
#[derive(Clone, Debug)]
pub struct RemodelPoint {
    /// Human-readable point name (`"cf=0.25"`, `"ap1000"`, …).
    pub label: String,
    /// Parameters for this point.
    pub params: ModelParams,
}

/// Builds a sweep over `computation_factor` multiples of `base`: each
/// factor scales the base model's computation speed while every network
/// parameter stays put — the same axis `repro sweep` explores, but
/// against a recorded trace instead of a live emulator run.
pub fn factor_grid(base: &ModelParams, factors: &[f64]) -> Vec<RemodelPoint> {
    factors
        .iter()
        .map(|&f| {
            let mut p = base.clone();
            p.computation_factor *= f;
            RemodelPoint {
                label: format!("cf={:.4}", p.computation_factor),
                params: p,
            }
        })
        .collect()
}

/// Replays `trace` under every point, in order. Deterministic: the same
/// trace and points always produce identical results, regardless of host
/// threads — replay is single-threaded discrete-event simulation.
///
/// # Errors
///
/// The first [`ReplayError`] aborts the sweep (every point replays the
/// same trace, so one malformed trace fails them all identically).
pub fn remodel(
    trace: &Trace,
    points: &[RemodelPoint],
) -> Result<Vec<(String, ReplayResult)>, ReplayError> {
    points
        .iter()
        .map(|pt| replay(trace, &pt.params).map(|r| (pt.label.clone(), r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptrace::Op;
    use aputil::CellId;

    fn small_trace() -> Trace {
        let mut t = Trace::new(2);
        for c in 0..2u32 {
            let pe = t.pe_mut(CellId::new(c));
            pe.push(Op::Work { flops: 10_000 });
            pe.push(Op::Barrier);
        }
        t
    }

    #[test]
    fn factor_grid_scales_only_computation() {
        let base = ModelParams::ap1000_plus();
        let grid = factor_grid(&base, &[0.5, 1.0, 2.0]);
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[1].params.computation_factor, base.computation_factor);
        assert_eq!(grid[0].params.network_prolog, base.network_prolog);
        assert!(grid[0].params.computation_factor < grid[2].params.computation_factor);
    }

    #[test]
    fn remodel_orders_points_and_faster_cpu_is_never_slower() {
        let t = small_trace();
        let base = ModelParams::ap1000_plus();
        let rows = remodel(&t, &factor_grid(&base, &[4.0, 1.0, 0.25])).unwrap();
        assert_eq!(rows.len(), 3);
        // Compute-bound trace: a smaller computation factor (faster CPU)
        // cannot finish later.
        assert!(rows[2].1.total <= rows[1].1.total);
        assert!(rows[1].1.total <= rows[0].1.total);
    }

    #[test]
    fn remodel_is_deterministic() {
        let t = small_trace();
        let pts = factor_grid(&ModelParams::ap1000_plus(), &[1.0, 0.5]);
        let a = remodel(&t, &pts).unwrap();
        let b = remodel(&t, &pts).unwrap();
        for ((la, ra), (lb, rb)) in a.iter().zip(b.iter()) {
            assert_eq!(la, lb);
            assert_eq!(ra.total, rb.total);
        }
    }
}

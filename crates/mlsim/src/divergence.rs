//! Emulator-vs-MLSim divergence reports.
//!
//! Both the machine emulator and the replay engine emit the same timeline
//! vocabulary (`work`, `put_issue`, `send_dma`, …) and the same Figure-6
//! per-segment latency histograms, so disagreement between them can be
//! localized: which operation class, and which latency segment, accounts
//! for the model's error. This module aggregates both timelines per event
//! name and compares segment means, producing the per-op divergence table
//! surfaced by `repro --json` / `--bench-out`.

use apobs::{SegmentHists, Timeline, TimelineEvent};
use aputil::{Json, SimTime};
use std::collections::BTreeMap;

/// One event class compared across the two timelines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivergenceRow {
    /// Timeline event name (`work`, `send_dma`, `wait_flag`, …).
    pub name: String,
    /// Total span nanoseconds under the emulator.
    pub emulator: SimTime,
    /// Total span nanoseconds under the model.
    pub model: SimTime,
    /// Span count under the emulator.
    pub emulator_count: u64,
    /// Span count under the model.
    pub model_count: u64,
}

impl DivergenceRow {
    /// model / emulator time; infinity when the emulator total is zero
    /// but the model's is not.
    pub fn ratio(&self) -> f64 {
        if self.emulator.as_nanos() == 0 {
            if self.model.as_nanos() == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.model.as_nanos() as f64 / self.emulator.as_nanos() as f64
        }
    }

    /// Absolute disagreement in nanoseconds (the sort key).
    pub fn gap(&self) -> u64 {
        self.emulator.as_nanos().abs_diff(self.model.as_nanos())
    }
}

/// Mean latency of one Figure-6 segment under both simulators.
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentDelta {
    /// Segment name (`issue`, `queue`, `dma`, `net`, `delivery`, `flag`,
    /// `total`).
    pub segment: &'static str,
    /// Mean nanoseconds under the emulator.
    pub emulator_mean: f64,
    /// Mean nanoseconds under the model.
    pub model_mean: f64,
}

/// Where emulator and model disagree, per operation class and per
/// latency segment.
#[derive(Clone, Debug, PartialEq)]
pub struct DivergenceReport {
    /// Model the emulator is compared against (the model timeline's
    /// source string).
    pub model: String,
    /// Emulator run length (latest event end).
    pub emulator_total: SimTime,
    /// Model run length.
    pub model_total: SimTime,
    /// Per-event-name totals, widest absolute gap first.
    pub ops: Vec<DivergenceRow>,
    /// PUT segment means, emulator vs model.
    pub put_segments: Vec<SegmentDelta>,
    /// GET segment means, emulator vs model.
    pub get_segments: Vec<SegmentDelta>,
}

fn totals(t: &Timeline) -> BTreeMap<&'static str, (SimTime, u64)> {
    let mut m: BTreeMap<&'static str, (SimTime, u64)> = BTreeMap::new();
    for e in &t.events {
        let Some(d) = e.dur else { continue };
        let slot = m.entry(e.name).or_insert((SimTime::ZERO, 0));
        slot.0 += d;
        slot.1 += 1;
    }
    m
}

fn run_length(t: &Timeline) -> SimTime {
    t.events
        .iter()
        .map(TimelineEvent::end)
        .max()
        .unwrap_or(SimTime::ZERO)
}

/// Compares two [`SegmentHists`] mean-by-mean.
pub fn segment_deltas(emulator: &SegmentHists, model: &SegmentHists) -> Vec<SegmentDelta> {
    emulator
        .segments()
        .into_iter()
        .zip(model.segments())
        .map(|((segment, e), (_, m))| SegmentDelta {
            segment,
            emulator_mean: e.mean(),
            model_mean: m.mean(),
        })
        .collect()
}

/// Builds the per-op divergence report between an emulator timeline and a
/// model (replay) timeline; segment comparisons come from the respective
/// counter blocks' `put_lat`/`get_lat`.
pub fn divergence(
    emulator: &Timeline,
    model: &Timeline,
    emulator_counters: &apobs::Counters,
    model_counters: &apobs::Counters,
) -> DivergenceReport {
    let a = totals(emulator);
    let b = totals(model);
    let names: std::collections::BTreeSet<&'static str> =
        a.keys().chain(b.keys()).copied().collect();
    let mut ops: Vec<DivergenceRow> = names
        .into_iter()
        .map(|name| {
            let (et, ec) = a.get(name).copied().unwrap_or((SimTime::ZERO, 0));
            let (mt, mc) = b.get(name).copied().unwrap_or((SimTime::ZERO, 0));
            DivergenceRow {
                name: name.to_string(),
                emulator: et,
                model: mt,
                emulator_count: ec,
                model_count: mc,
            }
        })
        .collect();
    ops.sort_by(|x, y| y.gap().cmp(&x.gap()).then_with(|| x.name.cmp(&y.name)));
    DivergenceReport {
        model: model.source.clone(),
        emulator_total: run_length(emulator),
        model_total: run_length(model),
        ops,
        put_segments: segment_deltas(&emulator_counters.put_lat, &model_counters.put_lat),
        get_segments: segment_deltas(&emulator_counters.get_lat, &model_counters.get_lat),
    }
}

/// Samples both timelines into `apmon` gauge series at `interval` — the
/// time-resolved counterpart of [`divergence`]'s per-op totals. The two
/// series are tick-aligned (cumulative events, send/recv-DMA busy
/// populations), so a model's disagreement can be located *in time*
/// rather than only by op class. Both use the emulator's deterministic
/// sampling rule, so the pair is byte-stable across runs.
pub fn sampled_divergence(
    emulator: &Timeline,
    model: &Timeline,
    interval: SimTime,
) -> (apmon::MetricsSeries, apmon::MetricsSeries) {
    (
        apmon::MetricsSeries::from_timeline(emulator, interval),
        apmon::MetricsSeries::from_timeline(model, interval),
    )
}

impl DivergenceReport {
    /// model / emulator run-length ratio.
    pub fn total_ratio(&self) -> f64 {
        if self.emulator_total.as_nanos() == 0 {
            1.0
        } else {
            self.model_total.as_nanos() as f64 / self.emulator_total.as_nanos() as f64
        }
    }

    /// JSON form for `--json` / `--bench-out`.
    pub fn to_json(&self) -> Json {
        let seg = |rows: &[SegmentDelta]| {
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("segment", Json::from(r.segment)),
                            ("emulator_mean_ns", Json::F(r.emulator_mean)),
                            ("model_mean_ns", Json::F(r.model_mean)),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj([
            ("model", Json::from(self.model.clone())),
            (
                "emulator_total_ns",
                Json::from(self.emulator_total.as_nanos()),
            ),
            ("model_total_ns", Json::from(self.model_total.as_nanos())),
            ("total_ratio", Json::F(self.total_ratio())),
            (
                "ops",
                Json::Arr(
                    self.ops
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::from(r.name.clone())),
                                ("emulator_ns", Json::from(r.emulator.as_nanos())),
                                ("model_ns", Json::from(r.model.as_nanos())),
                                ("emulator_count", Json::from(r.emulator_count)),
                                ("model_count", Json::from(r.model_count)),
                                ("ratio", Json::F(r.ratio())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("put_segments", seg(&self.put_segments)),
            ("get_segments", seg(&self.get_segments)),
        ])
    }

    /// Structural sanity check used by differential fuzzing: both
    /// simulators replay the *same* trace, so for every event class whose
    /// span count is fixed by the trace (one span per traced op —
    /// timing-dependent classes like `wait_flag` are excluded), the counts
    /// must agree exactly, and every segment mean must be a finite,
    /// non-negative number. Timing *differences* are expected (that is the
    /// report's whole purpose); count or shape differences mean one side
    /// dropped or invented an operation.
    ///
    /// # Errors
    ///
    /// Describes the first structural problem found.
    pub fn check(&self) -> Result<(), String> {
        // One span per traced op under both the emulator and the replay.
        const COUNT_STABLE: &[&str] = &[
            "work",
            "rts",
            "put_issue",
            "get_issue",
            "send_call",
            "barrier",
            "bcast",
            "reg_store",
            "remote_store",
        ];
        for row in &self.ops {
            if COUNT_STABLE.contains(&row.name.as_str()) && row.emulator_count != row.model_count {
                return Err(format!(
                    "op `{}` span count diverged: emulator {} vs model {}",
                    row.name, row.emulator_count, row.model_count
                ));
            }
        }
        for (kind, rows) in [("put", &self.put_segments), ("get", &self.get_segments)] {
            for d in rows.iter() {
                for (side, mean) in [("emulator", d.emulator_mean), ("model", d.model_mean)] {
                    if !mean.is_finite() || mean < 0.0 {
                        return Err(format!(
                            "{kind} segment `{}` has a bad {side} mean: {mean}",
                            d.segment
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Human rendering: the top disagreements, widest first.
    pub fn render(&self, k: usize) -> String {
        let mut out = format!(
            "divergence vs {}: emulator {} model {} (x{:.3})\n",
            self.model,
            self.emulator_total,
            self.model_total,
            self.total_ratio()
        );
        out.push_str("  op            emulator        model        ratio\n");
        for r in self.ops.iter().take(k) {
            out.push_str(&format!(
                "  {:<13} {:>12} {:>12}       x{:.3}\n",
                r.name,
                r.emulator.to_string(),
                r.model.to_string(),
                r.ratio()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apobs::{Bucket, Unit};

    fn span(t: &mut Timeline, cell: u32, name: &'static str, start: u64, dur: u64) {
        t.events.push(TimelineEvent {
            cell,
            unit: Unit::Cpu,
            name,
            start: SimTime::from_nanos(start),
            dur: Some(SimTime::from_nanos(dur)),
            bucket: Bucket::Exec,
            arg: 0,
            tid: 0,
        });
    }

    #[test]
    fn sampled_divergence_pairs_tick_aligned_series() {
        let mut emu = Timeline::new("emulator");
        span(&mut emu, 0, "work", 0, 1000);
        let mut model = Timeline::new("mlsim/ap1000+");
        span(&mut model, 0, "work", 0, 2000);
        let (a, b) = sampled_divergence(&emu, &model, SimTime::from_nanos(500));
        assert_eq!(a.interval, b.interval);
        // The model's run is twice as long, so its series has more ticks.
        assert!(
            b.samples.len() > a.samples.len(),
            "{} vs {}",
            b.samples.len(),
            a.samples.len()
        );
        // Both count the one event as handled by their second tick.
        assert_eq!(a.samples[1].events, 1);
        assert_eq!(b.samples[1].events, 1);
    }

    #[test]
    fn rows_rank_by_absolute_gap() {
        let mut emu = Timeline::new("emulator");
        span(&mut emu, 0, "work", 0, 1000);
        span(&mut emu, 0, "send_dma", 1000, 100);
        let mut model = Timeline::new("mlsim/ap1000+");
        span(&mut model, 0, "work", 0, 1000);
        span(&mut model, 0, "send_dma", 1000, 700);
        let c = apobs::Counters::new();
        let d = divergence(&emu, &model, &c, &c);
        assert_eq!(d.model, "mlsim/ap1000+");
        assert_eq!(d.ops[0].name, "send_dma");
        assert_eq!(d.ops[0].gap(), 600);
        assert!((d.ops[0].ratio() - 7.0).abs() < 1e-9);
        assert_eq!(d.ops[1].name, "work");
        assert!((d.ops[1].ratio() - 1.0).abs() < 1e-9);
        assert_eq!(d.emulator_total, SimTime::from_nanos(1100));
        assert_eq!(d.model_total, SimTime::from_nanos(1700));
    }

    #[test]
    fn missing_ops_on_either_side_still_compare() {
        let mut emu = Timeline::new("emulator");
        span(&mut emu, 0, "queue_refill", 0, 50);
        let mut model = Timeline::new("m");
        span(&mut model, 0, "recv_intr", 0, 80);
        let c = apobs::Counters::new();
        let d = divergence(&emu, &model, &c, &c);
        let names: Vec<&str> = d.ops.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["recv_intr", "queue_refill"]);
        assert_eq!(d.ops[1].model, SimTime::ZERO);
        assert!(d.ops[0].ratio().is_infinite());
    }

    #[test]
    fn check_catches_count_divergence_on_stable_ops() {
        let mut emu = Timeline::new("emulator");
        span(&mut emu, 0, "put_issue", 0, 10);
        span(&mut emu, 0, "put_issue", 10, 10);
        span(&mut emu, 0, "wait_flag", 20, 5);
        let mut model = Timeline::new("m");
        span(&mut model, 0, "put_issue", 0, 30);
        span(&mut model, 0, "put_issue", 30, 30);
        // wait_flag count differs, but it is timing-dependent: allowed.
        let c = apobs::Counters::new();
        let d = divergence(&emu, &model, &c, &c);
        assert!(d.check().is_ok(), "{:?}", d.check());

        let mut short = Timeline::new("m");
        span(&mut short, 0, "put_issue", 0, 30);
        let d = divergence(&emu, &short, &c, &c);
        let err = d.check().unwrap_err();
        assert!(err.contains("put_issue"), "err: {err}");
    }

    #[test]
    fn json_round_trips() {
        let mut emu = Timeline::new("emulator");
        span(&mut emu, 0, "work", 0, 10);
        let model = Timeline::new("m");
        let c = apobs::Counters::new();
        let d = divergence(&emu, &model, &c, &c);
        let parsed = Json::parse(&d.to_json().to_string()).unwrap();
        assert_eq!(
            parsed.get("emulator_total_ns").and_then(Json::as_u64),
            Some(10)
        );
        let segs = parsed.get("put_segments").and_then(Json::as_arr).unwrap();
        assert_eq!(segs.len(), 7);
    }
}

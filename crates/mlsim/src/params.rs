//! MLSim parameter files (Figure 6).
//!
//! All times are stored as [`SimTime`]; the constructors take the paper's
//! microsecond values. Units of the per-`msg_size` parameters: the network
//! serialization (`network_msg_time`) is per **byte** — 0.04 µs/byte is
//! exactly the 25 MB/s channel bandwidth of Figure 5, which anchors that
//! unit — while the endpoint costs (`put_msg_time` DMA streaming,
//! `put_msg_post_time` cache posting, `recv_msg_flush_time` cache
//! invalidation) are per 4-byte **word**, so the stored per-byte values
//! are the Figure-6 numbers divided by four (a DMA engine feeding a
//! 25 MB/s link cannot itself run at 20 MB/s).

use aputil::SimTime;

/// One machine model: the parameter file MLSim is driven by.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelParams {
    /// Model name for reports.
    pub name: String,
    /// Processor scaling: execution time multiplier relative to the base
    /// SPARC (1.0 = SPARC, 0.125 = SuperSPARC — Figure 6).
    pub computation_factor: f64,
    /// Base SPARC time per abstract flop (SuperSPARC at 50 MFLOPS ⇒
    /// 160 ns × 0.125 = 20 ns).
    pub base_flop_time: SimTime,
    /// Base SPARC time per run-time-system unit.
    pub base_rts_unit: SimTime,
    /// `true` = message handling by software interrupt handlers (AP1000);
    /// `false` = MSC+ hardware handling (AP1000+).
    pub software_handling: bool,

    // ---- network (Figure 6 "---- network ----") ----
    /// `network_prolog_time`.
    pub network_prolog: SimTime,
    /// `network_delay_time` per hop.
    pub network_delay: SimTime,
    /// `network_msg_time` per byte (item 17 of Figure 7).
    pub network_msg_per_byte: SimTime,

    // ---- PUT/GET (Figure 6 "---- PUT/GET ----") ----
    /// `put_prolog_time`: CPU cost to start a PUT/GET (syscall entry on
    /// the AP1000; user-level queue stores on the AP1000+).
    pub put_prolog: SimTime,
    /// `put_epilog_time`: CPU cost after issue (syscall return).
    pub put_epilog: SimTime,
    /// `put_msg_time` per byte: DMA streaming rate.
    pub put_msg_per_byte: SimTime,
    /// `put_dma_set_time`: DMA parameter setup. CPU time under software
    /// handling, MSC+ time under hardware handling.
    pub put_dma_set: SimTime,
    /// `put_msg_post_time` per byte: CPU cost to post (mirror) cached data
    /// to memory before DMA — zero on the write-through AP1000+.
    pub put_msg_post_per_byte: SimTime,
    /// `intr_rtc_time`: receive-interrupt entry (software handling only).
    pub intr_rtc: SimTime,
    /// `recv_msg_flush_time` per byte: CPU cache invalidation on receive
    /// (zero on the AP1000+, which invalidates at message reception).
    pub recv_msg_flush_per_byte: SimTime,
    /// `recv_dma_set_time`: receive DMA setup.
    pub recv_dma_set: SimTime,

    // ---- library / synchronization ----
    /// CPU cost of one flag-value check.
    pub flag_check: SimTime,
    /// CPU cost of the SEND library call (excluding transfer costs).
    pub send_call: SimTime,
    /// Per-byte CPU cost of the RECEIVE ring-buffer copy (§1.3 buffering
    /// overhead).
    pub recv_copy_per_byte: SimTime,
    /// CPU cost of a communication-register store.
    pub reg_store: SimTime,
    /// CPU cost of a communication-register load that finds data present.
    pub reg_load: SimTime,
    /// S-net barrier tree latency.
    pub barrier_latency: SimTime,
    /// B-net serialization per byte (50 MB/s).
    pub bnet_per_byte: SimTime,
}

impl ModelParams {
    /// Figure 6, left column: the original AP1000 — SPARC processor,
    /// interrupt-driven software message handling.
    pub fn ap1000() -> Self {
        let us = SimTime::from_micros_f64;
        ModelParams {
            name: "AP1000".to_string(),
            computation_factor: 1.0,
            base_flop_time: SimTime::from_nanos(160),
            base_rts_unit: us(4.0),
            software_handling: true,
            network_prolog: us(0.16),
            network_delay: us(0.16),
            network_msg_per_byte: us(0.04),
            put_prolog: us(20.0),
            put_epilog: us(15.0),
            put_msg_per_byte: us(0.05 / 4.0),
            put_dma_set: us(15.0),
            put_msg_post_per_byte: us(0.04 / 4.0),
            intr_rtc: us(20.0),
            recv_msg_flush_per_byte: us(0.04 / 4.0),
            recv_dma_set: us(15.0),
            flag_check: us(1.6),
            send_call: us(8.0),
            recv_copy_per_byte: us(0.04),
            reg_store: us(4.0),
            reg_load: us(4.0),
            barrier_latency: us(1.0),
            bnet_per_byte: us(0.02),
        }
    }

    /// §5.3's second model: "an AP1000 model whose processor speed is
    /// eight times faster and message handling is done by software".
    pub fn ap1000_star() -> Self {
        let mut p = Self::ap1000();
        p.name = "AP1000*".to_string();
        p.computation_factor = 0.125;
        // CPU-executed library code speeds up with the processor; the
        // communication handling protocol costs (syscalls, interrupts,
        // DMA setup by software) remain — the paper's point is that they
        // do NOT shrink with processor speed. We scale only the pure-CPU
        // library entry costs.
        p.flag_check = SimTime::from_micros_f64(0.2);
        p.send_call = SimTime::from_micros_f64(1.0);
        p.reg_store = SimTime::from_micros_f64(0.5);
        p.reg_load = SimTime::from_micros_f64(0.5);
        p
    }

    /// Figure 6, right column: the AP1000+ — SuperSPARC plus MSC+
    /// hardware message handling.
    pub fn ap1000_plus() -> Self {
        let us = SimTime::from_micros_f64;
        ModelParams {
            name: "AP1000+".to_string(),
            computation_factor: 0.125,
            base_flop_time: SimTime::from_nanos(160),
            base_rts_unit: us(4.0),
            software_handling: false,
            network_prolog: us(0.16),
            network_delay: us(0.16),
            network_msg_per_byte: us(0.04),
            put_prolog: us(1.0),
            put_epilog: us(0.0),
            put_msg_per_byte: us(0.05 / 4.0),
            put_dma_set: us(0.5),
            put_msg_post_per_byte: us(0.0),
            intr_rtc: us(0.0),
            recv_msg_flush_per_byte: us(0.0),
            recv_dma_set: us(0.5),
            flag_check: us(0.2),
            send_call: us(1.0),
            recv_copy_per_byte: us(0.02),
            reg_store: us(0.5),
            reg_load: us(0.5),
            barrier_latency: us(1.0),
            bnet_per_byte: us(0.02),
        }
    }

    /// Effective time per abstract flop on this model's processor.
    pub fn flop_time(&self) -> SimTime {
        SimTime::from_micros_f64(self.base_flop_time.as_micros_f64() * self.computation_factor)
    }

    /// Effective time per run-time-system unit.
    pub fn rts_time(&self) -> SimTime {
        SimTime::from_micros_f64(self.base_rts_unit.as_micros_f64() * self.computation_factor)
    }

    /// CPU time the *sender* spends issuing a PUT/GET/SEND of `bytes`
    /// (Figure 7's "Send overhead" chain; the hardware model keeps only
    /// the prolog — writing the 8 parameter words).
    pub fn send_cpu_overhead(&self, bytes: u64) -> SimTime {
        if self.software_handling {
            self.put_prolog
                + self.put_msg_post_per_byte.saturating_mul(bytes)
                + self.put_dma_set
                + self.put_epilog
        } else {
            self.put_prolog
        }
    }

    /// CPU time the *receiver* spends on an arriving message (Figure 7's
    /// "Interrupt reception overhead"; zero under hardware handling).
    pub fn recv_cpu_overhead(&self, bytes: u64) -> SimTime {
        if self.software_handling {
            self.intr_rtc + self.recv_msg_flush_per_byte.saturating_mul(bytes) + self.recv_dma_set
        } else {
            SimTime::ZERO
        }
    }

    /// Hardware-side latency from "command accepted" to "message on the
    /// wire": DMA setup plus streaming.
    pub fn send_hw_latency(&self, bytes: u64) -> SimTime {
        if self.software_handling {
            // DMA set was already charged on the CPU; only streaming
            // remains on the hardware side.
            self.put_msg_per_byte.saturating_mul(bytes)
        } else {
            self.put_dma_set + self.put_msg_per_byte.saturating_mul(bytes)
        }
    }

    /// Hardware-side latency from "message arrived" to "data landed &
    /// flag updated".
    pub fn recv_hw_latency(&self, bytes: u64) -> SimTime {
        if self.software_handling {
            self.put_msg_per_byte.saturating_mul(bytes)
        } else {
            self.recv_dma_set + self.put_msg_per_byte.saturating_mul(bytes)
        }
    }

    /// Renders the parameter file in the Figure 6 format.
    pub fn to_figure6(&self) -> String {
        format!(
            "#\n# {} model\n#\n# computation {}\ncomputation_factor      {:.3}\n#\n\
             # ---- network ----\nnetwork_prolog_time     {:.2}\nnetwork_delay_time      {:.2}\n\
             network_msg_time        {:.2}\n#\n# ---- PUT/GET ----\n#\nput_prolog_time         {:.2}\n\
             put_epilog_time         {:.2}\nput_msg_time            {:.2}\nput_dma_set_time        {:.2}\n\
             put_msg_post_time       {:.2}\n#\nintr_rtc_time           {:.2}\n\
             recv_msg_flush_time     {:.2}\nrecv_dma_set_time       {:.2}\n",
            self.name,
            if self.computation_factor >= 1.0 { "SPARC" } else { "SuperSPARC" },
            self.computation_factor,
            self.network_prolog.as_micros_f64(),
            self.network_delay.as_micros_f64(),
            self.network_msg_per_byte.as_micros_f64(),
            self.put_prolog.as_micros_f64(),
            self.put_epilog.as_micros_f64(),
            self.put_msg_per_byte.as_micros_f64(),
            self.put_dma_set.as_micros_f64(),
            self.put_msg_post_per_byte.as_micros_f64(),
            self.intr_rtc.as_micros_f64(),
            self.recv_msg_flush_per_byte.as_micros_f64(),
            self.recv_dma_set.as_micros_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_values() {
        let a = ModelParams::ap1000();
        assert_eq!(a.put_prolog.as_micros_f64(), 20.0);
        assert_eq!(a.put_epilog.as_micros_f64(), 15.0);
        assert_eq!(a.intr_rtc.as_micros_f64(), 20.0);
        assert!(a.software_handling);
        let p = ModelParams::ap1000_plus();
        assert_eq!(p.put_prolog.as_micros_f64(), 1.0);
        assert_eq!(p.put_epilog.as_micros_f64(), 0.0);
        assert_eq!(p.intr_rtc.as_micros_f64(), 0.0);
        assert_eq!(p.put_dma_set.as_micros_f64(), 0.5);
        assert!(!p.software_handling);
    }

    #[test]
    fn star_is_fast_cpu_slow_comm() {
        let s = ModelParams::ap1000_star();
        assert_eq!(s.computation_factor, 0.125);
        assert!(s.software_handling);
        assert_eq!(s.put_prolog, ModelParams::ap1000().put_prolog);
    }

    #[test]
    fn flop_times_span_8x() {
        let a = ModelParams::ap1000();
        let p = ModelParams::ap1000_plus();
        assert_eq!(a.flop_time().as_nanos(), 160);
        assert_eq!(p.flop_time().as_nanos(), 20);
    }

    #[test]
    fn overhead_chains_match_figure7() {
        let a = ModelParams::ap1000();
        // Send overhead = prolog + post*size + dma_set + epilog
        // (per-size costs are per 4-byte word: 0.04 µs/word = 0.01 µs/B).
        let bytes = 100;
        assert_eq!(
            a.send_cpu_overhead(bytes).as_micros_f64(),
            20.0 + 0.01 * 100.0 + 15.0 + 15.0
        );
        // Interrupt reception overhead = intr + flush*size + dma_set
        assert_eq!(
            a.recv_cpu_overhead(bytes).as_micros_f64(),
            20.0 + 0.01 * 100.0 + 15.0
        );
        let p = ModelParams::ap1000_plus();
        assert_eq!(p.send_cpu_overhead(bytes).as_micros_f64(), 1.0);
        assert_eq!(p.recv_cpu_overhead(bytes), SimTime::ZERO);
    }

    #[test]
    fn figure6_render_contains_parameters() {
        let text = ModelParams::ap1000_plus().to_figure6();
        assert!(text.contains("computation_factor      0.125"));
        assert!(text.contains("put_prolog_time         1.00"));
        assert!(text.contains("recv_dma_set_time       0.50"));
    }
}

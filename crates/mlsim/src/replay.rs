//! The trace replay engine.
//!
//! Replays a recorded [`Trace`] under a [`ModelParams`] file, preserving
//! message order and synchronization between processors (§5). Per-PE time
//! is split into the four Figure-8 buckets. The engine models:
//!
//! * CPU occupancy per PE (a [`Resource`]): under **software handling**,
//!   arriving messages steal CPU time from the program via interrupt
//!   service (Figure 7 items 8–10), which is precisely what prevents
//!   communication/computation overlap on the AP1000;
//! * one send-DMA engine and one receive engine per PE;
//! * the T-net latency/FIFO model shared with the machine emulator.

use crate::params::ModelParams;
use apnet::{Contention, TNet, TNetParams, Torus};
use apobs::{Bucket, Hist, Recorder, SegmentHists, Unit, XferKind, XferLat};
use apsim::{Clock, EventQueue, Resource};
use aptrace::{Op, Trace};
use aputil::{CellId, SimTime};
use core::fmt;
use std::collections::HashMap;
use std::error::Error;

/// Per-PE Figure-8 buckets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeBreakdown {
    /// User computation.
    pub exec: SimTime,
    /// Run-time-system time.
    pub rts: SimTime,
    /// Communication-library / interrupt CPU overhead.
    pub overhead: SimTime,
    /// Blocked time (flags, receives, barriers).
    pub idle: SimTime,
    /// Completion time of this PE.
    pub finish: SimTime,
}

/// Result of one replay.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayResult {
    /// Model name the trace was replayed under.
    pub model: String,
    /// Per-PE buckets.
    pub per_pe: Vec<PeBreakdown>,
    /// Total execution time (max PE finish).
    pub total: SimTime,
    /// Unified hardware counters (message-size, flag-wait, and network
    /// latency histograms; the queue counters are only populated by the
    /// machine emulator, which models the MSC+ queues).
    pub counters: apobs::Counters,
    /// Sim-time event timeline, using the same event vocabulary as the
    /// emulator (empty unless replayed via [`replay_observed`] with
    /// `record_timeline`); export with [`apobs::chrome_trace`].
    pub timeline: apobs::Timeline,
}

impl ReplayResult {
    /// Machine-wide mean of one bucket.
    pub fn mean(&self, f: impl Fn(&PeBreakdown) -> SimTime) -> SimTime {
        if self.per_pe.is_empty() {
            return SimTime::ZERO;
        }
        let sum: u64 = self.per_pe.iter().map(|p| f(p).as_nanos()).sum();
        SimTime::from_nanos(sum / self.per_pe.len() as u64)
    }
}

/// Replay failures: malformed traces (mismatched collectives, a receive
/// with no matching send) surface here rather than hanging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace deadlocked under replay (should not happen for traces
    /// recorded from successful emulator runs).
    Stuck(String),
    /// Structurally inconsistent trace.
    Mismatch(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Stuck(m) => write!(f, "replay deadlocked: {m}"),
            ReplayError::Mismatch(m) => write!(f, "inconsistent trace: {m}"),
        }
    }
}

impl Error for ReplayError {}

/// Wire header bytes (matches the emulator's packet header).
const HEADER: u64 = 32;

#[derive(Debug)]
enum REv {
    Step {
        pe: u32,
    },
    PutArrive {
        dst: u32,
        bytes: u64,
        recv_flag: u64,
        tid: u64,
    },
    GetArrive {
        dst: u32,
        requester: u32,
        bytes: u64,
        send_flag: u64,
        recv_flag: u64,
        tid: u64,
    },
    RingArrive {
        dst: u32,
        src: u32,
        bytes: u64,
    },
    RegArrive {
        dst: u32,
        reg: u16,
    },
    FlagInc {
        pe: u32,
        flag: u64,
        tid: u64,
    },
    /// DSM store landed at the owner; send the automatic acknowledge back.
    RStoreArrive {
        dst: u32,
        src: u32,
        bytes: u64,
    },
    /// DSM store acknowledge returned to the issuing cell.
    RAckArrive {
        dst: u32,
    },
    /// DSM load request reached the owner.
    RLoadArrive {
        dst: u32,
        requester: u32,
        bytes: u64,
    },
    /// DSM load reply returned; unblock the loading cell.
    RLoadReply {
        dst: u32,
    },
}

/// An in-flight transfer's latency record plus its attribution cursor
/// (same contiguous-segments scheme as the emulator kernel).
struct InFlight {
    x: XferLat,
    cursor: SimTime,
}

/// Figure-6 latency segment a replay stage charges its time to.
#[derive(Clone, Copy, Debug)]
enum Seg {
    Issue,
    Queue,
    Dma,
    Net,
    Delivery,
}

struct Engine<'t> {
    p: ModelParams,
    trace: &'t Trace,
    evq: EventQueue<REv>,
    clock: Clock,
    tnet: TNet,
    pc: Vec<usize>,
    cpu: Vec<Resource>,
    send_engine: Vec<Resource>,
    recv_engine: Vec<Resource>,
    bd: Vec<PeBreakdown>,
    done: Vec<bool>,
    done_count: usize,
    flag_counts: HashMap<(u32, u64), u32>,
    flag_waiters: HashMap<(u32, u64), (u32, SimTime)>,
    ring_ready: HashMap<(u32, u32), std::collections::VecDeque<(SimTime, u64)>>,
    recv_waiters: HashMap<u32, (u32, u64, SimTime)>,
    reg_ready: HashMap<(u32, u16), std::collections::VecDeque<SimTime>>,
    reg_waiters: HashMap<(u32, u16), SimTime>,
    barrier: Vec<(u32, SimTime)>,
    bcast: Vec<(u32, SimTime)>,
    bcast_sig: Option<(u32, u64)>,
    rstore_issued: Vec<u64>,
    rstore_acked: Vec<u64>,
    fence_waiters: HashMap<u32, SimTime>,
    load_waiters: HashMap<u32, SimTime>,
    obs: Recorder,
    flag_wait: Hist,
    next_tid: u64,
    xfers: HashMap<u64, InFlight>,
    put_lat: SegmentHists,
    get_lat: SegmentHists,
}

/// Replays `trace` under model `params`.
///
/// # Errors
///
/// [`ReplayError`] on malformed traces; traces recorded from successful
/// `apcore` runs always replay cleanly.
pub fn replay(trace: &Trace, params: &ModelParams) -> Result<ReplayResult, ReplayError> {
    replay_observed(trace, params, false)
}

/// Replays `trace` under model `params`, optionally recording the
/// sim-time event timeline (the same vocabulary the machine emulator
/// emits, so both can be compared side by side in Perfetto).
///
/// # Errors
///
/// [`ReplayError`] on malformed traces.
pub fn replay_observed(
    trace: &Trace,
    params: &ModelParams,
    record_timeline: bool,
) -> Result<ReplayResult, ReplayError> {
    let n = trace.ncells();
    let torus = Torus::for_cells(n as u32);
    let tparams = TNetParams {
        prolog: params.network_prolog,
        per_hop: params.network_delay,
        per_byte: params.network_msg_per_byte,
    };
    let mut tnet = TNet::new(torus, tparams, Contention::None);
    if record_timeline {
        tnet.enable_events();
    }
    let mut eng = Engine {
        p: params.clone(),
        trace,
        evq: EventQueue::new(),
        clock: Clock::new(),
        tnet,
        pc: vec![0; n],
        cpu: vec![Resource::new(); n],
        send_engine: vec![Resource::new(); n],
        recv_engine: vec![Resource::new(); n],
        bd: vec![PeBreakdown::default(); n],
        done: vec![false; n],
        done_count: 0,
        flag_counts: HashMap::new(),
        flag_waiters: HashMap::new(),
        ring_ready: HashMap::new(),
        recv_waiters: HashMap::new(),
        reg_ready: HashMap::new(),
        reg_waiters: HashMap::new(),
        barrier: Vec::new(),
        bcast: Vec::new(),
        bcast_sig: None,
        rstore_issued: vec![0; n],
        rstore_acked: vec![0; n],
        fence_waiters: HashMap::new(),
        load_waiters: HashMap::new(),
        obs: Recorder::new(record_timeline),
        flag_wait: Hist::new(),
        next_tid: 0,
        xfers: HashMap::new(),
        put_lat: SegmentHists::new(),
        get_lat: SegmentHists::new(),
    };
    for pe in 0..n as u32 {
        eng.evq.push(SimTime::ZERO, REv::Step { pe });
    }
    eng.run()?;
    let total = eng
        .bd
        .iter()
        .map(|b| b.finish)
        .max()
        .unwrap_or(SimTime::ZERO);
    let mut counters = apobs::Counters::new();
    counters.msg_size.merge(&eng.tnet.obs().msg_size);
    counters.hop_latency.merge(&eng.tnet.obs().latency);
    counters.flag_wait.merge(&eng.flag_wait);
    counters.put_lat.merge(&eng.put_lat);
    counters.get_lat.merge(&eng.get_lat);
    let mut timeline = apobs::Timeline::from_events(params.name.clone(), eng.obs.take_events());
    timeline.extend(eng.tnet.take_events());
    timeline.sort();
    Ok(ReplayResult {
        model: params.name.clone(),
        per_pe: eng.bd,
        total,
        counters,
        timeline,
    })
}

impl Engine<'_> {
    fn run(&mut self) -> Result<(), ReplayError> {
        while let Some((t, ev)) = self.evq.pop() {
            self.clock.advance_to(t);
            self.handle(ev)?;
        }
        if self.done_count < self.done.len() {
            let stuck: Vec<String> = self
                .done
                .iter()
                .enumerate()
                .filter(|(_, d)| !**d)
                .map(|(i, _)| format!("pe{i}@op{}", self.pc[i]))
                .collect();
            return Err(ReplayError::Stuck(stuck.join(", ")));
        }
        Ok(())
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advances `pe` past its current op, scheduling the next Step.
    fn advance(&mut self, pe: u32, at: SimTime) {
        self.pc[pe as usize] += 1;
        self.evq.push(at, REv::Step { pe });
    }

    /// Allocates a fresh nonzero transfer-chain id.
    fn alloc_tid(&mut self) -> u64 {
        self.next_tid += 1;
        self.next_tid
    }

    /// Advances transfer `tid`'s attribution cursor to `to`, charging the
    /// uncovered time to segment `seg` (see the emulator kernel's
    /// identically-named helper).
    fn charge_xfer(&mut self, tid: u64, seg: Seg, to: SimTime) {
        let Some(f) = self.xfers.get_mut(&tid) else {
            return;
        };
        let d = to.saturating_sub(f.cursor);
        match seg {
            Seg::Issue => f.x.issue += d,
            Seg::Queue => f.x.queue += d,
            Seg::Dma => f.x.dma += d,
            Seg::Net => f.x.net += d,
            Seg::Delivery => f.x.delivery += d,
        }
        f.cursor += d;
    }

    /// Completes transfer `tid` at `end`, folding it into the per-segment
    /// histograms.
    fn finish_xfer(&mut self, tid: u64, end: SimTime) {
        let Some(InFlight { mut x, cursor }) = self.xfers.remove(&tid) else {
            return;
        };
        x.end = end.max(cursor);
        debug_assert_eq!(
            x.segment_sum(),
            x.total(),
            "replayed transfer {tid} segments do not cover its latency: {x:?}"
        );
        match x.kind {
            XferKind::Put => self.put_lat.record(&x),
            XferKind::Get => self.get_lat.record(&x),
            XferKind::Other => {}
        }
    }

    fn handle(&mut self, ev: REv) -> Result<(), ReplayError> {
        match ev {
            REv::Step { pe } => self.step(pe),
            REv::PutArrive {
                dst,
                bytes,
                recv_flag,
                tid,
            } => {
                let landed = self.receive_payload(dst, bytes, tid);
                self.charge_xfer(tid, Seg::Delivery, landed);
                self.finish_xfer(tid, landed);
                if recv_flag != 0 {
                    self.evq.push(
                        landed,
                        REv::FlagInc {
                            pe: dst,
                            flag: recv_flag,
                            tid,
                        },
                    );
                }
                Ok(())
            }
            REv::GetArrive {
                dst,
                requester,
                bytes,
                send_flag,
                recv_flag,
                tid,
            } => {
                // The owner's MSC+ (or interrupt handler) produces the reply.
                // Under software handling the reply is issued from *inside*
                // the interrupt handler — it pays header analysis, the
                // cache post for the gathered data, and the reply DMA
                // setup, but not the user-level SVC prolog/epilog of
                // Figure 7 (the handler is already in the kernel).
                let now = self.now();
                let cpu_cost = self.p.recv_cpu_overhead(0)
                    + if self.p.software_handling {
                        self.p.put_msg_post_per_byte.saturating_mul(bytes) + self.p.put_dma_set
                    } else {
                        SimTime::ZERO
                    };
                let ready = if cpu_cost > SimTime::ZERO {
                    let (_, e) = self.cpu[dst as usize].reserve(now, cpu_cost);
                    self.bd[dst as usize].overhead += cpu_cost;
                    e
                } else {
                    now
                };
                self.charge_xfer(tid, Seg::Issue, ready);
                let (rs, depart) =
                    self.send_engine[dst as usize].reserve(ready, self.p.send_hw_latency(bytes));
                self.charge_xfer(tid, Seg::Queue, rs);
                self.charge_xfer(tid, Seg::Dma, depart);
                if send_flag != 0 {
                    self.evq.push(
                        depart,
                        REv::FlagInc {
                            pe: dst,
                            flag: send_flag,
                            tid,
                        },
                    );
                }
                let arrival = self.tnet.transfer_tagged(
                    depart,
                    CellId::new(dst),
                    CellId::new(requester),
                    bytes + HEADER,
                    tid,
                );
                self.charge_xfer(tid, Seg::Net, arrival);
                self.evq.push(
                    arrival,
                    REv::PutArrive {
                        dst: requester,
                        bytes,
                        recv_flag,
                        tid,
                    },
                );
                Ok(())
            }
            REv::RingArrive { dst, src, bytes } => {
                let ready = self.receive_payload(dst, bytes, 0);
                self.ring_ready
                    .entry((dst, src))
                    .or_default()
                    .push_back((ready, bytes));
                if let Some(&(wsrc, wbytes, since)) = self.recv_waiters.get(&dst) {
                    if wsrc == src {
                        self.recv_waiters.remove(&dst);
                        let (r, b) = self
                            .ring_ready
                            .get_mut(&(dst, src))
                            .expect("just pushed")
                            .pop_front()
                            .expect("just pushed");
                        let _ = wbytes;
                        self.finish_recv(dst, b, since, r);
                    }
                }
                Ok(())
            }
            REv::RegArrive { dst, reg } => {
                let now = self.now();
                self.reg_ready.entry((dst, reg)).or_default().push_back(now);
                if let Some(since) = self.reg_waiters.remove(&(dst, reg)) {
                    self.reg_ready
                        .get_mut(&(dst, reg))
                        .expect("just pushed")
                        .pop_front();
                    self.obs.span(
                        dst,
                        Unit::Cpu,
                        "reg_load_wait",
                        since,
                        now.saturating_sub(since),
                        Bucket::Idle,
                        reg as u64,
                    );
                    self.bd[dst as usize].idle += now.saturating_sub(since);
                    let (_, e) = self.cpu[dst as usize].reserve(now, self.p.reg_load);
                    self.bd[dst as usize].overhead += self.p.reg_load;
                    self.advance(dst, e);
                }
                Ok(())
            }
            REv::RStoreArrive { dst, src, bytes } => {
                // Land the store (receive side), then the MSC+ replies with
                // an acknowledge packet automatically (§4.2).
                let landed = self.receive_payload(dst, bytes, 0);
                let (_, depart) =
                    self.send_engine[dst as usize].reserve(landed, self.p.send_hw_latency(0));
                let arrival =
                    self.tnet
                        .transfer(depart, CellId::new(dst), CellId::new(src), HEADER);
                self.evq.push(arrival, REv::RAckArrive { dst: src });
                Ok(())
            }
            REv::RAckArrive { dst } => {
                let now = self.now();
                self.rstore_acked[dst as usize] += 1;
                if self.rstore_acked[dst as usize] == self.rstore_issued[dst as usize] {
                    if let Some(since) = self.fence_waiters.remove(&dst) {
                        self.obs.span(
                            dst,
                            Unit::Cpu,
                            "remote_fence",
                            since,
                            now.saturating_sub(since),
                            Bucket::Idle,
                            self.rstore_acked[dst as usize],
                        );
                        self.bd[dst as usize].idle += now.saturating_sub(since);
                        self.advance(dst, now);
                    }
                }
                Ok(())
            }
            REv::RLoadArrive {
                dst,
                requester,
                bytes,
            } => {
                let now = self.now();
                let serve = self.p.recv_cpu_overhead(0);
                let ready = if serve > SimTime::ZERO {
                    let (_, e) = self.cpu[dst as usize].reserve(now, serve);
                    self.bd[dst as usize].overhead += serve;
                    e
                } else {
                    now
                };
                let (_, depart) =
                    self.send_engine[dst as usize].reserve(ready, self.p.send_hw_latency(bytes));
                let arrival = self.tnet.transfer(
                    depart,
                    CellId::new(dst),
                    CellId::new(requester),
                    bytes + HEADER,
                );
                self.evq.push(arrival, REv::RLoadReply { dst: requester });
                Ok(())
            }
            REv::RLoadReply { dst } => {
                let now = self.now();
                if let Some(since) = self.load_waiters.remove(&dst) {
                    self.obs.span(
                        dst,
                        Unit::Cpu,
                        "remote_load",
                        since,
                        now.saturating_sub(since),
                        Bucket::Idle,
                        0,
                    );
                    self.bd[dst as usize].idle += now.saturating_sub(since);
                    self.advance(dst, now);
                }
                Ok(())
            }
            REv::FlagInc { pe, flag, tid } => {
                let now = self.now();
                self.obs
                    .instant_id(pe, Unit::Cpu, "flag_update", now, Bucket::Hw, flag, tid);
                let c = self.flag_counts.entry((pe, flag)).or_insert(0);
                *c += 1;
                let count = *c;
                if let Some(&(target, since)) = self.flag_waiters.get(&(pe, flag)) {
                    if count >= target {
                        self.flag_waiters.remove(&(pe, flag));
                        let waited = now.saturating_sub(since);
                        self.flag_wait.record(waited.as_nanos());
                        self.obs.span_id(
                            pe,
                            Unit::Cpu,
                            "wait_flag",
                            since,
                            waited,
                            Bucket::Idle,
                            flag,
                            tid,
                        );
                        self.bd[pe as usize].idle += waited;
                        let (_, e) = self.cpu[pe as usize].reserve(now, self.p.flag_check);
                        self.bd[pe as usize].overhead += self.p.flag_check;
                        self.advance(pe, e);
                    }
                }
                Ok(())
            }
        }
    }

    /// Models landing a payload at `dst`: interrupt service (software
    /// handling) or receive engine (hardware). Returns the time the data
    /// and its flag are usable.
    fn receive_payload(&mut self, dst: u32, bytes: u64, tid: u64) -> SimTime {
        let now = self.now();
        if self.p.software_handling {
            let service = self.p.recv_cpu_overhead(bytes);
            let (s, e) = self.cpu[dst as usize].reserve(now, service);
            self.obs.span_id(
                dst,
                Unit::Cpu,
                "recv_intr",
                s,
                service,
                Bucket::Overhead,
                bytes,
                tid,
            );
            self.bd[dst as usize].overhead += service;
            e + self.p.put_msg_per_byte.saturating_mul(bytes)
        } else {
            let (s, e) = self.recv_engine[dst as usize].reserve(now, self.p.recv_hw_latency(bytes));
            self.obs.span_id(
                dst,
                Unit::RecvDma,
                "recv_dma",
                s,
                e.saturating_sub(s),
                Bucket::Hw,
                bytes,
                tid,
            );
            e
        }
    }

    fn finish_recv(&mut self, pe: u32, bytes: u64, since: SimTime, ready: SimTime) {
        let now = self.now().max(ready);
        let waited = now.saturating_sub(since);
        if waited > SimTime::ZERO {
            self.obs.span(
                pe,
                Unit::Cpu,
                "recv_wait",
                since,
                waited,
                Bucket::Idle,
                bytes,
            );
        }
        self.bd[pe as usize].idle += waited;
        let copy = self.p.recv_copy_per_byte.saturating_mul(bytes) + self.p.flag_check;
        let (s, e) = self.cpu[pe as usize].reserve(now, copy);
        self.obs
            .span(pe, Unit::Cpu, "recv_copy", s, copy, Bucket::Overhead, bytes);
        self.bd[pe as usize].overhead += copy;
        self.advance(pe, e);
    }

    fn step(&mut self, pe: u32) -> Result<(), ReplayError> {
        let t = self.now();
        let idx = self.pc[pe as usize];
        let ops = &self.trace.pe(CellId::new(pe)).ops;
        if idx >= ops.len() {
            if !self.done[pe as usize] {
                self.done[pe as usize] = true;
                self.done_count += 1;
                self.bd[pe as usize].finish = t;
            }
            return Ok(());
        }
        let op = ops[idx];
        match op {
            Op::Work { flops } => {
                let dur = SimTime::from_nanos(
                    (self.p.flop_time().as_nanos() as f64 * flops as f64) as u64,
                );
                let (s, e) = self.cpu[pe as usize].reserve(t, dur);
                self.obs
                    .span(pe, Unit::Cpu, "work", s, dur, Bucket::Exec, flops);
                self.bd[pe as usize].exec += dur;
                self.advance(pe, e);
            }
            Op::Rts { units } => {
                let dur = SimTime::from_nanos(
                    (self.p.rts_time().as_nanos() as f64 * units as f64) as u64,
                );
                let (s, e) = self.cpu[pe as usize].reserve(t, dur);
                self.obs
                    .span(pe, Unit::Cpu, "rts", s, dur, Bucket::Rts, units);
                self.bd[pe as usize].rts += dur;
                self.advance(pe, e);
            }
            Op::Put {
                dst,
                bytes,
                send_flag,
                recv_flag,
                ..
            } => {
                let over = self.p.send_cpu_overhead(bytes);
                let tid = self.alloc_tid();
                self.xfers.insert(
                    tid,
                    InFlight {
                        x: XferLat::new(XferKind::Put, bytes, t),
                        cursor: t,
                    },
                );
                let (s, e) = self.cpu[pe as usize].reserve(t, over);
                self.charge_xfer(tid, Seg::Issue, e);
                self.obs.span_id(
                    pe,
                    Unit::Cpu,
                    "put_issue",
                    s,
                    over,
                    Bucket::Overhead,
                    bytes,
                    tid,
                );
                self.bd[pe as usize].overhead += over;
                let (ds, depart) =
                    self.send_engine[pe as usize].reserve(e, self.p.send_hw_latency(bytes));
                self.charge_xfer(tid, Seg::Queue, ds);
                self.charge_xfer(tid, Seg::Dma, depart);
                self.obs.span_id(
                    pe,
                    Unit::SendDma,
                    "send_dma",
                    ds,
                    depart.saturating_sub(ds),
                    Bucket::Hw,
                    bytes,
                    tid,
                );
                if send_flag != 0 {
                    self.evq.push(
                        depart,
                        REv::FlagInc {
                            pe,
                            flag: send_flag,
                            tid,
                        },
                    );
                }
                let arrival =
                    self.tnet
                        .transfer_tagged(depart, CellId::new(pe), dst, bytes + HEADER, tid);
                self.charge_xfer(tid, Seg::Net, arrival);
                self.evq.push(
                    arrival,
                    REv::PutArrive {
                        dst: dst.as_u32(),
                        bytes,
                        recv_flag,
                        tid,
                    },
                );
                self.advance(pe, e);
            }
            Op::Get {
                src,
                bytes,
                send_flag,
                recv_flag,
                ..
            } => {
                let over = self.p.send_cpu_overhead(0);
                let tid = self.alloc_tid();
                self.xfers.insert(
                    tid,
                    InFlight {
                        x: XferLat::new(XferKind::Get, bytes, t),
                        cursor: t,
                    },
                );
                let (s, e) = self.cpu[pe as usize].reserve(t, over);
                self.charge_xfer(tid, Seg::Issue, e);
                self.obs.span_id(
                    pe,
                    Unit::Cpu,
                    "get_issue",
                    s,
                    over,
                    Bucket::Overhead,
                    bytes,
                    tid,
                );
                self.bd[pe as usize].overhead += over;
                let (rs, depart) =
                    self.send_engine[pe as usize].reserve(e, self.p.send_hw_latency(0));
                self.charge_xfer(tid, Seg::Queue, rs);
                self.charge_xfer(tid, Seg::Dma, depart);
                let arrival = self
                    .tnet
                    .transfer_tagged(depart, CellId::new(pe), src, HEADER, tid);
                self.charge_xfer(tid, Seg::Net, arrival);
                self.evq.push(
                    arrival,
                    REv::GetArrive {
                        dst: src.as_u32(),
                        requester: pe,
                        bytes,
                        send_flag,
                        recv_flag,
                        tid,
                    },
                );
                self.advance(pe, e);
            }
            Op::Send { dst, bytes } => {
                let over = self.p.send_call + self.p.send_cpu_overhead(bytes);
                let (s, e) = self.cpu[pe as usize].reserve(t, over);
                self.obs
                    .span(pe, Unit::Cpu, "send_call", s, over, Bucket::Overhead, bytes);
                self.bd[pe as usize].overhead += over;
                let (ds, depart) =
                    self.send_engine[pe as usize].reserve(e, self.p.send_hw_latency(bytes));
                self.obs.span(
                    pe,
                    Unit::SendDma,
                    "send_dma",
                    ds,
                    depart.saturating_sub(ds),
                    Bucket::Hw,
                    bytes,
                );
                let arrival = self
                    .tnet
                    .transfer(depart, CellId::new(pe), dst, bytes + HEADER);
                self.evq.push(
                    arrival,
                    REv::RingArrive {
                        dst: dst.as_u32(),
                        src: pe,
                        bytes,
                    },
                );
                // Blocking SEND: the library waits for send completion.
                let blocked = depart.saturating_sub(e);
                if blocked > SimTime::ZERO {
                    self.obs
                        .span(pe, Unit::Cpu, "send_wait", e, blocked, Bucket::Idle, bytes);
                }
                self.bd[pe as usize].idle += blocked;
                self.advance(pe, e.max(depart));
            }
            Op::Recv { src, .. } => {
                let key = (pe, src.as_u32());
                if let Some(q) = self.ring_ready.get_mut(&key) {
                    if let Some((ready, bytes)) = q.pop_front() {
                        self.finish_recv(pe, bytes, t, ready);
                        return Ok(());
                    }
                }
                self.recv_waiters.insert(pe, (src.as_u32(), 0, t));
            }
            Op::WaitFlag { flag, target } => {
                let have = self.flag_counts.get(&(pe, flag)).copied().unwrap_or(0);
                if have >= target {
                    self.flag_wait.record(0);
                    let (s, e) = self.cpu[pe as usize].reserve(t, self.p.flag_check);
                    self.obs.span(
                        pe,
                        Unit::Cpu,
                        "flag_check",
                        s,
                        self.p.flag_check,
                        Bucket::Overhead,
                        flag,
                    );
                    self.bd[pe as usize].overhead += self.p.flag_check;
                    self.advance(pe, e);
                } else {
                    self.flag_waiters.insert((pe, flag), (target, t));
                }
            }
            Op::Barrier => {
                self.barrier.push((pe, t));
                if self.barrier.len() == self.done.len() {
                    let latest = self
                        .barrier
                        .iter()
                        .map(|&(_, s)| s)
                        .max()
                        .expect("nonempty");
                    let release = latest + self.p.barrier_latency;
                    let parts = std::mem::take(&mut self.barrier);
                    for (p, since) in parts {
                        self.obs.span(
                            p,
                            Unit::Cpu,
                            "barrier",
                            since,
                            release.saturating_sub(since),
                            Bucket::Idle,
                            0,
                        );
                        self.bd[p as usize].idle += release.saturating_sub(since);
                        self.advance(p, release);
                    }
                }
            }
            Op::Bcast { root, bytes } => {
                match self.bcast_sig {
                    None => self.bcast_sig = Some((root.as_u32(), bytes)),
                    Some(sig) => {
                        if sig != (root.as_u32(), bytes) {
                            return Err(ReplayError::Mismatch(format!(
                                "pe{pe} joined bcast({root},{bytes}) but collective is {sig:?}"
                            )));
                        }
                    }
                }
                self.bcast.push((pe, t));
                if self.bcast.len() == self.done.len() {
                    let latest = self.bcast.iter().map(|&(_, s)| s).max().expect("nonempty");
                    let delivery = latest
                        + self.p.network_prolog
                        + self.p.bnet_per_byte.saturating_mul(bytes + HEADER);
                    let parts = std::mem::take(&mut self.bcast);
                    self.bcast_sig = None;
                    for (p, since) in parts {
                        self.obs.span(
                            p,
                            Unit::Cpu,
                            "bcast",
                            since,
                            delivery.saturating_sub(since),
                            Bucket::Idle,
                            bytes,
                        );
                        self.bd[p as usize].idle += delivery.saturating_sub(since);
                        self.advance(p, delivery);
                    }
                }
            }
            Op::RegStore { dst, reg } => {
                let (s, e) = self.cpu[pe as usize].reserve(t, self.p.reg_store);
                self.obs.span(
                    pe,
                    Unit::Cpu,
                    "reg_store",
                    s,
                    self.p.reg_store,
                    Bucket::Overhead,
                    reg as u64,
                );
                self.bd[pe as usize].overhead += self.p.reg_store;
                if dst.as_u32() == pe {
                    self.evq.push(e, REv::RegArrive { dst: pe, reg });
                } else {
                    let arrival = self.tnet.transfer(e, CellId::new(pe), dst, 4 + HEADER);
                    self.evq.push(
                        arrival,
                        REv::RegArrive {
                            dst: dst.as_u32(),
                            reg,
                        },
                    );
                }
                self.advance(pe, e);
            }
            Op::RegLoad { reg } => {
                let key = (pe, reg);
                let token = self.reg_ready.get_mut(&key).and_then(|q| q.pop_front());
                match token {
                    Some(ready) => {
                        let start = t.max(ready);
                        self.bd[pe as usize].idle += ready.saturating_sub(t);
                        let (s, e) = self.cpu[pe as usize].reserve(start, self.p.reg_load);
                        self.obs.span(
                            pe,
                            Unit::Cpu,
                            "reg_load",
                            s,
                            self.p.reg_load,
                            Bucket::Overhead,
                            reg as u64,
                        );
                        self.bd[pe as usize].overhead += self.p.reg_load;
                        self.advance(pe, e);
                    }
                    None => {
                        self.reg_waiters.insert(key, t);
                    }
                }
            }
            Op::RemoteStore { dst, bytes } => {
                // Hardware-generated on the AP1000+ (a plain store into
                // shared space); software emulation pays the PUT chain.
                let over = if self.p.software_handling {
                    self.p.send_cpu_overhead(bytes)
                } else {
                    self.p.reg_store
                };
                let (s, e) = self.cpu[pe as usize].reserve(t, over);
                self.obs.span(
                    pe,
                    Unit::Cpu,
                    "remote_store",
                    s,
                    over,
                    Bucket::Overhead,
                    bytes,
                );
                self.bd[pe as usize].overhead += over;
                self.rstore_issued[pe as usize] += 1;
                let (_, depart) =
                    self.send_engine[pe as usize].reserve(e, self.p.send_hw_latency(bytes));
                let arrival = self
                    .tnet
                    .transfer(depart, CellId::new(pe), dst, bytes + HEADER);
                self.evq.push(
                    arrival,
                    REv::RStoreArrive {
                        dst: dst.as_u32(),
                        src: pe,
                        bytes,
                    },
                );
                self.advance(pe, e);
            }
            Op::RemoteLoad { src, bytes } => {
                let over = if self.p.software_handling {
                    self.p.send_cpu_overhead(0)
                } else {
                    self.p.reg_load
                };
                let (_, e) = self.cpu[pe as usize].reserve(t, over);
                self.bd[pe as usize].overhead += over;
                let (_, depart) =
                    self.send_engine[pe as usize].reserve(e, self.p.send_hw_latency(0));
                let arrival = self.tnet.transfer(depart, CellId::new(pe), src, HEADER);
                self.evq.push(
                    arrival,
                    REv::RLoadArrive {
                        dst: src.as_u32(),
                        requester: pe,
                        bytes,
                    },
                );
                self.load_waiters.insert(pe, t);
            }
            Op::RemoteFence => {
                if self.rstore_acked[pe as usize] == self.rstore_issued[pe as usize] {
                    self.advance(pe, t);
                } else {
                    self.fence_waiters.insert(pe, t);
                }
            }
            Op::MarkGopScalar | Op::MarkGopVector => {
                self.advance(pe, t);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptrace::Trace;

    fn put(dst: u32, bytes: u64, recv_flag: u64) -> Op {
        Op::Put {
            dst: CellId::new(dst),
            bytes,
            stride: false,
            ack: false,
            send_flag: 0,
            recv_flag,
        }
    }

    #[test]
    fn empty_trace_finishes_at_zero() {
        let t = Trace::new(4);
        let r = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        assert_eq!(r.total, SimTime::ZERO);
    }

    #[test]
    fn work_scales_with_computation_factor() {
        let mut t = Trace::new(1);
        t.pe_mut(CellId::new(0)).push(Op::Work { flops: 1000 });
        let slow = replay(&t, &ModelParams::ap1000()).unwrap();
        let fast = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        assert_eq!(slow.total.as_nanos(), 1000 * 160);
        assert_eq!(fast.total.as_nanos(), 1000 * 20);
    }

    #[test]
    fn put_flag_chain_completes_and_hw_wins() {
        let mut t = Trace::new(2);
        t.pe_mut(CellId::new(0)).push(put(1, 1024, 7));
        t.pe_mut(CellId::new(1))
            .push(Op::WaitFlag { flag: 7, target: 1 });
        let old = replay(&t, &ModelParams::ap1000()).unwrap();
        let star = replay(&t, &ModelParams::ap1000_star()).unwrap();
        let plus = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        assert!(old.total > plus.total);
        assert!(star.total > plus.total, "software handling still pays");
        // Receiver idle until data lands; sender overhead differs 20x.
        assert!(old.per_pe[0].overhead > plus.per_pe[0].overhead * 10);
    }

    #[test]
    fn interrupts_steal_receiver_cpu_only_in_software_model() {
        // PE1 computes while PE0 sends it 10 messages. Under software
        // handling PE1's overhead grows and its work is delayed.
        let mut t = Trace::new(2);
        for _ in 0..10 {
            t.pe_mut(CellId::new(0)).push(put(1, 4096, 0));
        }
        // Two work phases: interrupts land between them and delay the
        // second phase (the engine charges interrupt service to the CPU,
        // pushing subsequent program ops back).
        t.pe_mut(CellId::new(1)).push(Op::Work { flops: 100_000 });
        t.pe_mut(CellId::new(1)).push(Op::Work { flops: 100_000 });
        let old = replay(&t, &ModelParams::ap1000_star()).unwrap();
        let plus = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        assert!(old.per_pe[1].overhead > SimTime::ZERO);
        assert_eq!(plus.per_pe[1].overhead, SimTime::ZERO);
        assert!(old.per_pe[1].finish > plus.per_pe[1].finish);
    }

    #[test]
    fn barrier_synchronizes_all() {
        let mut t = Trace::new(3);
        t.pe_mut(CellId::new(0)).push(Op::Work { flops: 10 });
        for pe in 0..3 {
            t.pe_mut(CellId::new(pe)).push(Op::Barrier);
        }
        let r = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        // All finish at the same post-barrier instant.
        assert_eq!(r.per_pe[0].finish, r.per_pe[1].finish);
        assert_eq!(r.per_pe[1].finish, r.per_pe[2].finish);
        // PEs 1,2 idled waiting for PE 0's work.
        assert!(r.per_pe[1].idle >= SimTime::from_nanos(10 * 20));
    }

    #[test]
    fn send_recv_dependency_orders_time() {
        let mut t = Trace::new(2);
        t.pe_mut(CellId::new(0)).push(Op::Work { flops: 50_000 });
        t.pe_mut(CellId::new(0)).push(Op::Send {
            dst: CellId::new(1),
            bytes: 800,
        });
        t.pe_mut(CellId::new(1)).push(Op::Recv {
            src: CellId::new(0),
            bytes: 800,
        });
        let r = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        assert!(r.per_pe[1].idle > SimTime::from_nanos(50_000 * 20 / 2));
        assert!(r.per_pe[1].finish > r.per_pe[0].finish.saturating_sub(SimTime::from_micros(100)));
    }

    #[test]
    fn reg_protocol_round_trip() {
        let mut t = Trace::new(2);
        // PE0 stores to PE1's reg 3; PE1 loads it.
        t.pe_mut(CellId::new(0)).push(Op::RegStore {
            dst: CellId::new(1),
            reg: 3,
        });
        t.pe_mut(CellId::new(1)).push(Op::RegLoad { reg: 3 });
        let r = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        assert!(r.per_pe[1].finish > SimTime::ZERO);
    }

    #[test]
    fn bcast_mismatch_is_detected() {
        let mut t = Trace::new(2);
        t.pe_mut(CellId::new(0)).push(Op::Bcast {
            root: CellId::new(0),
            bytes: 8,
        });
        t.pe_mut(CellId::new(1)).push(Op::Bcast {
            root: CellId::new(1),
            bytes: 8,
        });
        assert!(matches!(
            replay(&t, &ModelParams::ap1000_plus()),
            Err(ReplayError::Mismatch(_))
        ));
    }

    #[test]
    fn unmatched_wait_is_stuck_not_hang() {
        let mut t = Trace::new(2);
        t.pe_mut(CellId::new(0))
            .push(Op::WaitFlag { flag: 9, target: 1 });
        let err = replay(&t, &ModelParams::ap1000_plus()).unwrap_err();
        assert!(matches!(err, ReplayError::Stuck(_)));
    }

    #[test]
    fn get_round_trip_bumps_both_flags() {
        let mut t = Trace::new(2);
        t.pe_mut(CellId::new(0)).push(Op::Get {
            src: CellId::new(1),
            bytes: 512,
            stride: false,
            ack_probe: false,
            send_flag: 11,
            recv_flag: 12,
        });
        t.pe_mut(CellId::new(0)).push(Op::WaitFlag {
            flag: 12,
            target: 1,
        });
        t.pe_mut(CellId::new(1)).push(Op::WaitFlag {
            flag: 11,
            target: 1,
        });
        let r = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        assert!(
            r.per_pe[0].finish
                > r.per_pe[1]
                    .finish
                    .saturating_sub(SimTime::from_micros(1000))
        );
    }

    #[test]
    fn observed_replay_emits_emulator_vocabulary() {
        let mut t = Trace::new(2);
        t.pe_mut(CellId::new(0)).push(Op::Work { flops: 100 });
        t.pe_mut(CellId::new(0)).push(put(1, 1024, 7));
        t.pe_mut(CellId::new(0)).push(Op::Barrier);
        t.pe_mut(CellId::new(1))
            .push(Op::WaitFlag { flag: 7, target: 1 });
        t.pe_mut(CellId::new(1)).push(Op::Barrier);
        let r = replay_observed(&t, &ModelParams::ap1000_plus(), true).unwrap();
        let names: std::collections::HashSet<&str> =
            r.timeline.events.iter().map(|e| e.name).collect();
        for expected in [
            "work",
            "put_issue",
            "send_dma",
            "recv_dma",
            "wait_flag",
            "barrier",
        ] {
            assert!(
                names.contains(expected),
                "missing {expected:?} in {names:?}"
            );
        }
        // Histograms fill regardless of the timeline switch.
        let off = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        assert!(off.timeline.is_empty(), "timeline must default off");
        assert_eq!(off.counters.msg_size.count(), 1);
        assert_eq!(off.counters.flag_wait.count(), 1);
        // Same trace, same model: identical result modulo the timeline.
        assert_eq!(off.per_pe, r.per_pe);
        assert_eq!(off.total, r.total);
    }

    #[test]
    fn breakdown_buckets_cover_finish_time() {
        // exec + rts + overhead + idle should approximately equal finish
        // for a busy PE (small slack from engine pipelining).
        let mut t = Trace::new(2);
        t.pe_mut(CellId::new(0)).push(Op::Work { flops: 1000 });
        t.pe_mut(CellId::new(0)).push(put(1, 2048, 5));
        t.pe_mut(CellId::new(0)).push(Op::Barrier);
        t.pe_mut(CellId::new(1))
            .push(Op::WaitFlag { flag: 5, target: 1 });
        t.pe_mut(CellId::new(1)).push(Op::Barrier);
        for model in [ModelParams::ap1000(), ModelParams::ap1000_plus()] {
            let r = replay(&t, &model).unwrap();
            for (i, b) in r.per_pe.iter().enumerate() {
                let acc = b.exec + b.rts + b.overhead + b.idle;
                let slack = b.finish.saturating_sub(acc);
                assert!(
                    slack <= SimTime::from_micros(2),
                    "{} pe{i}: accounted {} vs finish {}",
                    model.name,
                    acc,
                    b.finish
                );
            }
        }
    }
}

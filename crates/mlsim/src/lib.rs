//! # MLSim — the trace-driven message-level simulator
//!
//! Reproduction of the paper's evaluation vehicle (§5): *"A trace-driven
//! simulator for a message-passing parallel computer — the message level
//! simulator (MLSim) — has been developed to study communication
//! behavior. … MLSim simulates communication behavior based on the trace
//! information and parameter file, preserving the order of message
//! communications and barrier synchronization between processors with a
//! delay parameter."*
//!
//! A probe trace recorded by `apcore` is replayed under a
//! [`params::ModelParams`] parameter file. Three presets
//! reproduce the paper's three machines:
//!
//! * [`ModelParams::ap1000`] — SPARC processor, **software** message
//!   handling through interrupts (Figure 7's full overhead chain).
//! * [`ModelParams::ap1000_star`] — the §5.3 strawman: the same AP1000
//!   with the SPARC swapped for a SuperSPARC (8× compute), message
//!   handling still in software.
//! * [`ModelParams::ap1000_plus`] — SuperSPARC plus the MSC+ hardware
//!   message handling of the paper's proposal.
//!
//! The replay produces per-PE breakdowns into **execution / run-time
//! system / overhead / idle** — the four bars of Figure 8 — from which
//! Table 2's speedups follow.
//!
//! # Examples
//!
//! ```
//! use aptrace::{Op, Trace};
//! use aputil::CellId;
//! use mlsim::{replay, ModelParams};
//!
//! // A two-cell trace: cell 0 PUTs 1 KB to cell 1, which waits on a flag.
//! let mut t = Trace::new(2);
//! t.pe_mut(CellId::new(0)).push(Op::Put {
//!     dst: CellId::new(1), bytes: 1024, stride: false, ack: false,
//!     send_flag: 0, recv_flag: 7,
//! });
//! t.pe_mut(CellId::new(1)).push(Op::WaitFlag { flag: 7, target: 1 });
//!
//! let plus = replay(&t, &ModelParams::ap1000_plus()).unwrap();
//! let old = replay(&t, &ModelParams::ap1000()).unwrap();
//! assert!(old.total > plus.total, "hardware handling must be faster");
//! ```

pub mod divergence;
pub mod params;
pub mod remodel;
pub mod replay;
pub mod report;

pub use divergence::{
    divergence, sampled_divergence, DivergenceReport, DivergenceRow, SegmentDelta,
};
pub use params::ModelParams;
pub use remodel::{factor_grid, remodel, RemodelPoint};
pub use replay::{replay, replay_observed, PeBreakdown, ReplayError, ReplayResult};
pub use report::{fig8_rows, speedup, Fig8Row};

//! Property tests of the replay engine on randomized well-formed traces.

use aptrace::{Op, Trace};
use aputil::{CellId, SimTime};
use mlsim::{replay, ModelParams};
use proptest::prelude::*;

/// A generator for well-formed traces: arbitrary non-blocking ops plus an
/// equal number of barriers on every PE (so replay always completes).
fn arb_trace() -> impl Strategy<Value = Trace> {
    let op = prop_oneof![
        (1u64..10_000).prop_map(|flops| Op::Work { flops }),
        (1u64..100).prop_map(|units| Op::Rts { units }),
        (0u32..4, 1u64..4096).prop_map(|(dst, bytes)| Op::Put {
            dst: CellId::new(dst),
            bytes,
            stride: false,
            ack: false,
            send_flag: 0,
            recv_flag: 0,
        }),
        (0u32..4, 1u64..512).prop_map(|(dst, bytes)| Op::RemoteStore {
            dst: CellId::new(dst),
            bytes,
        }),
    ];
    (
        proptest::collection::vec(proptest::collection::vec(op, 0..25), 4),
        0usize..4,
    )
        .prop_map(|(per_pe, barriers)| {
            let mut t = Trace::new(4);
            for (i, ops) in per_pe.into_iter().enumerate() {
                let pe = t.pe_mut(CellId::new(i as u32));
                for (k, op) in ops.into_iter().enumerate() {
                    pe.push(op);
                    // Interleave the same number of barriers everywhere.
                    if k < barriers {
                        pe.push(Op::Barrier);
                    }
                }
                for _ in t
                    .pe(CellId::new(i as u32))
                    .ops
                    .iter()
                    .filter(|o| matches!(o, Op::Barrier))
                    .count()..barriers
                {
                    t.pe_mut(CellId::new(i as u32)).push(Op::Barrier);
                }
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every well-formed trace replays to completion under all three
    /// models, with the paper's model ordering and sane buckets.
    #[test]
    fn replay_completes_and_orders_models(trace in arb_trace()) {
        let plus = replay(&trace, &ModelParams::ap1000_plus()).unwrap();
        let star = replay(&trace, &ModelParams::ap1000_star()).unwrap();
        let old = replay(&trace, &ModelParams::ap1000()).unwrap();
        prop_assert!(plus.total <= star.total, "plus {} star {}", plus.total, star.total);
        prop_assert!(star.total <= old.total, "star {} old {}", star.total, old.total);
        for r in [&plus, &star, &old] {
            for (i, b) in r.per_pe.iter().enumerate() {
                prop_assert!(b.finish <= r.total, "pe{i} finishes after total");
                // Program-side buckets fit within the program's lifetime
                // (+ event slack). Overhead is excluded deliberately: under
                // software handling a PE keeps paying interrupt service for
                // arrivals even after its own program finished — which is
                // the paper's point about software message handling.
                let program_side = b.exec + b.rts + b.idle;
                prop_assert!(
                    program_side <= b.finish + SimTime::from_micros(10),
                    "{}: pe{i} exec+rts+idle {} > finish {}",
                    r.model, program_side, b.finish
                );
            }
        }
    }

    /// Replay is a pure function of (trace, params).
    #[test]
    fn replay_is_deterministic(trace in arb_trace()) {
        let a = replay(&trace, &ModelParams::ap1000()).unwrap();
        let b = replay(&trace, &ModelParams::ap1000()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Scaling only the processor (computation_factor) can never slow a
    /// trace down, and pure-compute traces scale exactly linearly.
    #[test]
    fn computation_factor_scales_work(flops in 1u64..1_000_000) {
        let mut t = Trace::new(1);
        t.pe_mut(CellId::new(0)).push(Op::Work { flops });
        let slow = replay(&t, &ModelParams::ap1000()).unwrap();
        let fast = replay(&t, &ModelParams::ap1000_plus()).unwrap();
        prop_assert_eq!(slow.total.as_nanos(), fast.total.as_nanos() * 8);
    }
}

//! The unified hardware-counter block surfaced on `RunReport` and
//! `ReplayResult`.

use crate::hist::Hist;
use crate::latency::SegmentHists;
use aputil::Json;

/// Hardware counters and log2 histograms collected during a run or replay.
///
/// Absorbs the formerly ad-hoc `queue_spills` / `ring_overflows` report
/// fields and adds the distribution views the paper's analysis needs
/// (message sizes for Table 3, wait latencies for Figure 7/8 reasoning).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Messages that spilled out of an MSC+ command queue into DRAM (§4.1).
    pub queue_spills: u64,
    /// OS interrupts taken to refill spilled queues.
    pub queue_refills: u64,
    /// Ring-buffer overflows requiring an OS buffer allocation (§4.3).
    pub ring_overflows: u64,
    /// Payload bytes per T-net message.
    pub msg_size: Hist,
    /// Nanoseconds a cell spent blocked per flag wait.
    pub flag_wait: Hist,
    /// MSC+ command-queue depth observed at each enqueue.
    pub queue_occupancy: Hist,
    /// End-to-end T-net transit nanoseconds per message (prolog + hops +
    /// serialization, including any contention stalls).
    pub hop_latency: Hist,
    /// Figure-6 segment decomposition of every PUT's end-to-end latency.
    pub put_lat: SegmentHists,
    /// Same decomposition for GETs (request + reply legs combined).
    pub get_lat: SegmentHists,
}

impl Counters {
    pub fn new() -> Self {
        Counters::default()
    }

    /// Folds another counter block into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.queue_spills += other.queue_spills;
        self.queue_refills += other.queue_refills;
        self.ring_overflows += other.ring_overflows;
        self.msg_size.merge(&other.msg_size);
        self.flag_wait.merge(&other.flag_wait);
        self.queue_occupancy.merge(&other.queue_occupancy);
        self.hop_latency.merge(&other.hop_latency);
        self.put_lat.merge(&other.put_lat);
        self.get_lat.merge(&other.get_lat);
    }

    /// JSON form for `--json` output.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("queue_spills", Json::from(self.queue_spills)),
            ("queue_refills", Json::from(self.queue_refills)),
            ("ring_overflows", Json::from(self.ring_overflows)),
            ("msg_size_bytes", self.msg_size.to_json()),
            ("flag_wait_ns", self.flag_wait.to_json()),
            ("queue_occupancy", self.queue_occupancy.to_json()),
            ("net_latency_ns", self.hop_latency.to_json()),
            ("put_latency", self.put_lat.to_json()),
            ("get_latency", self.get_lat.to_json()),
        ])
    }

    /// Multi-line human rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "queue spills {} (refills {}), ring overflows {}\n\
             msg size   : {}\n\
             flag wait  : {}\n\
             queue depth: {}\n\
             net latency: {}",
            self.queue_spills,
            self.queue_refills,
            self.ring_overflows,
            self.msg_size.render(),
            self.flag_wait.render(),
            self.queue_occupancy.render(),
            self.hop_latency.render(),
        );
        if self.put_lat.count() > 0 {
            out.push_str(&format!(
                "\nput latency ({} transfers):\n{}",
                self.put_lat.count(),
                self.put_lat.render()
            ));
        }
        if self.get_lat.count() > 0 {
            out.push_str(&format!(
                "\nget latency ({} transfers):\n{}",
                self.get_lat.count(),
                self.get_lat.render()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = Counters::new();
        a.queue_spills = 2;
        a.msg_size.record(100);
        let mut b = Counters::new();
        b.queue_spills = 3;
        b.ring_overflows = 1;
        b.msg_size.record(200);
        a.merge(&b);
        assert_eq!(a.queue_spills, 5);
        assert_eq!(a.ring_overflows, 1);
        assert_eq!(a.msg_size.count(), 2);
    }

    #[test]
    fn json_includes_all_counters() {
        let c = Counters::new();
        let j = c.to_json();
        for key in [
            "queue_spills",
            "queue_refills",
            "ring_overflows",
            "msg_size_bytes",
            "flag_wait_ns",
            "queue_occupancy",
            "net_latency_ns",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }
}

//! The event recorder: zero-overhead when disabled.
//!
//! A disabled [`Recorder`] is a single `bool` test per call site with no
//! allocation and no buffer; the event arguments are never materialized
//! because the inline check happens before any formatting or pushing.
//!
//! Besides fully-off and fully-on, a recorder can run as a **flight
//! recorder**: a fixed-capacity ring per hardware-unit category keeping
//! only the last N events of each. Memory is bounded no matter how long
//! the run, which is what makes post-mortem event context affordable on
//! 10k-cell machines where the unbounded timeline is not. The categories
//! are the [`Unit`]s, so a storm of CPU events cannot evict the last few
//! DMA or network events that usually explain a deadlock.

use crate::event::{Bucket, TimelineEvent, Unit};
use aputil::SimTime;
use std::collections::VecDeque;

/// Collects [`TimelineEvent`]s while enabled; a no-op sink otherwise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recorder {
    enabled: bool,
    events: Vec<TimelineEvent>,
    /// Flight-recorder mode: per-[`Unit`] rings of this capacity replace
    /// the unbounded `events` buffer.
    ring_cap: usize,
    rings: Vec<VecDeque<TimelineEvent>>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// A recorder that keeps events.
    pub fn enabled() -> Self {
        Recorder {
            enabled: true,
            ..Recorder::default()
        }
    }

    /// A bounded flight recorder keeping the last `cap` events per
    /// [`Unit`] category.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn ring(cap: usize) -> Self {
        assert!(cap > 0, "flight-recorder capacity must be > 0");
        Recorder {
            enabled: true,
            events: Vec::new(),
            ring_cap: cap,
            rings: vec![VecDeque::with_capacity(cap); Unit::ALL.len()],
        }
    }

    pub fn new(enabled: bool) -> Self {
        if enabled {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True in bounded flight-recorder mode.
    #[inline]
    pub fn is_ring(&self) -> bool {
        self.ring_cap > 0
    }

    #[inline]
    fn push(&mut self, ev: TimelineEvent) {
        if self.ring_cap == 0 {
            self.events.push(ev);
            return;
        }
        let ring = &mut self.rings[ev.unit.index() as usize];
        if ring.len() == self.ring_cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Records a duration slice with no chain affiliation.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        start: SimTime,
        dur: SimTime,
        bucket: Bucket,
        arg: u64,
    ) {
        self.span_id(cell, unit, name, start, dur, bucket, arg, 0);
    }

    /// Records a duration slice tagged with a transfer-chain id.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span_id(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        start: SimTime,
        dur: SimTime,
        bucket: Bucket,
        arg: u64,
        tid: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TimelineEvent {
            cell,
            unit,
            name,
            start,
            dur: Some(dur),
            bucket,
            arg,
            tid,
        });
    }

    /// Records an instant event with no chain affiliation.
    #[inline]
    pub fn instant(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        at: SimTime,
        bucket: Bucket,
        arg: u64,
    ) {
        self.instant_id(cell, unit, name, at, bucket, arg, 0);
    }

    /// Records an instant event tagged with a transfer-chain id.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn instant_id(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        at: SimTime,
        bucket: Bucket,
        arg: u64,
        tid: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TimelineEvent {
            cell,
            unit,
            name,
            start: at,
            dur: None,
            bucket,
            arg,
            tid,
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len() + self.rings.iter().map(VecDeque::len).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the buffered events, leaving the recorder empty but keeping
    /// its enabled state and mode. In ring mode the surviving events come
    /// back in [`Unit`] category order (sort by time downstream if
    /// needed — [`crate::Timeline::sort`] does).
    pub fn take_events(&mut self) -> Vec<TimelineEvent> {
        let mut out = std::mem::take(&mut self.events);
        for ring in &mut self.rings {
            out.extend(ring.drain(..));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let mut r = Recorder::disabled();
        r.span(
            0,
            Unit::Cpu,
            "work",
            SimTime::ZERO,
            SimTime::from_nanos(5),
            Bucket::Exec,
            1,
        );
        r.instant(0, Unit::Net, "hop", SimTime::ZERO, Bucket::Hw, 1);
        assert!(r.is_empty());
    }

    #[test]
    fn enabled_recorder_keeps_order() {
        let mut r = Recorder::enabled();
        r.span(
            0,
            Unit::Cpu,
            "work",
            SimTime::from_nanos(10),
            SimTime::from_nanos(5),
            Bucket::Exec,
            0,
        );
        r.instant(
            1,
            Unit::Queue,
            "enqueue",
            SimTime::from_nanos(12),
            Bucket::Hw,
            3,
        );
        let evs = r.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "work");
        assert_eq!(evs[0].end(), SimTime::from_nanos(15));
        assert_eq!(evs[1].dur, None);
        assert!(r.is_empty());
        assert!(r.is_enabled());
    }

    #[test]
    fn ring_keeps_last_n_per_category() {
        let mut r = Recorder::ring(3);
        assert!(r.is_ring() && r.is_enabled());
        // 10 CPU instants and 2 Net instants: the CPU storm must not
        // evict the network events.
        for i in 0..10u64 {
            r.instant(0, Unit::Cpu, "cpu", SimTime::from_nanos(i), Bucket::Exec, i);
        }
        for i in 0..2u64 {
            r.instant(0, Unit::Net, "hop", SimTime::from_nanos(i), Bucket::Hw, i);
        }
        assert_eq!(r.len(), 5);
        let evs = r.take_events();
        let cpu: Vec<u64> = evs
            .iter()
            .filter(|e| e.unit == Unit::Cpu)
            .map(|e| e.arg)
            .collect();
        assert_eq!(cpu, [7, 8, 9], "only the last 3 CPU events survive");
        assert_eq!(evs.iter().filter(|e| e.unit == Unit::Net).count(), 2);
        assert!(r.is_empty());
        assert!(r.is_ring(), "taking events keeps the mode");
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_ring_panics() {
        let _ = Recorder::ring(0);
    }
}

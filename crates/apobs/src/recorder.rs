//! The event recorder: zero-overhead when disabled.
//!
//! A disabled [`Recorder`] is a single `bool` test per call site with no
//! allocation and no buffer; the event arguments are never materialized
//! because the inline check happens before any formatting or pushing.
//!
//! Besides fully-off and fully-on, a recorder can run as a **flight
//! recorder**: a fixed-capacity ring per hardware-unit category keeping
//! only the last N events of each. Memory is bounded no matter how long
//! the run, which is what makes post-mortem event context affordable on
//! 10k-cell machines where the unbounded timeline is not. The categories
//! are the [`Unit`]s, so a storm of CPU events cannot evict the last few
//! DMA or network events that usually explain a deadlock.
//!
//! The fourth mode is **streaming**: every event is forwarded to a shared
//! [`EventSink`] (typically a binary `.evtrace` file writer) the moment it
//! is recorded, so even a >1024-cell machine can record a full event
//! stream without ever holding the timeline in memory. Several recorders
//! (the kernel's and the T-net's) can share one sink through the
//! `Arc<Mutex<..>>`; events arrive in emission order, not canonical
//! timeline order, and readers are expected to normalize.

use crate::event::{Bucket, TimelineEvent, Unit};
use aputil::SimTime;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A destination for streamed [`TimelineEvent`]s.
///
/// Implementors buffer or encode each event as it arrives; I/O errors are
/// remembered internally and surfaced once from [`EventSink::finish`] so
/// the recording hot path stays infallible.
pub trait EventSink: Send {
    /// Accepts one event, in emission order.
    fn event(&mut self, ev: &TimelineEvent);
    /// Flushes buffered state. Returns the first deferred error, if any.
    fn finish(&mut self) -> Result<(), String>;
}

/// A shareable, lockable [`EventSink`] handle.
pub type SharedSink = Arc<Mutex<dyn EventSink>>;

/// Collects [`TimelineEvent`]s while enabled; a no-op sink otherwise.
#[derive(Clone, Default)]
pub struct Recorder {
    enabled: bool,
    events: Vec<TimelineEvent>,
    /// Flight-recorder mode: per-[`Unit`] rings of this capacity replace
    /// the unbounded `events` buffer.
    ring_cap: usize,
    rings: Vec<VecDeque<TimelineEvent>>,
    /// Streaming mode: events are forwarded here instead of buffered.
    sink: Option<SharedSink>,
}

// The sink is compared by identity: two recorders are equal when they
// buffer the same events and stream to the same sink (or neither streams).
impl PartialEq for Recorder {
    fn eq(&self, other: &Self) -> bool {
        self.enabled == other.enabled
            && self.events == other.events
            && self.ring_cap == other.ring_cap
            && self.rings == other.rings
            && match (&self.sink, &other.sink) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for Recorder {}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("events", &self.events)
            .field("ring_cap", &self.ring_cap)
            .field("rings", &self.rings)
            .field("streaming", &self.sink.is_some())
            .finish()
    }
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// A recorder that keeps events.
    pub fn enabled() -> Self {
        Recorder {
            enabled: true,
            ..Recorder::default()
        }
    }

    /// A bounded flight recorder keeping the last `cap` events per
    /// [`Unit`] category.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn ring(cap: usize) -> Self {
        assert!(cap > 0, "flight-recorder capacity must be > 0");
        Recorder {
            enabled: true,
            ring_cap: cap,
            rings: vec![VecDeque::with_capacity(cap); Unit::ALL.len()],
            ..Recorder::default()
        }
    }

    /// A recorder that forwards every event to `sink` instead of
    /// buffering — memory stays O(1) no matter how long the run, so
    /// >1024-cell machines can record full event streams.
    pub fn streaming(sink: SharedSink) -> Self {
        Recorder {
            enabled: true,
            sink: Some(sink),
            ..Recorder::default()
        }
    }

    pub fn new(enabled: bool) -> Self {
        if enabled {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True in bounded flight-recorder mode.
    #[inline]
    pub fn is_ring(&self) -> bool {
        self.ring_cap > 0
    }

    /// True in streaming mode.
    #[inline]
    pub fn is_streaming(&self) -> bool {
        self.sink.is_some()
    }

    /// The shared sink, when streaming.
    pub fn sink(&self) -> Option<SharedSink> {
        self.sink.clone()
    }

    #[inline]
    fn push(&mut self, ev: TimelineEvent) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("event sink poisoned").event(&ev);
            return;
        }
        if self.ring_cap == 0 {
            self.events.push(ev);
            return;
        }
        let ring = &mut self.rings[ev.unit.index() as usize];
        if ring.len() == self.ring_cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Records a duration slice with no chain affiliation.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        start: SimTime,
        dur: SimTime,
        bucket: Bucket,
        arg: u64,
    ) {
        self.span_id(cell, unit, name, start, dur, bucket, arg, 0);
    }

    /// Records a duration slice tagged with a transfer-chain id.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span_id(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        start: SimTime,
        dur: SimTime,
        bucket: Bucket,
        arg: u64,
        tid: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TimelineEvent {
            cell,
            unit,
            name,
            start,
            dur: Some(dur),
            bucket,
            arg,
            tid,
        });
    }

    /// Records an instant event with no chain affiliation.
    #[inline]
    pub fn instant(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        at: SimTime,
        bucket: Bucket,
        arg: u64,
    ) {
        self.instant_id(cell, unit, name, at, bucket, arg, 0);
    }

    /// Records an instant event tagged with a transfer-chain id.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn instant_id(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        at: SimTime,
        bucket: Bucket,
        arg: u64,
        tid: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TimelineEvent {
            cell,
            unit,
            name,
            start: at,
            dur: None,
            bucket,
            arg,
            tid,
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len() + self.rings.iter().map(VecDeque::len).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the buffered events, leaving the recorder empty but keeping
    /// its enabled state and mode. In ring mode the surviving events come
    /// back in [`Unit`] category order (sort by time downstream if
    /// needed — [`crate::Timeline::sort`] does).
    pub fn take_events(&mut self) -> Vec<TimelineEvent> {
        let mut out = std::mem::take(&mut self.events);
        for ring in &mut self.rings {
            out.extend(ring.drain(..));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let mut r = Recorder::disabled();
        r.span(
            0,
            Unit::Cpu,
            "work",
            SimTime::ZERO,
            SimTime::from_nanos(5),
            Bucket::Exec,
            1,
        );
        r.instant(0, Unit::Net, "hop", SimTime::ZERO, Bucket::Hw, 1);
        assert!(r.is_empty());
    }

    #[test]
    fn enabled_recorder_keeps_order() {
        let mut r = Recorder::enabled();
        r.span(
            0,
            Unit::Cpu,
            "work",
            SimTime::from_nanos(10),
            SimTime::from_nanos(5),
            Bucket::Exec,
            0,
        );
        r.instant(
            1,
            Unit::Queue,
            "enqueue",
            SimTime::from_nanos(12),
            Bucket::Hw,
            3,
        );
        let evs = r.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "work");
        assert_eq!(evs[0].end(), SimTime::from_nanos(15));
        assert_eq!(evs[1].dur, None);
        assert!(r.is_empty());
        assert!(r.is_enabled());
    }

    #[test]
    fn ring_keeps_last_n_per_category() {
        let mut r = Recorder::ring(3);
        assert!(r.is_ring() && r.is_enabled());
        // 10 CPU instants and 2 Net instants: the CPU storm must not
        // evict the network events.
        for i in 0..10u64 {
            r.instant(0, Unit::Cpu, "cpu", SimTime::from_nanos(i), Bucket::Exec, i);
        }
        for i in 0..2u64 {
            r.instant(0, Unit::Net, "hop", SimTime::from_nanos(i), Bucket::Hw, i);
        }
        assert_eq!(r.len(), 5);
        let evs = r.take_events();
        let cpu: Vec<u64> = evs
            .iter()
            .filter(|e| e.unit == Unit::Cpu)
            .map(|e| e.arg)
            .collect();
        assert_eq!(cpu, [7, 8, 9], "only the last 3 CPU events survive");
        assert_eq!(evs.iter().filter(|e| e.unit == Unit::Net).count(), 2);
        assert!(r.is_empty());
        assert!(r.is_ring(), "taking events keeps the mode");
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_ring_panics() {
        let _ = Recorder::ring(0);
    }

    /// A sink that counts events — the minimal streaming round-trip.
    struct CountSink {
        n: usize,
        last: Option<TimelineEvent>,
    }

    impl EventSink for CountSink {
        fn event(&mut self, ev: &TimelineEvent) {
            self.n += 1;
            self.last = Some(ev.clone());
        }
        fn finish(&mut self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn streaming_recorder_forwards_and_buffers_nothing() {
        let sink = Arc::new(Mutex::new(CountSink { n: 0, last: None }));
        let shared: SharedSink = sink.clone();
        let mut r = Recorder::streaming(shared.clone());
        assert!(r.is_streaming() && r.is_enabled() && !r.is_ring());
        // Two recorders can share the sink (kernel + T-net pattern).
        let mut r2 = Recorder::streaming(shared);
        r.span(
            0,
            Unit::Cpu,
            "work",
            SimTime::from_nanos(10),
            SimTime::from_nanos(5),
            Bucket::Exec,
            7,
        );
        r2.instant(3, Unit::Net, "hop", SimTime::from_nanos(12), Bucket::Hw, 1);
        assert!(
            r.is_empty() && r2.is_empty(),
            "streamed events are not buffered"
        );
        assert!(r.take_events().is_empty());
        let s = sink.lock().unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.last.as_ref().unwrap().cell, 3);
        drop(s);
        assert_eq!(r, r.clone(), "recorders sharing a sink compare equal");
        assert_ne!(r, Recorder::enabled());
    }
}

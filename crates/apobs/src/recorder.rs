//! The event recorder: zero-overhead when disabled.
//!
//! A disabled [`Recorder`] is a single `bool` test per call site with no
//! allocation and no buffer; the event arguments are never materialized
//! because the inline check happens before any formatting or pushing.

use crate::event::{Bucket, TimelineEvent, Unit};
use aputil::SimTime;

/// Collects [`TimelineEvent`]s while enabled; a no-op sink otherwise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recorder {
    enabled: bool,
    events: Vec<TimelineEvent>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// A recorder that keeps events.
    pub fn enabled() -> Self {
        Recorder {
            enabled: true,
            events: Vec::new(),
        }
    }

    pub fn new(enabled: bool) -> Self {
        if enabled {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a duration slice with no chain affiliation.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        start: SimTime,
        dur: SimTime,
        bucket: Bucket,
        arg: u64,
    ) {
        self.span_id(cell, unit, name, start, dur, bucket, arg, 0);
    }

    /// Records a duration slice tagged with a transfer-chain id.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span_id(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        start: SimTime,
        dur: SimTime,
        bucket: Bucket,
        arg: u64,
        tid: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TimelineEvent {
            cell,
            unit,
            name,
            start,
            dur: Some(dur),
            bucket,
            arg,
            tid,
        });
    }

    /// Records an instant event with no chain affiliation.
    #[inline]
    pub fn instant(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        at: SimTime,
        bucket: Bucket,
        arg: u64,
    ) {
        self.instant_id(cell, unit, name, at, bucket, arg, 0);
    }

    /// Records an instant event tagged with a transfer-chain id.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn instant_id(
        &mut self,
        cell: u32,
        unit: Unit,
        name: &'static str,
        at: SimTime,
        bucket: Bucket,
        arg: u64,
        tid: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TimelineEvent {
            cell,
            unit,
            name,
            start: at,
            dur: None,
            bucket,
            arg,
            tid,
        });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the buffered events, leaving the recorder empty but keeping
    /// its enabled state.
    pub fn take_events(&mut self) -> Vec<TimelineEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let mut r = Recorder::disabled();
        r.span(
            0,
            Unit::Cpu,
            "work",
            SimTime::ZERO,
            SimTime::from_nanos(5),
            Bucket::Exec,
            1,
        );
        r.instant(0, Unit::Net, "hop", SimTime::ZERO, Bucket::Hw, 1);
        assert!(r.is_empty());
    }

    #[test]
    fn enabled_recorder_keeps_order() {
        let mut r = Recorder::enabled();
        r.span(
            0,
            Unit::Cpu,
            "work",
            SimTime::from_nanos(10),
            SimTime::from_nanos(5),
            Bucket::Exec,
            0,
        );
        r.instant(
            1,
            Unit::Queue,
            "enqueue",
            SimTime::from_nanos(12),
            Bucket::Hw,
            3,
        );
        let evs = r.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "work");
        assert_eq!(evs[0].end(), SimTime::from_nanos(15));
        assert_eq!(evs[1].dur, None);
        assert!(r.is_empty());
        assert!(r.is_enabled());
    }
}

//! The shared event vocabulary: one flat record type for everything the
//! emulator, the hardware models, and MLSim replay emit, so timelines from
//! different sources are directly comparable.

use aputil::SimTime;

/// Which hardware unit of a cell an event belongs to. Each `(cell, unit)`
/// pair becomes one track in the exported Chrome trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Unit {
    /// The cell CPU: computation, RTS work, library overhead, idle waits.
    Cpu,
    /// The MSC+ send DMA engine.
    SendDma,
    /// The MSC+ receive DMA engine.
    RecvDma,
    /// The MSC+ command queues (enqueue/dequeue/spill instants).
    Queue,
    /// The T-net interface (injections, hops).
    Net,
}

impl Unit {
    pub const ALL: [Unit; 5] = [
        Unit::Cpu,
        Unit::SendDma,
        Unit::RecvDma,
        Unit::Queue,
        Unit::Net,
    ];

    /// Stable per-cell track index.
    pub fn index(self) -> u32 {
        match self {
            Unit::Cpu => 0,
            Unit::SendDma => 1,
            Unit::RecvDma => 2,
            Unit::Queue => 3,
            Unit::Net => 4,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Unit::Cpu => "cpu",
            Unit::SendDma => "send-dma",
            Unit::RecvDma => "recv-dma",
            Unit::Queue => "msc-queue",
            Unit::Net => "t-net",
        }
    }
}

/// Figure-8 time bucket an event is charged to (plus `Hw` for activity on
/// hardware engines that does not occupy the CPU).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Bucket {
    /// User computation.
    Exec,
    /// Run-time-system work (VPP Fortran address arithmetic etc.).
    Rts,
    /// Communication-library CPU overhead.
    Overhead,
    /// Blocked time (flags, barriers, receives, reductions).
    Idle,
    /// Hardware-engine activity off the CPU (DMA, network).
    Hw,
}

impl Bucket {
    pub const ALL: [Bucket; 5] = [
        Bucket::Exec,
        Bucket::Rts,
        Bucket::Overhead,
        Bucket::Idle,
        Bucket::Hw,
    ];

    /// Stable index (the binary trace codec packs it into a flags byte).
    pub fn index(self) -> u32 {
        match self {
            Bucket::Exec => 0,
            Bucket::Rts => 1,
            Bucket::Overhead => 2,
            Bucket::Idle => 3,
            Bucket::Hw => 4,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Bucket::Exec => "exec",
            Bucket::Rts => "rts",
            Bucket::Overhead => "overhead",
            Bucket::Idle => "idle",
            Bucket::Hw => "hw",
        }
    }

    /// Reserved `chrome://tracing` color name giving the Figure-8 palette:
    /// running green for exec, light green for RTS, orange for overhead,
    /// grey for idle.
    pub fn chrome_color(self) -> &'static str {
        match self {
            Bucket::Exec => "thread_state_running",
            Bucket::Rts => "thread_state_runnable",
            Bucket::Overhead => "thread_state_iowait",
            Bucket::Idle => "thread_state_sleeping",
            Bucket::Hw => "rail_animation",
        }
    }
}

/// One sim-time-stamped structured event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TimelineEvent {
    /// The cell the event belongs to.
    pub cell: u32,
    /// The hardware unit within the cell.
    pub unit: Unit,
    /// Event name (a small fixed vocabulary: `work`, `rts`, `put_issue`,
    /// `wait_flag`, `barrier`, `send_dma`, `recv_dma`, `enqueue`,
    /// `queue_spill`, `tnet_msg`, `hop`, …).
    pub name: &'static str,
    /// Start time.
    pub start: SimTime,
    /// Duration; `None` marks an instant event.
    pub dur: Option<SimTime>,
    /// Figure-8 bucket (drives trace coloring).
    pub bucket: Bucket,
    /// Free payload: bytes moved, flag value reached, queue depth, hop
    /// number — whatever quantifies the event.
    pub arg: u64,
    /// Causality id: all events belonging to one logical transfer chain
    /// (a PUT's issue→enqueue→DMA→injection→delivery→flag update, a GET's
    /// request and reply legs, …) share one nonzero `tid`. On an
    /// [`Bucket::Idle`] span a nonzero `tid` instead names the transfer
    /// whose completion *released* the wait — the dependency edge the
    /// critical-path walk follows. `0` means "no chain affiliation".
    pub tid: u64,
}

impl TimelineEvent {
    /// End time (= start for instants).
    pub fn end(&self) -> SimTime {
        self.start + self.dur.unwrap_or(SimTime::ZERO)
    }
}

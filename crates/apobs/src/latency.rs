//! Per-transfer latency attribution: the Figure-6 decomposition.
//!
//! The paper argues from *where a PUT's latency goes*: CPU issue, command
//! queue, DMA, network, delivery, flag update (Figure 6). [`XferLat`] is
//! one transfer's end-to-end latency cut into those contiguous segments;
//! [`SegmentHists`] aggregates many transfers into one [`Hist`] per
//! segment so a run report can answer "what is p99 queue wait?" directly.
//!
//! Segments are defined to be contiguous and exhaustive: for a finished
//! transfer, `issue + queue + dma + net + delivery + flag` equals
//! `end - start` exactly (checked by [`XferLat::total`]'s callers in
//! tests), so the decomposition never invents or loses time.

use crate::hist::Hist;
use aputil::{Json, SimTime};

/// What kind of transfer a latency record describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum XferKind {
    /// One-sided PUT: data travels issuer → destination.
    Put,
    /// One-sided GET: request leg plus owner's reply leg, one record.
    Get,
    /// Anything else carrying a chain id (ring SEND, remote store, …);
    /// tagged for the critical path but not aggregated into PUT/GET hists.
    Other,
}

/// One transfer's end-to-end latency, decomposed into the Figure-6
/// segments. All segment fields are durations; `start`/`end` are absolute
/// sim times. For GETs the segments accumulate across both legs (request
/// and reply), still summing to `end - start` plus any owner-side overlap
/// absorbed into `queue`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct XferLat {
    pub kind: XferKind,
    /// Payload bytes moved (0 for a pure-flag PUT or a GET request leg).
    pub bytes: u64,
    /// When the issuing CPU started the operation.
    pub start: SimTime,
    /// When the data (or reply) finished landing at its destination.
    pub end: SimTime,
    /// CPU time spent issuing the descriptor (library overhead; for GETs
    /// also the owner's reply-issue cost under software handling).
    pub issue: SimTime,
    /// Time the command sat in an MSC+ TX queue (including any DRAM
    /// spill/refill service) before a DMA engine picked it up.
    pub queue: SimTime,
    /// Send-DMA occupancy: gathering the payload out of memory.
    pub dma: SimTime,
    /// T-net time: injection, per-hop latency, serialization, contention.
    pub net: SimTime,
    /// Destination-side delivery: receive-DMA (or software interrupt
    /// handler) scattering the payload into memory.
    pub delivery: SimTime,
    /// Flag fetch-and-increment after delivery. The MSC+ performs it as
    /// part of delivery, so this is 0 under both current timing models;
    /// kept so models that charge it separately have a slot.
    pub flag: SimTime,
}

impl XferLat {
    /// A fresh record: all segments zero, `end` not yet known.
    pub fn new(kind: XferKind, bytes: u64, start: SimTime) -> Self {
        XferLat {
            kind,
            bytes,
            start,
            end: start,
            issue: SimTime::ZERO,
            queue: SimTime::ZERO,
            dma: SimTime::ZERO,
            net: SimTime::ZERO,
            delivery: SimTime::ZERO,
            flag: SimTime::ZERO,
        }
    }

    /// End-to-end latency (`end - start`).
    pub fn total(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }

    /// Sum of the six segments — equals [`XferLat::total`] for transfers
    /// whose segments were recorded contiguously.
    pub fn segment_sum(&self) -> SimTime {
        self.issue + self.queue + self.dma + self.net + self.delivery + self.flag
    }
}

/// Per-segment latency histograms over many transfers, plus the
/// end-to-end total. Nanosecond samples throughout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentHists {
    pub issue: Hist,
    pub queue: Hist,
    pub dma: Hist,
    pub net: Hist,
    pub delivery: Hist,
    pub flag: Hist,
    pub total: Hist,
}

impl SegmentHists {
    pub fn new() -> Self {
        SegmentHists::default()
    }

    /// Number of transfers recorded.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// Adds one finished transfer.
    pub fn record(&mut self, x: &XferLat) {
        self.issue.record(x.issue.as_nanos());
        self.queue.record(x.queue.as_nanos());
        self.dma.record(x.dma.as_nanos());
        self.net.record(x.net.as_nanos());
        self.delivery.record(x.delivery.as_nanos());
        self.flag.record(x.flag.as_nanos());
        self.total.record(x.total().as_nanos());
    }

    /// Folds another block of segment histograms into this one.
    pub fn merge(&mut self, other: &SegmentHists) {
        self.issue.merge(&other.issue);
        self.queue.merge(&other.queue);
        self.dma.merge(&other.dma);
        self.net.merge(&other.net);
        self.delivery.merge(&other.delivery);
        self.flag.merge(&other.flag);
        self.total.merge(&other.total);
    }

    /// The seven `(name, histogram)` pairs in Figure-6 order, `total`
    /// last.
    pub fn segments(&self) -> [(&'static str, &Hist); 7] {
        [
            ("issue", &self.issue),
            ("queue", &self.queue),
            ("dma", &self.dma),
            ("net", &self.net),
            ("delivery", &self.delivery),
            ("flag", &self.flag),
            ("total", &self.total),
        ]
    }

    /// JSON form: per-segment summary stats with p50/p90/p99 (no bucket
    /// arrays — the summary is what reports consume).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.segments()
                .into_iter()
                .map(|(name, h)| {
                    (
                        name.to_string(),
                        Json::obj([
                            ("count", Json::from(h.count())),
                            ("mean_ns", Json::from(h.mean())),
                            ("min_ns", Json::from(h.min())),
                            ("max_ns", Json::from(h.max())),
                            ("p50_ns", Json::from(h.p(0.5))),
                            ("p90_ns", Json::from(h.p(0.9))),
                            ("p99_ns", Json::from(h.p(0.99))),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// Multi-line human rendering: one row per segment with mean share of
    /// the end-to-end total — the Figure-6 stacked bar in text.
    pub fn render(&self) -> String {
        if self.count() == 0 {
            return "no transfers".to_string();
        }
        let total_mean = self.total.mean().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        for (name, h) in self.segments() {
            let share = if name == "total" {
                100.0
            } else {
                100.0 * h.mean() / total_mean
            };
            out.push_str(&format!(
                "{name:>8}: mean {:>10.0} ns  p50 {:>10.0}  p99 {:>10.0}  ({share:5.1}%)\n",
                h.mean(),
                h.p(0.5),
                h.p(0.99),
            ));
        }
        out.pop();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XferLat {
        let mut x = XferLat::new(XferKind::Put, 1024, SimTime::from_nanos(100));
        x.issue = SimTime::from_nanos(1000);
        x.queue = SimTime::from_nanos(50);
        x.dma = SimTime::from_nanos(12_788);
        x.net = SimTime::from_nanos(480);
        x.delivery = SimTime::from_nanos(12_788);
        x.end = x.start + x.segment_sum();
        x
    }

    #[test]
    fn segments_sum_to_total() {
        let x = sample();
        assert_eq!(x.segment_sum(), x.total());
    }

    #[test]
    fn record_feeds_every_segment() {
        let mut h = SegmentHists::new();
        h.record(&sample());
        h.record(&sample());
        assert_eq!(h.count(), 2);
        assert_eq!(h.queue.max(), 50);
        assert_eq!(h.flag.max(), 0);
        assert_eq!(h.total.max(), sample().total().as_nanos());
    }

    #[test]
    fn merge_matches_recording_both() {
        let mut a = SegmentHists::new();
        a.record(&sample());
        let mut b = SegmentHists::new();
        b.record(&sample());
        let mut all = SegmentHists::new();
        all.record(&sample());
        all.record(&sample());
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn json_carries_quantiles() {
        let mut h = SegmentHists::new();
        h.record(&sample());
        let j = h.to_json();
        let q = j.get("queue").unwrap();
        assert_eq!(q.get("p99_ns").and_then(|v| v.as_f64()), Some(50.0));
        assert!(j.get("total").is_some());
        assert!(h.render().contains("queue"));
    }
}

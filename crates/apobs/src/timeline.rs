//! A named, ordered collection of timeline events from one source
//! (the emulator, or one MLSim model).

use crate::event::TimelineEvent;

/// All events one source emitted during a run, in emission order until
/// [`Timeline::sort`] is called.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Source label, e.g. `"emulator"`, `"mlsim/ap1000+"`. Becomes the
    /// process name in the Chrome trace.
    pub source: String,
    pub events: Vec<TimelineEvent>,
}

impl Timeline {
    pub fn new(source: impl Into<String>) -> Self {
        Timeline {
            source: source.into(),
            events: Vec::new(),
        }
    }

    pub fn from_events(source: impl Into<String>, events: Vec<TimelineEvent>) -> Self {
        Timeline {
            source: source.into(),
            events,
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends events from another buffer.
    pub fn extend(&mut self, events: Vec<TimelineEvent>) {
        self.events.extend(events);
    }

    /// Stable sort by `(cell, unit, start)` so every track's timestamps
    /// are monotonic.
    pub fn sort(&mut self) {
        self.events
            .sort_by_key(|e| (e.cell, e.unit, e.start, e.end()));
    }

    /// Events of one `(cell, unit)` track, in stored order.
    pub fn track(&self, cell: u32, unit: crate::event::Unit) -> Vec<&TimelineEvent> {
        self.events
            .iter()
            .filter(|e| e.cell == cell && e.unit == unit)
            .collect()
    }
}

//! # apobs — observability for the AP1000+ reproduction
//!
//! The instrumentation substrate the rest of the workspace reports
//! through: a zero-overhead-when-disabled event [`Recorder`] producing
//! sim-time [`TimelineEvent`]s, dependency-free log2-bucket histograms
//! ([`Hist`]), the unified [`Counters`] block surfaced on run reports, and
//! a Chrome-trace-event exporter ([`chrome_trace`]) whose output opens
//! directly in Perfetto.
//!
//! The same event vocabulary is emitted by the `apcore` emulator kernel,
//! the `apmsc`/`apnet` hardware models, and `mlsim` replay, so emulator
//! and model timelines are directly comparable side by side.
//!
//! # Examples
//!
//! ```
//! use apobs::{Bucket, Recorder, Timeline, Unit, chrome_trace};
//! use aputil::SimTime;
//!
//! let mut rec = Recorder::enabled();
//! rec.span(0, Unit::Cpu, "work", SimTime::ZERO, SimTime::from_nanos(500), Bucket::Exec, 25);
//! rec.instant(0, Unit::Queue, "enqueue", SimTime::from_nanos(500), Bucket::Hw, 1);
//! let timeline = Timeline::from_events("emulator", rec.take_events());
//! let doc = chrome_trace(&[&timeline]);
//! assert!(doc.to_string().contains("traceEvents"));
//! ```

pub mod chrome;
pub mod counters;
pub mod critpath;
pub mod event;
pub mod hist;
pub mod latency;
pub mod recorder;
pub mod timeline;

pub use chrome::{chrome_trace, stream_chrome_trace, write_chrome_trace, write_chrome_trace_with};
pub use counters::{CacheCounters, Counters};
pub use critpath::{critical_path, CritPath, CritStep, GatingOp};
pub use event::{Bucket, TimelineEvent, Unit};
pub use hist::Hist;
pub use latency::{SegmentHists, XferKind, XferLat};
pub use recorder::{EventSink, Recorder, SharedSink};
pub use timeline::Timeline;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Histogram invariant: every sample lands in the bucket whose
        /// range contains it, and count/sum/min/max agree with the samples.
        #[test]
        fn hist_matches_reference(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Hist::new();
            for &s in &samples {
                h.record(s);
            }
            prop_assert_eq!(h.count(), samples.len() as u64);
            prop_assert_eq!(h.sum(), samples.iter().map(|&s| s as u128).sum::<u128>());
            prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
            prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
            let total: u64 = (0..64).map(|i| h.bucket_count(i)).sum();
            prop_assert_eq!(total, samples.len() as u64);
        }

        /// Merging two independently-recorded histograms is exactly
        /// equivalent to recording the concatenated sample stream into
        /// one histogram — the property the parallel sweep driver's
        /// counter aggregation rests on.
        #[test]
        fn hist_merge_equals_concatenated_recording(
            xs in proptest::collection::vec(any::<u64>(), 0..120),
            ys in proptest::collection::vec(any::<u64>(), 0..120),
        ) {
            let mut a = Hist::new();
            for &v in &xs {
                a.record(v);
            }
            let mut b = Hist::new();
            for &v in &ys {
                b.record(v);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            let mut concat = Hist::new();
            for &v in xs.iter().chain(ys.iter()) {
                concat.record(v);
            }
            prop_assert_eq!(&merged, &concat);
            // Percentile queries agree too (same underlying state).
            for q in [0.0, 0.5, 0.99, 1.0] {
                prop_assert_eq!(merged.p(q), concat.p(q));
            }
        }

        /// The Chrome exporter always yields parseable JSON with monotonic
        /// per-track timestamps, for arbitrary event soups.
        #[test]
        fn chrome_export_always_parses(
            evs in proptest::collection::vec(
                (0u32..4, 0usize..5, 0u64..100_000, 0u64..5_000, any::<bool>()),
                0..50,
            )
        ) {
            let mut t = Timeline::new("fuzz");
            for (cell, unit, start, dur, instant) in evs {
                t.events.push(TimelineEvent {
                    cell,
                    unit: Unit::ALL[unit],
                    name: "e",
                    start: aputil::SimTime::from_nanos(start),
                    dur: if instant { None } else { Some(aputil::SimTime::from_nanos(dur)) },
                    bucket: Bucket::Hw,
                    arg: 0,
                    tid: 0,
                });
            }
            let doc = chrome_trace(&[&t]);
            let parsed = aputil::Json::parse(&doc.to_string()).unwrap();
            let events = parsed.get("traceEvents").and_then(aputil::Json::as_arr).unwrap();
            let mut last: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
            for e in events {
                if e.get("ph").and_then(aputil::Json::as_str) == Some("M") {
                    continue;
                }
                let tid = e.get("tid").and_then(aputil::Json::as_u64).unwrap();
                let ts = e.get("ts").and_then(aputil::Json::as_f64).unwrap();
                let prev = last.insert(tid, ts).unwrap_or(f64::MIN);
                prop_assert!(ts >= prev, "tid {} regressed {} -> {}", tid, prev, ts);
            }
        }

        /// Critical-path invariants over arbitrary event soups: the path
        /// is a valid chain (disjoint, chronologically ordered steps) and
        /// the attribution is exact — step durations plus unattributed
        /// time equal the run total, i.e. percentages sum to 100.
        #[test]
        fn critical_path_is_a_valid_exact_chain(
            evs in proptest::collection::vec(
                (0u32..4, 0usize..5, 0u64..100_000, 0u64..5_000, 0u64..4, 0usize..5),
                1..60,
            )
        ) {
            let mut t = Timeline::new("fuzz");
            for (cell, unit, start, dur, tid, kind) in evs {
                let bucket = [Bucket::Exec, Bucket::Rts, Bucket::Overhead, Bucket::Idle, Bucket::Hw][kind];
                t.events.push(TimelineEvent {
                    cell,
                    unit: Unit::ALL[unit],
                    name: "e",
                    start: aputil::SimTime::from_nanos(start),
                    dur: if kind == 4 && dur % 3 == 0 { None } else { Some(aputil::SimTime::from_nanos(dur)) },
                    bucket,
                    arg: 0,
                    tid,
                });
            }
            let p = critical_path(&t);
            let total = t.events.iter().map(TimelineEvent::end).max().unwrap();
            prop_assert_eq!(p.total, total);
            for w in p.steps.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "steps overlap: {:?} then {:?}", w[0], w[1]);
            }
            prop_assert_eq!(p.attributed() + p.unattributed, p.total);
        }

        /// For a fully serialized trace (one cell, one unit, back-to-back
        /// spans) the critical path is the whole trace: its length equals
        /// the total run time with nothing unattributed.
        #[test]
        fn critical_path_of_serialized_trace_is_total(
            durs in proptest::collection::vec(1u64..2_000, 1..40)
        ) {
            let mut t = Timeline::new("serial");
            let mut at = 0u64;
            for d in durs {
                t.events.push(TimelineEvent {
                    cell: 0,
                    unit: Unit::Cpu,
                    name: "work",
                    start: aputil::SimTime::from_nanos(at),
                    dur: Some(aputil::SimTime::from_nanos(d)),
                    bucket: Bucket::Exec,
                    arg: 0,
                    tid: 0,
                });
                at += d;
            }
            let p = critical_path(&t);
            prop_assert_eq!(p.total, aputil::SimTime::from_nanos(at));
            prop_assert_eq!(p.attributed(), p.total);
            prop_assert_eq!(p.unattributed, aputil::SimTime::ZERO);
        }
    }
}

//! Dependency-free log2-bucket histograms.
//!
//! A [`Hist`] counts `u64` samples into 64 power-of-two buckets: bucket 0
//! holds the value 0, bucket `k ≥ 1` holds values in `[2^(k-1), 2^k)`. It
//! is a few words of state and a handful of integer operations per sample,
//! cheap enough to leave permanently enabled like the other hardware
//! counters.
//!
//! # Examples
//!
//! ```
//! use apobs::Hist;
//!
//! let mut h = Hist::new();
//! for v in [0, 1, 3, 4, 4, 1000] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 6);
//! assert_eq!(h.max(), 1000);
//! assert_eq!(h.bucket_count(0), 1); // the zero sample
//! assert_eq!(h.bucket_count(2), 1); // 2..4 holds the 3
//! assert_eq!(h.bucket_count(3), 2); // 4..8 holds both 4s
//! ```

use aputil::Json;

/// A log2-bucket histogram over `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Hist {
    counts: [u64; 64],
    n: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl Hist {
    pub const fn new() -> Self {
        Hist {
            counts: [0; 64],
            n: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
        .min(63)
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Upper bound (exclusive) of bucket `i`; `u64::MAX` for the last.
    pub fn bucket_hi(i: usize) -> u64 {
        match i {
            0 => 1,
            63 => u64::MAX,
            _ => 1u64 << i,
        }
    }

    /// Adds one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.n += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// `(lo, hi_exclusive, count)` for each non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), Self::bucket_hi(i), c))
            .collect()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.n += other.n;
        self.sum += other.sum;
        if other.n > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// An approximate quantile (`q` in `[0, 1]`) from the bucket counts:
    /// returns the lower bound of the bucket containing the q-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let rank = ((self.n as f64 * q).ceil() as u64).clamp(1, self.n);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_lo(i);
            }
        }
        self.max
    }

    /// An interpolated quantile (`q` in `[0, 1]`): finds the bucket
    /// containing the q-th sample like [`Hist::quantile`], then places the
    /// sample linearly inside the bucket's `[lo, hi)` range by its rank
    /// among the bucket's occupants. The result is clamped to the observed
    /// `[min, max]`, so `p(0.0) == min` and `p(1.0) == max` exactly.
    pub fn p(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.n as f64 * q).ceil() as u64).clamp(1, self.n);
        if rank == 1 {
            return self.min() as f64;
        }
        if rank == self.n {
            return self.max as f64;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = Self::bucket_lo(i) as f64;
                // Cap the open bucket 63 at the observed max instead of
                // u64::MAX so interpolation stays meaningful.
                let hi = if i == 63 {
                    self.max as f64
                } else {
                    Self::bucket_hi(i) as f64
                };
                // Rank position within this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                let v = lo + frac * (hi - lo);
                return v.clamp(self.min() as f64, self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Compact single-line rendering: `n=… mean=… max=…` plus an ASCII
    /// sparkline over the non-empty bucket range.
    pub fn render(&self) -> String {
        if self.n == 0 {
            return "n=0".to_string();
        }
        let first = self.counts.iter().position(|&c| c > 0).unwrap_or(0);
        let last = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let peak = *self.counts.iter().max().unwrap_or(&1);
        const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let spark: String = (first..=last)
            .map(|i| {
                let c = self.counts[i];
                if c == 0 {
                    ' '
                } else {
                    RAMP[((c as u128 * 7).div_ceil(peak as u128)) as usize % 8]
                }
            })
            .collect();
        format!(
            "n={} mean={:.0} max={} [2^{}..2^{}] {}",
            self.n,
            self.mean(),
            self.max,
            first.saturating_sub(1),
            last,
            spark
        )
    }

    /// JSON form: summary stats plus the non-empty buckets.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.n)),
            ("sum", Json::from(self.sum.min(u64::MAX as u128) as u64)),
            ("min", Json::from(self.min())),
            ("max", Json::from(self.max())),
            ("mean", Json::from(self.mean())),
            ("p50", Json::from(self.p(0.5))),
            ("p90", Json::from(self.p(0.9))),
            ("p99", Json::from(self.p(0.99))),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, hi, c)| {
                            Json::obj([
                                ("lo", Json::from(lo)),
                                ("hi", Json::from(hi)),
                                ("count", Json::from(c)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl core::fmt::Debug for Hist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Hist {{ {} }}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = Hist::bucket_of(v);
            assert!(Hist::bucket_lo(i) <= v, "v={v} bucket {i}");
            if i < 63 {
                assert!(v < Hist::bucket_hi(i), "v={v} bucket {i}");
            }
        }
    }

    #[test]
    fn merge_equals_recording_both() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut all = Hist::new();
        for v in [5u64, 100, 0, 77] {
            a.record(v);
            all.record(v);
        }
        for v in [9999u64, 3] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantile_brackets_samples() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        let med = h.quantile(0.5);
        assert!((256..=512).contains(&med), "median bucket lo {med}");
        assert!(h.quantile(1.0) >= 512);
    }

    #[test]
    fn p_interpolates_within_buckets() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.p(0.0), 1.0);
        assert_eq!(h.p(1.0), 1000.0);
        // Rank 500 lands in the [256, 512) bucket near its top.
        let p50 = h.p(0.5);
        assert!((450.0..=512.0).contains(&p50), "p50 {p50}");
        let p90 = h.p(0.9);
        assert!((512.0..=1000.0).contains(&p90), "p90 {p90}");
        // Quantiles are monotone in q.
        assert!(h.p(0.5) <= h.p(0.9) && h.p(0.9) <= h.p(0.99));
    }

    #[test]
    fn p_on_degenerate_hists() {
        let h = Hist::new();
        assert_eq!(h.p(0.5), 0.0);
        let mut one = Hist::new();
        one.record(42);
        assert_eq!(one.p(0.0), 42.0);
        assert_eq!(one.p(0.5), 42.0);
        assert_eq!(one.p(1.0), 42.0);
    }

    #[test]
    fn json_has_summary_fields() {
        let mut h = Hist::new();
        h.record(64);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(j.get("max").and_then(|v| v.as_u64()), Some(64));
    }

    #[test]
    fn empty_hist_percentiles_are_all_zero() {
        let h = Hist::new();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "quantile({q}) on empty");
            assert_eq!(h.p(q), 0.0, "p({q}) on empty");
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.render(), "n=0");
    }

    #[test]
    fn single_sample_percentiles_return_the_sample() {
        for v in [0u64, 1, 7, 1 << 20, u64::MAX] {
            let mut h = Hist::new();
            h.record(v);
            for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
                assert_eq!(h.p(q), v as f64, "p({q}) of single sample {v}");
            }
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
        }
    }

    #[test]
    fn saturating_bucket_percentiles_stay_within_observed_range() {
        // Values in the open top bucket 63 ([2^62, u64::MAX]): the
        // interpolation must cap at the observed max, never at u64::MAX.
        let mut h = Hist::new();
        let lo = 1u64 << 62;
        for v in [lo, lo + 10, u64::MAX - 1, u64::MAX] {
            h.record(v);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let p = h.p(q);
            assert!(
                (lo as f64..=u64::MAX as f64).contains(&p),
                "p({q}) = {p} escaped the observed range"
            );
        }
        assert_eq!(h.p(1.0), u64::MAX as f64);
        // A hist saturated into one bucket: every percentile in-bucket.
        let mut one_bucket = Hist::new();
        for _ in 0..1000 {
            one_bucket.record(300);
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(one_bucket.p(q), 300.0);
        }
    }
}

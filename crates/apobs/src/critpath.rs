//! Critical-path extraction from a recorded timeline.
//!
//! The timeline is an interval DAG: events on one `(cell, unit)` track are
//! serialized, events sharing a nonzero `tid` form a transfer chain
//! (issue → enqueue → DMA → injection → delivery → flag update), an
//! [`Bucket::Idle`] span tagged with a `tid` was *released* by that
//! chain's completion, and untagged idle spans with a common name and end
//! time are one collective (barrier epoch, broadcast) released by its
//! latest arriver. [`critical_path`] walks that DAG backwards from the
//! last event of the run, always following the dependency that gated
//! progress, and returns the chain of events whose durations bound the
//! run's total time.
//!
//! The accounting is exact by construction: the returned steps are
//! disjoint, chronologically ordered intervals, and
//! `Σ step durations + unattributed == total`, where `unattributed` is
//! time the walk could not explain (gaps between an event and its gating
//! predecessor, plus anything before the first event on the path).

use crate::event::{Bucket, TimelineEvent, Unit};
use crate::timeline::Timeline;
use aputil::{Json, SimTime};
use std::collections::{HashMap, HashSet};

/// One event on the critical path (an [`Bucket::Idle`] wait is replaced by
/// the chain event that released it, so steps are the *causes* of elapsed
/// time, not the symptoms).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CritStep {
    pub cell: u32,
    pub unit: Unit,
    pub name: &'static str,
    pub bucket: Bucket,
    /// Transfer chain the step belongs to (0 = none).
    pub tid: u64,
    pub start: SimTime,
    pub end: SimTime,
}

impl CritStep {
    /// Time this step contributes to the path (0 for instants).
    pub fn contrib(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// An aggregated gating operation: all critical-path steps sharing one
/// `(name, unit)`, ranked by total contributed time.
#[derive(Clone, Debug)]
pub struct GatingOp {
    pub name: &'static str,
    pub unit: Unit,
    /// How many path steps this operation accounts for.
    pub count: usize,
    /// Total time contributed to the path.
    pub total: SimTime,
    /// Fraction of the run total, in percent.
    pub share_pct: f64,
    /// Index (into [`CritPath::steps`]) of this op's longest instance,
    /// so callers can show the chain around it.
    pub longest_step: usize,
}

/// The extracted critical path and its attribution.
#[derive(Clone, Debug, Default)]
pub struct CritPath {
    /// End time of the last event in the timeline — the run's makespan as
    /// seen by the recorder.
    pub total: SimTime,
    /// The path, in chronological order. Steps are disjoint intervals.
    pub steps: Vec<CritStep>,
    /// Time on the path the walk could not attribute to any event.
    pub unattributed: SimTime,
}

impl CritPath {
    /// Total time attributed to steps (`total - unattributed`).
    pub fn attributed(&self) -> SimTime {
        self.steps
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc + s.contrib())
    }

    /// Path time per Figure-8 bucket, in [`Bucket`] declaration order.
    pub fn by_bucket(&self) -> Vec<(Bucket, SimTime)> {
        let order = [
            Bucket::Exec,
            Bucket::Rts,
            Bucket::Overhead,
            Bucket::Idle,
            Bucket::Hw,
        ];
        let mut acc: HashMap<Bucket, SimTime> = HashMap::new();
        for s in &self.steps {
            *acc.entry(s.bucket).or_insert(SimTime::ZERO) += s.contrib();
        }
        order
            .into_iter()
            .map(|b| (b, acc.get(&b).copied().unwrap_or(SimTime::ZERO)))
            .collect()
    }

    /// Path time per hardware unit, in [`Unit::ALL`] order.
    pub fn by_unit(&self) -> Vec<(Unit, SimTime)> {
        let mut acc: HashMap<Unit, SimTime> = HashMap::new();
        for s in &self.steps {
            *acc.entry(s.unit).or_insert(SimTime::ZERO) += s.contrib();
        }
        Unit::ALL
            .into_iter()
            .map(|u| (u, acc.get(&u).copied().unwrap_or(SimTime::ZERO)))
            .collect()
    }

    /// Path time per cell, descending by time.
    pub fn by_cell(&self) -> Vec<(u32, SimTime)> {
        let mut acc: HashMap<u32, SimTime> = HashMap::new();
        for s in &self.steps {
            *acc.entry(s.cell).or_insert(SimTime::ZERO) += s.contrib();
        }
        let mut v: Vec<(u32, SimTime)> = acc.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The top-`k` gating operations by contributed time.
    pub fn top_ops(&self, k: usize) -> Vec<GatingOp> {
        let mut acc: HashMap<(&'static str, Unit), GatingOp> = HashMap::new();
        for (i, s) in self.steps.iter().enumerate() {
            let op = acc.entry((s.name, s.unit)).or_insert(GatingOp {
                name: s.name,
                unit: s.unit,
                count: 0,
                total: SimTime::ZERO,
                share_pct: 0.0,
                longest_step: i,
            });
            op.count += 1;
            op.total += s.contrib();
            if s.contrib() > self.steps[op.longest_step].contrib() {
                op.longest_step = i;
            }
        }
        let mut v: Vec<GatingOp> = acc.into_values().collect();
        let total_ns = self.total.as_nanos().max(1) as f64;
        for op in &mut v {
            op.share_pct = 100.0 * op.total.as_nanos() as f64 / total_ns;
        }
        v.sort_by(|a, b| b.total.cmp(&a.total).then(a.name.cmp(b.name)));
        v.truncate(k);
        v
    }

    /// The chain of steps around step `i`: up to `radius` steps either
    /// side, chronological. Used to show *why* a gating op sat where it
    /// did.
    pub fn chain_around(&self, i: usize, radius: usize) -> &[CritStep] {
        if self.steps.is_empty() {
            return &[];
        }
        let lo = i.saturating_sub(radius);
        let hi = (i + radius + 1).min(self.steps.len());
        &self.steps[lo..hi]
    }

    /// JSON summary (top ops, attribution; not the full step list).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("total_ns", Json::from(self.total.as_nanos())),
            ("attributed_ns", Json::from(self.attributed().as_nanos())),
            ("unattributed_ns", Json::from(self.unattributed.as_nanos())),
            ("steps", Json::from(self.steps.len() as u64)),
            (
                "by_bucket_ns",
                Json::Obj(
                    self.by_bucket()
                        .into_iter()
                        .map(|(b, t)| (b.label().to_string(), Json::from(t.as_nanos())))
                        .collect(),
                ),
            ),
            (
                "by_unit_ns",
                Json::Obj(
                    self.by_unit()
                        .into_iter()
                        .map(|(u, t)| (u.label().to_string(), Json::from(t.as_nanos())))
                        .collect(),
                ),
            ),
            (
                "by_cell_ns",
                Json::Arr(
                    self.by_cell()
                        .into_iter()
                        .map(|(c, t)| {
                            Json::obj([
                                ("cell", Json::from(c as u64)),
                                ("ns", Json::from(t.as_nanos())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "top_ops",
                Json::Arr(
                    self.top_ops(10)
                        .into_iter()
                        .map(|op| {
                            Json::obj([
                                ("name", Json::from(op.name)),
                                ("unit", Json::from(op.unit.label())),
                                ("count", Json::from(op.count as u64)),
                                ("ns", Json::from(op.total.as_nanos())),
                                ("share_pct", Json::from(op.share_pct)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Multi-line human rendering: attribution summary plus the top-`k`
    /// gating ops, each with the chain around its longest instance.
    pub fn render(&self, k: usize) -> String {
        let mut out = format!(
            "critical path: total {}  attributed {}  unattributed {}  ({} steps)\n",
            self.total,
            self.attributed(),
            self.unattributed,
            self.steps.len()
        );
        let total_ns = self.total.as_nanos().max(1) as f64;
        out.push_str("  by bucket: ");
        for (b, t) in self.by_bucket() {
            if t > SimTime::ZERO {
                out.push_str(&format!(
                    "{} {:.1}%  ",
                    b.label(),
                    100.0 * t.as_nanos() as f64 / total_ns
                ));
            }
        }
        out.push_str("\n  by unit  : ");
        for (u, t) in self.by_unit() {
            if t > SimTime::ZERO {
                out.push_str(&format!(
                    "{} {:.1}%  ",
                    u.label(),
                    100.0 * t.as_nanos() as f64 / total_ns
                ));
            }
        }
        out.push('\n');
        for op in self.top_ops(k) {
            out.push_str(&format!(
                "  {:<12} on {:<8} ×{:<5} {:>12}  {:5.1}%\n",
                op.name,
                op.unit.label(),
                op.count,
                op.total.to_string(),
                op.share_pct
            ));
            let window = self.chain_around(op.longest_step, 2);
            let chain: Vec<String> = window
                .iter()
                .map(|s| format!("{}@c{}[{}..{}]", s.name, s.cell, s.start, s.end))
                .collect();
            out.push_str(&format!("      chain: {}\n", chain.join(" -> ")));
        }
        out.pop();
        out
    }
}

/// Extracts the critical path of a timeline. See the module docs for the
/// dependency model. The timeline does not need to be pre-sorted.
pub fn critical_path(t: &Timeline) -> CritPath {
    let evs: &[TimelineEvent] = &t.events;
    if evs.is_empty() {
        return CritPath::default();
    }

    // Index: per-(cell,unit) track, sorted by (end, start, idx).
    let mut tracks: HashMap<(u32, Unit), Vec<usize>> = HashMap::new();
    // Index: per-tid chain of non-idle events, sorted by (end, start, idx).
    let mut chains: HashMap<u64, Vec<usize>> = HashMap::new();
    // Index: collective groups — untagged idle spans by (name, end).
    let mut collectives: HashMap<(&'static str, u64), Vec<usize>> = HashMap::new();
    for (i, e) in evs.iter().enumerate() {
        tracks.entry((e.cell, e.unit)).or_default().push(i);
        if e.bucket == Bucket::Idle {
            if e.tid == 0 && e.dur.is_some() {
                collectives
                    .entry((e.name, e.end().as_nanos()))
                    .or_default()
                    .push(i);
            }
        } else if e.tid != 0 {
            chains.entry(e.tid).or_default().push(i);
        }
    }
    for v in tracks.values_mut() {
        v.sort_by_key(|&i| (evs[i].end(), evs[i].start, i));
    }
    for v in chains.values_mut() {
        v.sort_by_key(|&i| (evs[i].end(), evs[i].start, i));
    }

    // Total order on events: by (end, start, record index). Predecessor
    // edges must strictly descend in this order so that same-timestamp
    // instants (an enqueue/dequeue pair, say) orient by record order
    // instead of forming a two-cycle.
    let key = |i: usize| (evs[i].end(), evs[i].start, i);

    // Latest gating event of `list` ending at or before `limit` and
    // strictly below `below` in the total order (`None` = no bound).
    let last_before = |list: &[usize], limit: SimTime, below: Option<usize>| -> Option<usize> {
        let cut = list.partition_point(|&i| evs[i].end() <= limit);
        list[..cut]
            .iter()
            .rev()
            .copied()
            .find(|&i| below.is_none_or(|b| key(i) < key(b)))
    };

    // Replace a wait with its cause: an idle span tagged with a tid jumps
    // to the last chain event that had completed by the wait's end; an
    // untagged idle span in a collective group jumps to the group's
    // latest-starting member (the arriver that released everyone).
    let resolve = |i: usize| -> usize {
        let e = &evs[i];
        if e.bucket != Bucket::Idle {
            return i;
        }
        if e.tid != 0 {
            if let Some(chain) = chains.get(&e.tid) {
                if let Some(j) = last_before(chain, e.end(), None) {
                    return j;
                }
            }
            return i;
        }
        if e.dur.is_some() {
            if let Some(group) = collectives.get(&(e.name, e.end().as_nanos())) {
                if let Some(&j) = group
                    .iter()
                    .max_by_key(|&&j| (evs[j].start, evs[j].cell, j))
                {
                    return j;
                }
            }
        }
        i
    };

    // Start from the globally latest-ending event.
    let mut cur = (0..evs.len())
        .max_by_key(|&i| (evs[i].end(), evs[i].start, i))
        .expect("nonempty");
    let total = evs[cur].end();
    let mut steps: Vec<CritStep> = Vec::new();
    let mut unattributed = SimTime::ZERO;
    let mut boundary = total;
    let mut visited: HashSet<usize> = HashSet::new();

    for _ in 0..=evs.len() {
        cur = resolve(cur);
        if !visited.insert(cur) {
            // A cycle can only come from a malformed timeline; stop rather
            // than loop. The remaining time stays unattributed.
            unattributed += boundary;
            break;
        }
        let e = &evs[cur];
        unattributed += boundary.saturating_sub(e.end());
        steps.push(CritStep {
            cell: e.cell,
            unit: e.unit,
            name: e.name,
            bucket: e.bucket,
            tid: e.tid,
            start: e.start.min(boundary),
            end: e.end().min(boundary),
        });
        boundary = e.start.min(boundary);

        // Gating predecessor: the latest-finishing event, no later than
        // this one's start, on the same track or the same transfer chain.
        let mut pred: Option<usize> = None;
        let mut consider = |cand: Option<usize>| {
            if let Some(c) = cand {
                if pred.is_none_or(|p| key(p) < key(c)) {
                    pred = Some(c);
                }
            }
        };
        consider(last_before(&tracks[&(e.cell, e.unit)], e.start, Some(cur)));
        if e.tid != 0 {
            if let Some(chain) = chains.get(&e.tid) {
                consider(last_before(chain, e.start, Some(cur)));
            }
        }
        match pred {
            Some(p) => cur = p,
            None => {
                unattributed += boundary;
                break;
            }
        }
    }

    steps.reverse();
    CritPath {
        total,
        steps,
        unattributed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        cell: u32,
        unit: Unit,
        name: &'static str,
        start: u64,
        end: u64,
        bucket: Bucket,
        tid: u64,
    ) -> TimelineEvent {
        TimelineEvent {
            cell,
            unit,
            name,
            start: SimTime::from_nanos(start),
            dur: Some(SimTime::from_nanos(end - start)),
            bucket,
            arg: 0,
            tid,
        }
    }

    fn instant(
        cell: u32,
        unit: Unit,
        name: &'static str,
        at: u64,
        bucket: Bucket,
        tid: u64,
    ) -> TimelineEvent {
        TimelineEvent {
            cell,
            unit,
            name,
            start: SimTime::from_nanos(at),
            dur: None,
            bucket,
            arg: 0,
            tid,
        }
    }

    fn check_invariants(p: &CritPath) {
        for w in p.steps.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(p.attributed() + p.unattributed, p.total, "exact accounting");
    }

    #[test]
    fn empty_timeline_is_empty_path() {
        let p = critical_path(&Timeline::new("t"));
        assert_eq!(p.total, SimTime::ZERO);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn put_chain_is_followed_across_cells() {
        let mut t = Timeline::new("t");
        t.events
            .push(span(0, Unit::Cpu, "work", 0, 100, Bucket::Exec, 0));
        t.events.push(span(
            0,
            Unit::Cpu,
            "put_issue",
            100,
            1100,
            Bucket::Overhead,
            1,
        ));
        t.events
            .push(instant(0, Unit::Queue, "enqueue", 1100, Bucket::Hw, 1));
        t.events
            .push(instant(0, Unit::Queue, "dequeue", 1100, Bucket::Hw, 1));
        t.events.push(span(
            0,
            Unit::SendDma,
            "send_dma",
            1100,
            1300,
            Bucket::Hw,
            1,
        ));
        t.events
            .push(span(0, Unit::Net, "transfer", 1300, 1800, Bucket::Hw, 1));
        t.events
            .push(instant(1, Unit::Net, "deliver", 1800, Bucket::Hw, 1));
        t.events.push(span(
            1,
            Unit::RecvDma,
            "recv_dma",
            1800,
            2000,
            Bucket::Hw,
            1,
        ));
        // Cell 1 waited on the flag from t=500; released by chain 1.
        t.events
            .push(span(1, Unit::Cpu, "wait_flag", 500, 2000, Bucket::Idle, 1));
        t.events
            .push(span(1, Unit::Cpu, "work", 2000, 2500, Bucket::Exec, 0));
        // Unrelated busywork on cell 1 that must NOT be on the path.
        t.events
            .push(span(1, Unit::Cpu, "work", 0, 500, Bucket::Exec, 0));

        let p = critical_path(&t);
        check_invariants(&p);
        assert_eq!(p.total, SimTime::from_nanos(2500));
        assert_eq!(p.unattributed, SimTime::ZERO);
        // The wait itself must not appear: its cause (the chain) does.
        assert!(p.steps.iter().all(|s| s.bucket != Bucket::Idle));
        let names: Vec<&str> = p.steps.iter().map(|s| s.name).collect();
        assert!(names.contains(&"put_issue"), "{names:?}");
        assert!(names.contains(&"send_dma"), "{names:?}");
        assert!(names.contains(&"transfer"), "{names:?}");
        assert!(names.contains(&"recv_dma"), "{names:?}");
        // The issuing side's pre-put work gates the chain.
        assert_eq!(p.steps.first().unwrap().cell, 0);
        // Hw share = dma 200 + net 500 + recv 200 = 900 of 2500.
        let hw = p
            .by_bucket()
            .into_iter()
            .find(|(b, _)| *b == Bucket::Hw)
            .unwrap()
            .1;
        assert_eq!(hw, SimTime::from_nanos(900));
    }

    #[test]
    fn barrier_blames_the_last_arriver() {
        let mut t = Timeline::new("t");
        t.events
            .push(span(0, Unit::Cpu, "work", 0, 100, Bucket::Exec, 0));
        t.events
            .push(span(0, Unit::Cpu, "barrier", 100, 300, Bucket::Idle, 0));
        t.events
            .push(span(1, Unit::Cpu, "work", 0, 300, Bucket::Exec, 0));
        t.events
            .push(span(1, Unit::Cpu, "barrier", 300, 300, Bucket::Idle, 0));
        t.events
            .push(span(0, Unit::Cpu, "work", 300, 400, Bucket::Exec, 0));

        let p = critical_path(&t);
        check_invariants(&p);
        assert_eq!(p.total, SimTime::from_nanos(400));
        assert_eq!(p.unattributed, SimTime::ZERO);
        // Path: work@1 [0,300] -> barrier@1 [300,300] -> work@0 [300,400].
        // Cell 0's pre-barrier work is off-path; cell 1 gated the epoch.
        let cells: Vec<(u32, u64)> = p
            .steps
            .iter()
            .map(|s| (s.cell, s.start.as_nanos()))
            .collect();
        assert!(cells.contains(&(1, 0)), "{cells:?}");
        assert!(!cells.contains(&(0, 0)), "{cells:?}");
    }

    #[test]
    fn serialized_track_attributes_everything() {
        let mut t = Timeline::new("t");
        let mut at = 0;
        for i in 0..20u64 {
            t.events.push(span(
                0,
                Unit::Cpu,
                if i % 2 == 0 { "work" } else { "rts" },
                at,
                at + 10 + i,
                Bucket::Exec,
                0,
            ));
            at += 10 + i;
        }
        let p = critical_path(&t);
        check_invariants(&p);
        assert_eq!(p.unattributed, SimTime::ZERO);
        assert_eq!(p.attributed(), p.total);
        assert_eq!(p.steps.len(), 20);
    }

    #[test]
    fn gaps_become_unattributed() {
        let mut t = Timeline::new("t");
        t.events
            .push(span(0, Unit::Cpu, "work", 10, 20, Bucket::Exec, 0));
        t.events
            .push(span(0, Unit::Cpu, "work", 50, 100, Bucket::Exec, 0));
        let p = critical_path(&t);
        check_invariants(&p);
        assert_eq!(p.total, SimTime::from_nanos(100));
        // 30 ns gap between the spans + 10 ns before the first.
        assert_eq!(p.unattributed, SimTime::from_nanos(40));
    }

    #[test]
    fn top_ops_rank_by_time() {
        let mut t = Timeline::new("t");
        t.events
            .push(span(0, Unit::Cpu, "work", 0, 100, Bucket::Exec, 0));
        t.events
            .push(span(0, Unit::Cpu, "rts", 100, 110, Bucket::Rts, 0));
        t.events
            .push(span(0, Unit::Cpu, "work", 110, 400, Bucket::Exec, 0));
        let p = critical_path(&t);
        let ops = p.top_ops(5);
        assert_eq!(ops[0].name, "work");
        assert_eq!(ops[0].count, 2);
        assert_eq!(ops[0].total, SimTime::from_nanos(390));
        assert!(ops[0].share_pct > 90.0);
        assert!(p.render(3).contains("work"));
        assert!(p.to_json().get("top_ops").is_some());
    }
}

//! Chrome-trace-event JSON export.
//!
//! Produces the [Trace Event Format] consumed by Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`: one *process* per
//! timeline source (emulator, each MLSim model), one *thread* (track) per
//! `(cell, hardware unit)` pair, duration slices (`"ph":"X"`) for spans and
//! instants (`"ph":"i"`) for point events. Slices carry their Figure-8
//! bucket as the event category and a reserved color name, so the
//! exec/rts/overhead/idle lanes read directly off the timeline.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! # Examples
//!
//! ```
//! use apobs::{chrome_trace, Bucket, Timeline, TimelineEvent, Unit};
//! use aputil::SimTime;
//!
//! let mut t = Timeline::new("emulator");
//! t.events.push(TimelineEvent {
//!     cell: 0, unit: Unit::Cpu, name: "work",
//!     start: SimTime::ZERO, dur: Some(SimTime::from_nanos(2000)),
//!     bucket: Bucket::Exec, arg: 100, tid: 0,
//! });
//! let json = chrome_trace(&[&t]);
//! assert!(json.get("traceEvents").is_some());
//! ```

use crate::event::Unit;
use crate::timeline::Timeline;
use aputil::Json;
use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;

/// Thread id of a `(cell, unit)` track inside its process.
fn tid(cell: u32, unit: Unit) -> u64 {
    cell as u64 * Unit::ALL.len() as u64 + unit.index() as u64
}

fn micros(t: aputil::SimTime) -> Json {
    // The format's `ts`/`dur` are microseconds; fractional values are
    // allowed, preserving nanosecond resolution.
    Json::F(t.as_nanos() as f64 / 1000.0)
}

/// The `process_name` metadata event for one timeline.
fn process_meta(pid: u64, source: &str) -> Json {
    Json::obj([
        ("ph", Json::from("M")),
        ("pid", Json::from(pid)),
        ("name", Json::from("process_name")),
        ("args", Json::obj([("name", Json::from(source))])),
    ])
}

/// The `thread_name` + `thread_sort_index` metadata events for one track.
fn track_meta(pid: u64, cell: u32, unit: Unit) -> [Json; 2] {
    let t = tid(cell, unit);
    [
        Json::obj([
            ("ph", Json::from("M")),
            ("pid", Json::from(pid)),
            ("tid", Json::from(t)),
            ("name", Json::from("thread_name")),
            (
                "args",
                Json::obj([("name", Json::from(format!("cell{cell} {}", unit.label())))]),
            ),
        ]),
        Json::obj([
            ("ph", Json::from("M")),
            ("pid", Json::from(pid)),
            ("tid", Json::from(t)),
            ("name", Json::from("thread_sort_index")),
            ("args", Json::obj([("sort_index", Json::from(t))])),
        ]),
    ]
}

/// One timeline event as a trace-event object.
fn event_json(e: &crate::event::TimelineEvent, pid: u64) -> Json {
    let mut members = vec![
        ("name".to_string(), Json::from(e.name)),
        ("cat".to_string(), Json::from(e.bucket.label())),
        ("pid".to_string(), Json::from(pid)),
        ("tid".to_string(), Json::from(tid(e.cell, e.unit))),
        ("ts".to_string(), micros(e.start)),
    ];
    match e.dur {
        Some(d) => {
            members.insert(0, ("ph".to_string(), Json::from("X")));
            members.push(("dur".to_string(), micros(d)));
            members.push(("cname".to_string(), Json::from(e.bucket.chrome_color())));
        }
        None => {
            members.insert(0, ("ph".to_string(), Json::from("i")));
            // Thread-scoped instant.
            members.push(("s".to_string(), Json::from("t")));
        }
    }
    let mut args = vec![("arg".to_string(), Json::from(e.arg))];
    if e.tid != 0 {
        // Transfer-chain id: lets Perfetto queries group one
        // PUT/GET's issue→DMA→net→delivery events across tracks.
        args.push(("xfer".to_string(), Json::from(e.tid)));
    }
    members.push(("args".to_string(), Json::Obj(args)));
    Json::Obj(members)
}

/// Feeds every trace event for `timelines` (then `extra`, verbatim) to
/// `emit`, in the document's canonical order. Both the in-memory and the
/// streaming serializer run through here, so they cannot diverge.
fn for_each_event<E>(
    timelines: &[&Timeline],
    extra: &[Json],
    mut emit: impl FnMut(&Json) -> Result<(), E>,
) -> Result<(), E> {
    for (i, timeline) in timelines.iter().enumerate() {
        let pid = i as u64 + 1;
        emit(&process_meta(pid, &timeline.source))?;

        // Name and order every track that has at least one event.
        let tracks: BTreeSet<(u32, Unit)> =
            timeline.events.iter().map(|e| (e.cell, e.unit)).collect();
        for &(cell, unit) in &tracks {
            for m in track_meta(pid, cell, unit) {
                emit(&m)?;
            }
        }

        let mut sorted = (*timeline).clone();
        sorted.sort();
        for e in &sorted.events {
            emit(&event_json(e, pid))?;
        }
    }
    for j in extra {
        emit(j)?;
    }
    Ok(())
}

/// Builds the Chrome-trace JSON document for the given timelines. Each
/// timeline becomes its own process (`pid` = position + 1); events are
/// sorted so every track's timestamps are monotonically non-decreasing.
///
/// For big traces prefer [`stream_chrome_trace`], which writes the same
/// bytes without materializing the document.
pub fn chrome_trace(timelines: &[&Timeline]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for_each_event::<std::convert::Infallible>(timelines, &[], |e| {
        events.push(e.clone());
        Ok(())
    })
    .unwrap();
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ms")),
    ])
}

/// Streams the Chrome trace for `timelines` into `w`, one event at a
/// time — the serialized bytes are identical to
/// `chrome_trace(timelines).to_string()` but peak memory is one event,
/// not the whole document (the scale limit the in-memory builder hits on
/// big traces). `extra` events (e.g. `apmon` Perfetto counter tracks) are
/// appended verbatim to the event array. String escaping is
/// [`aputil::write_json_escaped`], shared with `Json`'s own writer.
pub fn stream_chrome_trace<W: Write>(
    w: &mut W,
    timelines: &[&Timeline],
    extra: &[Json],
) -> std::io::Result<()> {
    w.write_all(b"{\"traceEvents\":[")?;
    let mut first = true;
    for_each_event(timelines, extra, |e| {
        if !first {
            w.write_all(b",")?;
        }
        first = false;
        write!(w, "{e}")
    })?;
    w.write_all(b"],\"displayTimeUnit\":\"ms\"}")
}

/// Writes the Chrome trace for `timelines` to `path` (streaming).
pub fn write_chrome_trace(path: &Path, timelines: &[&Timeline]) -> std::io::Result<()> {
    write_chrome_trace_with(path, timelines, &[])
}

/// [`write_chrome_trace`] with extra pre-built events (counter tracks)
/// appended to the event array.
pub fn write_chrome_trace_with(
    path: &Path,
    timelines: &[&Timeline],
    extra: &[Json],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    stream_chrome_trace(&mut f, timelines, extra)?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Bucket, TimelineEvent};
    use aputil::SimTime;

    fn sample_timeline() -> Timeline {
        let mut t = Timeline::new("emulator");
        // Deliberately emitted out of order to prove the exporter sorts.
        let ev = |cell, unit, name, start_ns: u64, dur_ns: Option<u64>, bucket| TimelineEvent {
            cell,
            unit,
            name,
            start: SimTime::from_nanos(start_ns),
            dur: dur_ns.map(SimTime::from_nanos),
            bucket,
            arg: 7,
            tid: 0,
        };
        t.events
            .push(ev(0, Unit::Cpu, "wait_flag", 5000, Some(300), Bucket::Idle));
        t.events
            .push(ev(0, Unit::Cpu, "work", 0, Some(2000), Bucket::Exec));
        t.events
            .push(ev(1, Unit::SendDma, "send_dma", 100, Some(600), Bucket::Hw));
        t.events
            .push(ev(0, Unit::Cpu, "rts", 2000, Some(500), Bucket::Rts));
        t.events
            .push(ev(0, Unit::Queue, "enqueue", 40, None, Bucket::Hw));
        t
    }

    #[test]
    fn export_has_required_fields_and_monotonic_tracks() {
        let t = sample_timeline();
        let doc = chrome_trace(&[&t]);
        let text = doc.to_string();
        // Re-parse: the exported document must be valid JSON.
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty());

        let mut last_ts: std::collections::HashMap<(u64, u64), f64> =
            std::collections::HashMap::new();
        let mut slices = 0;
        let mut instants = 0;
        for e in events {
            let ph = e
                .get("ph")
                .and_then(Json::as_str)
                .expect("every event has ph");
            let pid = e
                .get("pid")
                .and_then(Json::as_u64)
                .expect("every event has pid");
            match ph {
                "M" => continue,
                "X" => {
                    slices += 1;
                    assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
                }
                "i" => instants += 1,
                other => panic!("unexpected ph {other}"),
            }
            let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            let prev = last_ts.insert((pid, tid), ts).unwrap_or(f64::MIN);
            assert!(
                ts >= prev,
                "track ({pid},{tid}) went backwards: {prev} -> {ts}"
            );
        }
        assert_eq!(slices, 4);
        assert_eq!(instants, 1);
    }

    #[test]
    fn processes_and_threads_are_named() {
        let t = sample_timeline();
        let doc = chrome_trace(&[&t]);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let proc_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert_eq!(proc_names, ["emulator"]);
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(thread_names.contains(&"cell0 cpu"));
        assert!(thread_names.contains(&"cell1 send-dma"));
        assert!(thread_names.contains(&"cell0 msc-queue"));
    }

    #[test]
    fn streaming_writer_matches_in_memory_bytes() {
        let t = sample_timeline();
        let mut b = sample_timeline();
        // A hostile source name exercises the shared escaping path.
        b.source = "mlsim \"q\"\\\n\ttab\u{1}".to_string();
        let in_memory = chrome_trace(&[&t, &b]).to_string();
        let mut streamed = Vec::new();
        stream_chrome_trace(&mut streamed, &[&t, &b], &[]).unwrap();
        assert_eq!(in_memory.as_bytes(), &streamed[..]);
        // And the escaping really is aputil's: round-trips through its
        // parser to the original string.
        let parsed = Json::parse(&in_memory).unwrap();
        let names: Vec<&str> = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(names.contains(&b.source.as_str()));
    }

    #[test]
    fn extra_events_are_appended_verbatim() {
        let t = sample_timeline();
        let counter = Json::obj([
            ("ph", Json::from("C")),
            ("pid", Json::from(9u64)),
            ("name", Json::from("queue_depth")),
            ("ts", Json::F(1.5)),
            ("args", Json::obj([("value", Json::from(3u64))])),
        ]);
        let mut streamed = Vec::new();
        stream_chrome_trace(&mut streamed, &[&t], std::slice::from_ref(&counter)).unwrap();
        let parsed = Json::parse(std::str::from_utf8(&streamed).unwrap()).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        let last = events.last().unwrap();
        assert_eq!(last.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(last.get("name").and_then(Json::as_str), Some("queue_depth"));
    }

    #[test]
    fn multiple_timelines_get_distinct_pids() {
        let a = sample_timeline();
        let mut b = sample_timeline();
        b.source = "mlsim/ap1000+".to_string();
        let doc = chrome_trace(&[&a, &b]);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let pids: BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}

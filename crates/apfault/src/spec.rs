//! Fault schedules and recovery parameters.

use aputil::{CellId, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tunables of the ack/retry recovery protocol.
///
/// Every non-loopback packet sent under a fault plan carries a sequence
/// number and is acknowledged by the receiver. If the ack has not arrived
/// within [`timeout_for`](RecoveryParams::timeout_for) the packet is
/// retransmitted, with the timeout doubling per attempt up to
/// `backoff_cap`; after `max_retries` retransmissions the packet is
/// declared undeliverable and the run aborts with a structured
/// [`aputil::FaultReport`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryParams {
    /// Base ack timeout for the first attempt.
    pub ack_timeout: SimTime,
    /// Upper bound on the backed-off timeout.
    pub backoff_cap: SimTime,
    /// Retransmissions allowed per packet (first send not counted).
    pub max_retries: u32,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        // The base timeout must exceed a contended round trip (a few
        // hundred µs covers every workload transfer at paper scale); the
        // cap keeps the total give-up horizon within a few ms so an
        // unsurvivable schedule aborts quickly.
        RecoveryParams {
            ack_timeout: SimTime::from_nanos(400_000),
            backoff_cap: SimTime::from_nanos(3_200_000),
            max_retries: 8,
        }
    }
}

impl RecoveryParams {
    /// Timeout armed for attempt number `attempt` (1 = first send):
    /// `min(ack_timeout * 2^(attempt-1), backoff_cap)`.
    pub fn timeout_for(&self, attempt: u32) -> SimTime {
        let shift = attempt.saturating_sub(1).min(20);
        let ns = self.ack_timeout.as_nanos().saturating_mul(1u64 << shift);
        SimTime::from_nanos(ns.min(self.backoff_cap.as_nanos()))
    }
}

/// What kind of fault an event injects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The directed T-net link `from -> to` drops every packet routed
    /// across it while the event is active. The first packet to cross it
    /// is lost outright ("discovery"); subsequent packets take the
    /// deterministic Y-then-X detour.
    LinkDown {
        /// Upstream end of the dead link.
        from: CellId,
        /// Downstream end.
        to: CellId,
    },
    /// Every packet `src -> dst` sent inside the window is delivered
    /// `extra` later than it otherwise would be.
    Delay {
        /// Sending cell.
        src: CellId,
        /// Destination cell.
        dst: CellId,
        /// Additional latency.
        extra: SimTime,
    },
    /// The next `count` packets `src -> dst` sent inside the window have
    /// their payload checksum flipped in flight; the receiver detects the
    /// mismatch and discards them, forcing a retransmission.
    Corrupt {
        /// Sending cell.
        src: CellId,
        /// Destination cell.
        dst: CellId,
        /// Packets to corrupt.
        count: u32,
    },
    /// Fail-stop crash of one cell at the window start (`until` is
    /// ignored): the cell issues nothing further, every packet addressed
    /// to it is black-holed, and barriers it participates in abort.
    Crash {
        /// The doomed cell.
        cell: CellId,
    },
    /// The B-net refuses broadcasts during the window; they complete at
    /// the window's end instead (delayed, not lost — the B-net is a
    /// single shared medium with no alternate route).
    BnetDown,
}

/// One scheduled fault: `kind` is active for simulated times
/// `from <= t < until`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// The fault.
    pub kind: FaultKind,
}

/// A complete, deterministic fault schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultSpec {
    /// Seed the schedule was derived from (`None` for hand-written specs).
    pub seed: Option<u64>,
    /// Recovery-protocol tunables.
    pub recovery: RecoveryParams,
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl FaultSpec {
    /// An empty schedule: the recovery protocol runs (seq/ack/dedup) but
    /// nothing is ever injected.
    pub fn quiet() -> FaultSpec {
        FaultSpec {
            seed: None,
            recovery: RecoveryParams::default(),
            events: Vec::new(),
        }
    }

    /// Derives a whole schedule from one seed, for the chaos fuzzer.
    ///
    /// A survivable schedule mixes link outages, delays, corruption, and
    /// B-net outages — everything the recovery protocol can ride out. An
    /// unsurvivable one adds at least one fail-stop crash.
    pub fn random(seed: u64, ncells: u32, survivable: bool) -> FaultSpec {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17);
        let mut events = Vec::new();
        let cell = |rng: &mut SmallRng| CellId::new(rng.gen_range(0..ncells.max(1)));
        for _ in 0..rng.gen_range(1usize..=3) {
            let from_ns = rng.gen_range(0u64..1_500_000);
            let until_ns = from_ns + rng.gen_range(200_000u64..2_000_000);
            let kind = match rng.gen_range(0u32..6) {
                // Link outages are the most interesting survivable fault;
                // weight them higher. `to` is the ring successor, which is
                // a real torus hop for most cells.
                0..=2 => {
                    let a = rng.gen_range(0..ncells.max(1));
                    FaultKind::LinkDown {
                        from: CellId::new(a),
                        to: CellId::new((a + 1) % ncells.max(1)),
                    }
                }
                3 => FaultKind::Delay {
                    src: cell(&mut rng),
                    dst: cell(&mut rng),
                    extra: SimTime::from_nanos(rng.gen_range(1_000u64..60_000)),
                },
                4 => FaultKind::Corrupt {
                    src: cell(&mut rng),
                    dst: cell(&mut rng),
                    count: rng.gen_range(1u32..=2),
                },
                _ => FaultKind::BnetDown,
            };
            events.push(FaultEvent {
                from: SimTime::from_nanos(from_ns),
                until: SimTime::from_nanos(until_ns),
                kind,
            });
        }
        if !survivable {
            let at = SimTime::from_nanos(rng.gen_range(50_000u64..1_000_000));
            events.push(FaultEvent {
                from: at,
                until: at,
                kind: FaultKind::Crash {
                    cell: cell(&mut rng),
                },
            });
        }
        events.sort_by_key(|e| (e.from, e.until));
        FaultSpec {
            seed: Some(seed),
            recovery: RecoveryParams::default(),
            events,
        }
    }

    /// `true` if the schedule contains no fail-stop crash — the recovery
    /// protocol can ride out everything else.
    pub fn is_survivable(&self) -> bool {
        !self
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Crash { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let r = RecoveryParams {
            ack_timeout: SimTime::from_nanos(100),
            backoff_cap: SimTime::from_nanos(350),
            max_retries: 4,
        };
        assert_eq!(r.timeout_for(1).as_nanos(), 100);
        assert_eq!(r.timeout_for(2).as_nanos(), 200);
        assert_eq!(r.timeout_for(3).as_nanos(), 350);
        assert_eq!(r.timeout_for(10).as_nanos(), 350);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = FaultSpec::random(7, 16, true);
        let b = FaultSpec::random(7, 16, true);
        assert_eq!(a, b);
        let c = FaultSpec::random(8, 16, true);
        assert_ne!(
            a, c,
            "different seeds should differ (schedule space is large)"
        );
    }

    #[test]
    fn survivability_classification() {
        for seed in 0..20 {
            assert!(FaultSpec::random(seed, 9, true).is_survivable());
            assert!(!FaultSpec::random(seed, 9, false).is_survivable());
        }
        assert!(FaultSpec::quiet().is_survivable());
    }

    #[test]
    fn events_are_time_sorted() {
        for seed in 0..20 {
            let s = FaultSpec::random(seed, 4, false);
            for w in s.events.windows(2) {
                assert!(w[0].from <= w[1].from);
            }
        }
    }
}

//! Deterministic fault injection for the AP1000+ emulator.
//!
//! The paper's hardware assumes the T-net and B-net never lose, delay, or
//! corrupt a packet and that cells never die. This crate supplies the
//! adversary that assumption hides: a seed-driven **fault schedule**
//! ([`FaultSpec`]) of link outages, per-pair delays, payload corruption,
//! B-net outages, and fail-stop cell crashes — all expressed in
//! *simulated* time so an injected run is exactly as reproducible as a
//! fault-free one — plus the bookkeeping the recovery layer in
//! `core::kernel` needs:
//!
//! - [`RecoveryParams`] — ack timeout, capped exponential backoff, retry
//!   budget for the sequence-numbered ack/retry protocol;
//! - [`FaultPlan`] — the runtime state of one schedule (which outages have
//!   been discovered, how many corruptions remain) feeding a
//!   [`aputil::FaultReport`];
//! - [`ReplayGuard`] — `(src, seq)` dedup making retried PUT delivery
//!   idempotent: a duplicate can neither double-scatter nor
//!   double-increment a flag.
//!
//! Schedules serialize to the same hand-editable RON dialect the fuzzer
//! uses ([`to_ron`]/[`from_ron`]), and [`FaultSpec::random`] derives a
//! whole schedule from one seed for the chaos fuzzer.

pub mod plan;
pub mod replay;
pub mod ron;
pub mod spec;

pub use plan::{FaultPlan, RouteVerdict};
pub use replay::ReplayGuard;
pub use ron::{from_ron, to_ron};
pub use spec::{FaultEvent, FaultKind, FaultSpec, RecoveryParams};

//! Runtime state of one fault schedule.
//!
//! A [`FaultPlan`] is the mutable companion the kernel and T-net consult
//! while a run executes: which link outages have been *discovered* (first
//! crossing drops the packet, later ones detour), how many corruptions an
//! event still owes, which delays have fired. Everything it observes lands
//! in its embedded [`FaultReport`], which is what the run ultimately
//! exposes.

use crate::spec::{FaultEvent, FaultKind, FaultSpec, RecoveryParams};
use aputil::{CellId, FaultReport, InjectedFault, SimTime};

/// What the network should do with a packet about to travel `route`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteVerdict {
    /// No active outage on the route: deliver normally.
    Deliver,
    /// The packet crossed an undiscovered (or unavoidable) outage and is
    /// lost; the sender's ack timeout will recover it.
    Drop,
    /// The route crosses a *known* outage: the sender should re-route via
    /// the deterministic Y-then-X detour.
    Detour,
}

/// Mutable runtime state for one schedule. Create one per run with
/// [`FaultPlan::new`]; the kernel threads it through the network layer and
/// harvests [`FaultPlan::report`] at the end.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Per-event: a `LinkDown` has been discovered (its first victim
    /// dropped), a `Delay`/`BnetDown` has been recorded in the report.
    noted: Vec<bool>,
    /// Per-event: corruptions this `Corrupt` event still owes.
    corrupt_left: Vec<u32>,
    /// The report under construction. Fields are public so the kernel's
    /// recovery layer can bump its counters directly.
    pub report: FaultReport,
}

impl FaultPlan {
    /// Starts a fresh plan for `spec`.
    pub fn new(spec: &FaultSpec) -> FaultPlan {
        let corrupt_left = spec
            .events
            .iter()
            .map(|e| match e.kind {
                FaultKind::Corrupt { count, .. } => count,
                _ => 0,
            })
            .collect();
        FaultPlan {
            noted: vec![false; spec.events.len()],
            corrupt_left,
            report: FaultReport {
                seed: spec.seed,
                ..FaultReport::default()
            },
            spec: spec.clone(),
        }
    }

    /// The recovery-protocol tunables of the underlying spec.
    pub fn recovery(&self) -> RecoveryParams {
        self.spec.recovery
    }

    /// Every scheduled crash, `(cell, time)` in time-then-cell order.
    pub fn crash_schedule(&self) -> Vec<(CellId, SimTime)> {
        let mut out: Vec<(CellId, SimTime)> = self
            .spec
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Crash { cell } => Some((cell, e.from)),
                _ => None,
            })
            .collect();
        out.sort_by_key(|&(c, t)| (t, c.index()));
        out
    }

    fn active(e: &FaultEvent, now: SimTime) -> bool {
        e.from <= now && now < e.until
    }

    /// Decides the fate of a packet about to travel `route` (a cell path;
    /// hops are consecutive pairs) at `now`. On a detour attempt
    /// (`detour = true`) a known-down link is a [`RouteVerdict::Drop`] —
    /// there is no second detour.
    pub fn route_verdict(&mut self, route: &[CellId], now: SimTime, detour: bool) -> RouteVerdict {
        for hop in route.windows(2) {
            for (i, e) in self.spec.events.iter().enumerate() {
                let FaultKind::LinkDown { from, to } = e.kind else {
                    continue;
                };
                if !(Self::active(e, now) && from == hop[0] && to == hop[1]) {
                    continue;
                }
                if !self.noted[i] {
                    self.noted[i] = true;
                    self.report.injected.push(InjectedFault {
                        at: now,
                        what: format!("link {from}->{to} down (discovered, packet lost)"),
                    });
                    self.report.drops += 1;
                    return RouteVerdict::Drop;
                }
                if detour {
                    self.report.drops += 1;
                    return RouteVerdict::Drop;
                }
                return RouteVerdict::Detour;
            }
        }
        RouteVerdict::Deliver
    }

    /// Extra delivery latency for a packet `src -> dst` sent at `now`.
    pub fn delay(&mut self, src: CellId, dst: CellId, now: SimTime) -> SimTime {
        let mut extra_ns = 0u64;
        for (i, e) in self.spec.events.iter().enumerate() {
            let FaultKind::Delay {
                src: s,
                dst: d,
                extra,
            } = e.kind
            else {
                continue;
            };
            if Self::active(e, now) && s == src && d == dst {
                extra_ns += extra.as_nanos();
                if !self.noted[i] {
                    self.noted[i] = true;
                    self.report.injected.push(InjectedFault {
                        at: now,
                        what: format!("delay {s}->{d} +{extra}"),
                    });
                }
            }
        }
        SimTime::from_nanos(extra_ns)
    }

    /// Whether the packet `src -> dst` being sent at `now` should have its
    /// checksum flipped in flight. Consumes one unit of a matching
    /// `Corrupt` event's budget.
    pub fn corrupt(&mut self, src: CellId, dst: CellId, now: SimTime) -> bool {
        for (i, e) in self.spec.events.iter().enumerate() {
            let FaultKind::Corrupt { src: s, dst: d, .. } = e.kind else {
                continue;
            };
            if Self::active(e, now) && s == src && d == dst && self.corrupt_left[i] > 0 {
                self.corrupt_left[i] -= 1;
                self.report.injected.push(InjectedFault {
                    at: now,
                    what: format!("corrupt {s}->{d} payload"),
                });
                return true;
            }
        }
        false
    }

    /// Earliest time a broadcast wanting to complete at `at` may actually
    /// complete: pushed past the end of any active B-net outage window.
    pub fn bnet_clear(&mut self, at: SimTime) -> SimTime {
        let mut clear = at;
        for (i, e) in self.spec.events.iter().enumerate() {
            if matches!(e.kind, FaultKind::BnetDown) && Self::active(e, clear) {
                clear = e.until;
                if !self.noted[i] {
                    self.noted[i] = true;
                    self.report.injected.push(InjectedFault {
                        at,
                        what: format!("bnet down (broadcast deferred to {})", e.until),
                    });
                }
            }
        }
        clear
    }

    /// Records a fail-stop crash taking effect.
    pub fn note_crash(&mut self, cell: CellId, at: SimTime) {
        self.report.injected.push(InjectedFault {
            at,
            what: format!("crash {cell} (fail-stop)"),
        });
        self.report.crashed.push((cell, at));
    }

    /// Bumps the retry counter for packet-kind `op`, keeping the
    /// per-kind list sorted by name.
    pub fn note_retry(&mut self, op: &'static str) {
        match self
            .report
            .retries_by_op
            .binary_search_by(|(name, _)| name.as_str().cmp(op))
        {
            Ok(i) => self.report.retries_by_op[i].1 += 1,
            Err(i) => self.report.retries_by_op.insert(i, (op.to_string(), 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn link_down_spec() -> FaultSpec {
        FaultSpec {
            seed: Some(1),
            recovery: RecoveryParams::default(),
            events: vec![FaultEvent {
                from: t(100),
                until: t(200),
                kind: FaultKind::LinkDown {
                    from: c(1),
                    to: c(2),
                },
            }],
        }
    }

    #[test]
    fn first_crossing_drops_then_detours_then_recovers() {
        let mut plan = FaultPlan::new(&link_down_spec());
        let route = [c(0), c(1), c(2)];
        // Outside the window: clear.
        assert_eq!(
            plan.route_verdict(&route, t(50), false),
            RouteVerdict::Deliver
        );
        // First crossing inside the window: discovery drop.
        assert_eq!(
            plan.route_verdict(&route, t(120), false),
            RouteVerdict::Drop
        );
        // Known outage: detour on the primary route, drop on the detour.
        assert_eq!(
            plan.route_verdict(&route, t(130), false),
            RouteVerdict::Detour
        );
        assert_eq!(plan.route_verdict(&route, t(130), true), RouteVerdict::Drop);
        // Window over: clear again.
        assert_eq!(
            plan.route_verdict(&route, t(250), false),
            RouteVerdict::Deliver
        );
        assert_eq!(plan.report.drops, 2);
        assert_eq!(plan.report.injected.len(), 1, "discovery recorded once");
    }

    #[test]
    fn corrupt_budget_is_consumed() {
        let spec = FaultSpec {
            seed: None,
            recovery: RecoveryParams::default(),
            events: vec![FaultEvent {
                from: t(0),
                until: t(1000),
                kind: FaultKind::Corrupt {
                    src: c(0),
                    dst: c(3),
                    count: 2,
                },
            }],
        };
        let mut plan = FaultPlan::new(&spec);
        assert!(plan.corrupt(c(0), c(3), t(10)));
        assert!(!plan.corrupt(c(1), c(3), t(10)), "wrong pair untouched");
        assert!(plan.corrupt(c(0), c(3), t(20)));
        assert!(!plan.corrupt(c(0), c(3), t(30)), "budget exhausted");
        assert_eq!(plan.report.injected.len(), 2);
    }

    #[test]
    fn delay_sums_and_bnet_defers() {
        let spec = FaultSpec {
            seed: None,
            recovery: RecoveryParams::default(),
            events: vec![
                FaultEvent {
                    from: t(0),
                    until: t(1000),
                    kind: FaultKind::Delay {
                        src: c(0),
                        dst: c(1),
                        extra: t(40),
                    },
                },
                FaultEvent {
                    from: t(500),
                    until: t(900),
                    kind: FaultKind::BnetDown,
                },
            ],
        };
        let mut plan = FaultPlan::new(&spec);
        assert_eq!(plan.delay(c(0), c(1), t(10)).as_nanos(), 40);
        assert_eq!(plan.delay(c(1), c(0), t(10)).as_nanos(), 0);
        assert_eq!(plan.bnet_clear(t(600)).as_nanos(), 900);
        assert_eq!(plan.bnet_clear(t(950)).as_nanos(), 950);
    }

    #[test]
    fn retries_stay_sorted_by_op() {
        let mut plan = FaultPlan::new(&FaultSpec::quiet());
        plan.note_retry("PutData");
        plan.note_retry("GetReq");
        plan.note_retry("PutData");
        assert_eq!(
            plan.report.retries_by_op,
            vec![("GetReq".to_string(), 1), ("PutData".to_string(), 2)]
        );
        assert_eq!(plan.report.total_retries(), 3);
    }

    #[test]
    fn crash_schedule_is_time_ordered() {
        let spec = FaultSpec {
            seed: None,
            recovery: RecoveryParams::default(),
            events: vec![
                FaultEvent {
                    from: t(900),
                    until: t(900),
                    kind: FaultKind::Crash { cell: c(1) },
                },
                FaultEvent {
                    from: t(100),
                    until: t(100),
                    kind: FaultKind::Crash { cell: c(3) },
                },
            ],
        };
        let plan = FaultPlan::new(&spec);
        assert_eq!(plan.crash_schedule(), vec![(c(3), t(100)), (c(1), t(900))]);
    }
}

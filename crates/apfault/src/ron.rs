//! RON serialization of fault schedules.
//!
//! Same hand-rolled dialect as the fuzzer's reproducers: nested structs,
//! enums with named fields, integers, `//` comments, trailing commas. All
//! times are written as integer nanoseconds (`*_ns`) so specs stay exact
//! and diff-able.

use crate::spec::{FaultEvent, FaultKind, FaultSpec, RecoveryParams};
use aputil::{CellId, SimTime};
use std::fmt::Write as _;

/// Renders a schedule as RON text; [`from_ron`] parses it back exactly.
pub fn to_ron(spec: &FaultSpec) -> String {
    let mut s = String::new();
    s.push_str("(\n");
    match spec.seed {
        None => s.push_str("    seed: None,\n"),
        Some(seed) => {
            let _ = writeln!(s, "    seed: Some({seed}),");
        }
    }
    let _ = writeln!(
        s,
        "    recovery: (ack_timeout_ns: {}, backoff_cap_ns: {}, max_retries: {}),",
        spec.recovery.ack_timeout.as_nanos(),
        spec.recovery.backoff_cap.as_nanos(),
        spec.recovery.max_retries,
    );
    s.push_str("    events: [\n");
    for e in &spec.events {
        let kind = match e.kind {
            FaultKind::LinkDown { from, to } => {
                format!("LinkDown(from: {}, to: {})", from.index(), to.index())
            }
            FaultKind::Delay { src, dst, extra } => format!(
                "Delay(src: {}, dst: {}, extra_ns: {})",
                src.index(),
                dst.index(),
                extra.as_nanos()
            ),
            FaultKind::Corrupt { src, dst, count } => format!(
                "Corrupt(src: {}, dst: {}, count: {count})",
                src.index(),
                dst.index()
            ),
            FaultKind::Crash { cell } => format!("Crash(cell: {})", cell.index()),
            FaultKind::BnetDown => "BnetDown()".to_string(),
        };
        let _ = writeln!(
            s,
            "        (from_ns: {}, until_ns: {}, kind: {kind}),",
            e.from.as_nanos(),
            e.until.as_nanos(),
        );
    }
    s.push_str("    ],\n)\n");
    s
}

/// Parses RON text produced by [`to_ron`] (or hand-written in the same
/// dialect) back into a schedule.
///
/// # Errors
///
/// A message with the byte offset of the first syntax problem.
pub fn from_ron(text: &str) -> Result<FaultSpec, String> {
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    let spec = p.spec()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(spec)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("fault spec parse error at byte {}: {what}", self.i)
    }

    fn ws(&mut self) {
        loop {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
            if self.s[self.i..].starts_with(b"//") {
                while self.i < self.s.len() && self.s[self.i] != b'\n' {
                    self.i += 1;
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn peek(&mut self, c: u8) -> bool {
        self.ws();
        self.i < self.s.len() && self.s[self.i] == c
    }

    fn word(&mut self) -> Result<String, String> {
        self.ws();
        let start = self.i;
        while self.i < self.s.len()
            && (self.s[self.i].is_ascii_alphanumeric() || self.s[self.i] == b'_')
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.i]).into_owned())
    }

    fn int(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.err("expected unsigned integer"))
    }

    /// `name: int` pairs inside `( ... )`, any order, trailing comma ok.
    fn int_fields(&mut self) -> Result<Vec<(String, u64)>, String> {
        self.eat(b'(')?;
        let mut out = Vec::new();
        while !self.peek(b')') {
            let name = self.word()?;
            self.eat(b':')?;
            out.push((name, self.int()?));
            if self.peek(b',') {
                self.i += 1;
            }
        }
        self.eat(b')')?;
        Ok(out)
    }

    fn spec(&mut self) -> Result<FaultSpec, String> {
        self.eat(b'(')?;
        let mut seed = None;
        let mut recovery = RecoveryParams::default();
        let mut events = None;
        while !self.peek(b')') {
            let name = self.word()?;
            self.eat(b':')?;
            match name.as_str() {
                "seed" => match self.word()?.as_str() {
                    "None" => {}
                    "Some" => {
                        self.eat(b'(')?;
                        seed = Some(self.int()?);
                        self.eat(b')')?;
                    }
                    w => return Err(self.err(&format!("expected None/Some, got `{w}`"))),
                },
                "recovery" => {
                    let at = self.i;
                    for (field, v) in self.int_fields()? {
                        match field.as_str() {
                            "ack_timeout_ns" => recovery.ack_timeout = SimTime::from_nanos(v),
                            "backoff_cap_ns" => recovery.backoff_cap = SimTime::from_nanos(v),
                            "max_retries" => recovery.max_retries = v as u32,
                            other => {
                                return Err(format!(
                                    "fault spec parse error at byte {at}: \
                                     unknown recovery field `{other}`"
                                ))
                            }
                        }
                    }
                }
                "events" => events = Some(self.events()?),
                other => return Err(self.err(&format!("unknown field `{other}`"))),
            }
            if self.peek(b',') {
                self.i += 1;
            }
        }
        self.eat(b')')?;
        Ok(FaultSpec {
            seed,
            recovery,
            events: events.ok_or_else(|| self.err("missing events"))?,
        })
    }

    fn events(&mut self) -> Result<Vec<FaultEvent>, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        while !self.peek(b']') {
            out.push(self.event()?);
            if self.peek(b',') {
                self.i += 1;
            }
        }
        self.eat(b']')?;
        Ok(out)
    }

    fn event(&mut self) -> Result<FaultEvent, String> {
        self.eat(b'(')?;
        let (mut from, mut until, mut kind) = (None, None, None);
        while !self.peek(b')') {
            let name = self.word()?;
            self.eat(b':')?;
            match name.as_str() {
                "from_ns" => from = Some(SimTime::from_nanos(self.int()?)),
                "until_ns" => until = Some(SimTime::from_nanos(self.int()?)),
                "kind" => kind = Some(self.kind()?),
                other => return Err(self.err(&format!("unknown event field `{other}`"))),
            }
            if self.peek(b',') {
                self.i += 1;
            }
        }
        self.eat(b')')?;
        Ok(FaultEvent {
            from: from.ok_or_else(|| self.err("event missing from_ns"))?,
            until: until.ok_or_else(|| self.err("event missing until_ns"))?,
            kind: kind.ok_or_else(|| self.err("event missing kind"))?,
        })
    }

    fn kind(&mut self) -> Result<FaultKind, String> {
        let variant = self.word()?;
        let at = self.i;
        let fields = self.int_fields()?;
        let get = |name: &str| -> Result<u64, String> {
            fields
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .ok_or(format!(
                    "fault spec parse error at byte {at}: {variant} needs field `{name}`"
                ))
        };
        Ok(match variant.as_str() {
            "LinkDown" => FaultKind::LinkDown {
                from: CellId::new(get("from")? as u32),
                to: CellId::new(get("to")? as u32),
            },
            "Delay" => FaultKind::Delay {
                src: CellId::new(get("src")? as u32),
                dst: CellId::new(get("dst")? as u32),
                extra: SimTime::from_nanos(get("extra_ns")?),
            },
            "Corrupt" => FaultKind::Corrupt {
                src: CellId::new(get("src")? as u32),
                dst: CellId::new(get("dst")? as u32),
                count: get("count")? as u32,
            },
            "Crash" => FaultKind::Crash {
                cell: CellId::new(get("cell")? as u32),
            },
            "BnetDown" => FaultKind::BnetDown,
            other => return Err(format!("unknown fault kind `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_random_specs() {
        for seed in 0..40 {
            for survivable in [true, false] {
                let spec = FaultSpec::random(seed, 16, survivable);
                let text = to_ron(&spec);
                let back = from_ron(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
                assert_eq!(spec, back, "seed {seed} round-trip\n{text}");
            }
        }
    }

    #[test]
    fn parses_hand_written_dialect() {
        let text = r#"
            // one transient outage plus a corrupted packet
            (
                seed: None,
                recovery: (ack_timeout_ns: 1000, max_retries: 3),
                events: [
                    (from_ns: 100, until_ns: 900, kind: LinkDown(to: 2, from: 1)),
                    (from_ns: 0, until_ns: 500, kind: Corrupt(src: 0, dst: 3, count: 1)),
                    (from_ns: 50, until_ns: 60, kind: BnetDown()),
                ],
            )
        "#;
        let spec = from_ron(text).unwrap();
        assert_eq!(spec.seed, None);
        assert_eq!(spec.recovery.max_retries, 3);
        assert_eq!(spec.recovery.ack_timeout.as_nanos(), 1000);
        // Unspecified recovery fields keep their defaults.
        assert_eq!(
            spec.recovery.backoff_cap,
            RecoveryParams::default().backoff_cap
        );
        assert_eq!(spec.events.len(), 3);
        assert!(matches!(
            spec.events[0].kind,
            FaultKind::LinkDown { from, to } if from.index() == 1 && to.index() == 2
        ));
        assert!(spec.is_survivable());
    }

    #[test]
    fn reports_errors_with_position() {
        assert!(from_ron("(seed: x)").unwrap_err().contains("byte"));
        assert!(
            from_ron("(events: [(from_ns: 1, until_ns: 2, kind: Nope())])")
                .unwrap_err()
                .contains("unknown fault kind")
        );
        assert!(from_ron("(seed: None)")
            .unwrap_err()
            .contains("missing events"));
    }
}

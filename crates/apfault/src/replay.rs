//! Idempotent replay: `(src, seq)` deduplication.
//!
//! The retry protocol may deliver the same packet more than once (the
//! original was delivered but its ack was lost, or a retransmission raced
//! the original past a healed link). Side effects — scattering payload
//! bytes and incrementing the receive flag — must happen exactly once, so
//! the receive path consults a [`ReplayGuard`] keyed by the sender and the
//! packet's sequence number before applying any of them.

use aputil::CellId;
use std::collections::HashSet;

/// Tracks which `(src, seq)` pairs a receiver has already applied.
#[derive(Clone, Debug, Default)]
pub struct ReplayGuard {
    seen: HashSet<(u32, u64)>,
}

impl ReplayGuard {
    /// An empty guard.
    pub fn new() -> ReplayGuard {
        ReplayGuard::default()
    }

    /// `true` exactly once per `(src, seq)`: the first sighting applies
    /// the packet's effects, every later one suppresses them (the packet
    /// is still re-acked so the sender stops retrying).
    pub fn first_sighting(&mut self, src: CellId, seq: u64) -> bool {
        self.seen.insert((src.index() as u32, seq))
    }

    /// Distinct packets sighted so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// `true` if nothing has been sighted.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_suppressed() {
        let mut g = ReplayGuard::new();
        assert!(g.first_sighting(CellId::new(0), 7));
        assert!(!g.first_sighting(CellId::new(0), 7));
        assert!(g.first_sighting(CellId::new(1), 7), "per-sender sequences");
        assert!(g.first_sighting(CellId::new(0), 8));
        assert_eq!(g.len(), 3);
    }
}

#[cfg(test)]
mod proptests {
    //! Retry idempotence (ISSUE 5 satellite): any delivery schedule made
    //! of duplicated, reordered retransmissions of a set of PUTs — as long
    //! as each PUT is delivered at least once — must leave exactly the
    //! final memory and flag values of the fault-free sequential run.
    //!
    //! The model mirrors the real plan's safety precondition: destination
    //! slots are disjoint per PUT (the fuzzer allocates destinations
    //! uniquely program-wide), while flags are shared counters that every
    //! duplicate would corrupt without the guard.

    use super::*;
    use proptest::prelude::*;

    /// One modeled PUT: writes `value` over a disjoint destination slot
    /// and increments one of a small set of shared flags.
    #[derive(Clone, Copy, Debug)]
    struct ModelPut {
        src: u32,
        seq: u64,
        slot: usize,
        value: u8,
        flag: usize,
    }

    const SLOTS: usize = 32;
    const FLAGS: usize = 4;

    fn apply(mem: &mut [u8; SLOTS], flags: &mut [u32; FLAGS], p: &ModelPut) {
        mem[p.slot] = p.value;
        flags[p.flag] += 1;
    }

    /// The fault-free run: each PUT applied exactly once, in issue order.
    fn baseline(puts: &[ModelPut]) -> ([u8; SLOTS], [u32; FLAGS]) {
        let mut mem = [0u8; SLOTS];
        let mut flags = [0u32; FLAGS];
        for p in puts {
            apply(&mut mem, &mut flags, p);
        }
        (mem, flags)
    }

    /// Strategy: up to `SLOTS` PUTs with pairwise-distinct slots, plus a
    /// delivery schedule that repeats and reorders them arbitrarily while
    /// covering each at least once.
    fn arb_case() -> impl Strategy<Value = (Vec<ModelPut>, Vec<usize>)> {
        (1usize..=SLOTS, any::<u64>()).prop_flat_map(|(n, mix)| {
            let puts: Vec<ModelPut> = (0..n)
                .map(|i| {
                    let h = (mix ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    ModelPut {
                        src: (h % 5) as u32,
                        // Sequence numbers are unique per (src, op) as the
                        // kernel allocates them globally.
                        seq: i as u64,
                        slot: i,
                        value: (h >> 8) as u8 | 1,
                        flag: (h >> 16) as usize % FLAGS,
                    }
                })
                .collect();
            // Indices into `puts`, each appearing 1..=3 times, shuffled by
            // sampling: draw 3n slots from a bag seeded with one copy of
            // each index plus random extras.
            let dup = proptest::collection::vec(0usize..n, 0..2 * n);
            (Just(puts), dup).prop_map(|(puts, extras)| {
                let n = puts.len();
                let mut schedule: Vec<usize> = (0..n).chain(extras).collect();
                // Deterministic reorder: sort by a hash of (index,
                // position) so duplicates interleave with originals.
                let keyed: Vec<(u64, usize)> = schedule
                    .drain(..)
                    .enumerate()
                    .map(|(pos, idx)| {
                        let k =
                            ((idx as u64) << 32 | pos as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
                        (k, idx)
                    })
                    .collect();
                let mut keyed = keyed;
                keyed.sort_unstable();
                (puts, keyed.into_iter().map(|(_, idx)| idx).collect())
            })
        })
    }

    proptest! {
        /// Deduped delivery of any duplicated/reordered schedule matches
        /// the fault-free run byte for byte, flag for flag.
        #[test]
        fn deduped_replay_matches_fault_free_run((puts, schedule) in arb_case()) {
            let (want_mem, want_flags) = baseline(&puts);
            let mut guard = ReplayGuard::new();
            let mut mem = [0u8; SLOTS];
            let mut flags = [0u32; FLAGS];
            let mut suppressed = 0u32;
            for &idx in &schedule {
                let p = &puts[idx];
                if guard.first_sighting(CellId::new(p.src), p.seq) {
                    apply(&mut mem, &mut flags, p);
                } else {
                    suppressed += 1;
                }
            }
            prop_assert_eq!(mem, want_mem);
            prop_assert_eq!(flags, want_flags);
            prop_assert_eq!(
                suppressed as usize,
                schedule.len() - puts.len(),
                "every duplicate, and only duplicates, suppressed"
            );
        }

        /// Sanity check on the model itself: without the guard, any
        /// schedule containing a duplicate over-counts a flag.
        #[test]
        fn without_dedup_duplicates_corrupt_flags((puts, schedule) in arb_case()) {
            prop_assume!(schedule.len() > puts.len());
            let (_, want_flags) = baseline(&puts);
            let mut mem = [0u8; SLOTS];
            let mut flags = [0u32; FLAGS];
            for &idx in &schedule {
                apply(&mut mem, &mut flags, &puts[idx]);
            }
            let total: u32 = flags.iter().sum();
            let want_total: u32 = want_flags.iter().sum();
            prop_assert!(total > want_total);
        }

        /// Prefix monotonicity: after any prefix of the schedule, every
        /// touched slot holds either its initial or its final value, and
        /// no flag exceeds its fault-free count — a partially recovered
        /// run can be behind, never corrupted.
        #[test]
        fn prefixes_never_overshoot((puts, schedule) in arb_case()) {
            let (want_mem, want_flags) = baseline(&puts);
            let mut guard = ReplayGuard::new();
            let mut mem = [0u8; SLOTS];
            let mut flags = [0u32; FLAGS];
            for &idx in &schedule {
                let p = &puts[idx];
                if guard.first_sighting(CellId::new(p.src), p.seq) {
                    apply(&mut mem, &mut flags, p);
                }
                for s in 0..SLOTS {
                    prop_assert!(mem[s] == 0 || mem[s] == want_mem[s]);
                }
                for fl in 0..FLAGS {
                    prop_assert!(flags[fl] <= want_flags[fl]);
                }
            }
        }
    }
}

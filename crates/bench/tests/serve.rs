//! Cache-correctness suite for `repro serve` / apserve, run over real
//! HTTP against the real simulator executor.
//!
//! The invariants pinned here are the ones DESIGN.md §11 promises:
//!
//! - a repeated request is served from cache **byte-identical** to the
//!   cold run (status travels in `X-Cache`, never in the body);
//! - hit/miss/run counters advance exactly as the cache story says
//!   (`runs == misses`, single-flight);
//! - two concurrent identical requests simulate exactly once;
//! - an evicted entry is recomputed byte-identically;
//! - a full queue yields the structured 429 backpressure document;
//! - hostile input gets structured 400/404/405/413 errors;
//! - a disk-tier entry survives a server restart as a `disk-hit`.
//!
//! Plus the sandbox failure matrix (DESIGN.md §11's worker-supervision
//! contract):
//!
//! - a panicking or aborting job is a structured `500 job_crashed` and
//!   the server keeps answering;
//! - a deadline overrun is a `504 job_timeout`;
//! - a key that crashes through its retry is poisoned: `422`, never
//!   cached as success;
//! - a sandboxed response body is byte-identical to the same request
//!   served in-process;
//! - `kill -9` mid-job leaves no orphan process and no partial
//!   disk-cache entry;
//! - shutdown drains: in-flight children are killed within the drain
//!   deadline and nothing is left running.

use apserve::{client, serve, Config, SandboxConfig};
use aputil::Json;
use std::path::PathBuf;

fn test_server(cfg: Config) -> (apserve::ServerHandle, String) {
    let handle = serve(cfg, apbench::simulator_executor()).expect("bind server");
    let addr = handle.addr.to_string();
    (handle, addr)
}

fn cfg() -> Config {
    Config {
        addr: "127.0.0.1:0".to_string(),
        allow_sleep: true,
        ..Config::default()
    }
}

fn stats(addr: &str) -> Json {
    let resp = client::get(addr, "/stats").expect("GET /stats");
    assert_eq!(resp.status, 200);
    Json::parse(&resp.body_str()).expect("stats parses")
}

fn cache_counter(st: &Json, name: &str) -> u64 {
    st.get("cache")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("counter {name} missing from {st}"))
}

const EP_BENCH: &str = r#"{"kind":"bench","apps":["EP"],"scale":"test"}"#;
/// The same job, spelled differently: key order shuffled, defaults
/// written out, `1.0` as `1`. Must hash to the same content address.
const EP_BENCH_RESPELLED: &str =
    r#"{"scale":"test","factors":[1],"kind":"bench","sizes":["default"],"apps":["EP"],"rev":null}"#;

#[test]
fn repeated_request_is_cached_byte_identical() {
    let (handle, addr) = test_server(cfg());

    let cold = client::submit(&addr, EP_BENCH).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body_str());
    assert_eq!(cold.header("x-cache"), Some("miss"));
    let key = cold.header("x-key").expect("X-Key present").to_string();

    let warm = client::submit(&addr, EP_BENCH_RESPELLED).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(warm.header("x-key"), Some(key.as_str()));
    assert_eq!(
        cold.body, warm.body,
        "cached body must be byte-identical to the cold body"
    );

    // The body is a real versioned bench report, not an envelope.
    let doc = Json::parse(&cold.body_str()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(apbench::BENCH_SCHEMA)
    );

    let st = stats(&addr);
    assert_eq!(cache_counter(&st, "misses"), 1);
    assert_eq!(cache_counter(&st, "hits"), 1);
    assert_eq!(cache_counter(&st, "runs"), 1, "one simulation, not two");
    handle.shutdown();
}

#[test]
fn concurrent_identical_requests_simulate_exactly_once() {
    let (handle, addr) = test_server(cfg());
    // A slow job gives the second submission time to arrive while the
    // first is still executing.
    let job = r#"{"kind":"sleep","ms":500}"#;
    let a = {
        let addr = addr.clone();
        std::thread::spawn(move || client::submit(&addr, job).unwrap())
    };
    std::thread::sleep(std::time::Duration::from_millis(120));
    let b = client::submit(&addr, job).unwrap();
    let a = a.join().unwrap();
    assert_eq!((a.status, b.status), (200, 200));
    assert_eq!(a.body, b.body, "both callers get the same bytes");
    let statuses = [a.header("x-cache").unwrap(), b.header("x-cache").unwrap()];
    assert!(
        statuses.contains(&"miss") && statuses.contains(&"join"),
        "one miss, one join; got {statuses:?}"
    );
    let st = stats(&addr);
    assert_eq!(cache_counter(&st, "runs"), 1, "exactly one execution");
    assert_eq!(cache_counter(&st, "misses"), 1);
    assert_eq!(cache_counter(&st, "joins"), 1);
    handle.shutdown();
}

#[test]
fn full_queue_gets_the_structured_backpressure_error() {
    let (handle, addr) = test_server(Config {
        workers: 1,
        queue_cap: 1,
        ..cfg()
    });
    // Occupy the single worker, then the single queue slot, with
    // distinct slow jobs; the third distinct job must bounce.
    let slow: Vec<_> = [600u64, 601]
        .into_iter()
        .map(|ms| {
            let addr = addr.clone();
            let t = std::thread::spawn(move || {
                client::submit(&addr, &format!(r#"{{"kind":"sleep","ms":{ms}}}"#)).unwrap()
            });
            std::thread::sleep(std::time::Duration::from_millis(120));
            t
        })
        .collect();
    let rejected = client::submit(&addr, r#"{"kind":"sleep","ms":602}"#).unwrap();
    assert_eq!(rejected.status, 429, "{}", rejected.body_str());
    assert_eq!(rejected.header("retry-after"), Some("1"));
    let doc = Json::parse(&rejected.body_str()).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("queue_full"));
    assert_eq!(doc.get("capacity").and_then(Json::as_u64), Some(1));
    for t in slow {
        assert_eq!(t.join().unwrap().status, 200);
    }
    assert_eq!(cache_counter(&stats(&addr), "rejected"), 1);
    handle.shutdown();
}

#[test]
fn evicted_entry_is_recomputed_byte_identically() {
    // Memory-only cache with a single slot: the second job evicts the
    // first, so repeating the first must re-simulate — and reproduce
    // the exact bytes.
    let (handle, addr) = test_server(Config {
        cache_entries: 1,
        ..cfg()
    });
    let cold = client::submit(&addr, EP_BENCH).unwrap();
    assert_eq!(cold.header("x-cache"), Some("miss"));
    let evictor = client::submit(&addr, r#"{"kind":"sleep","ms":1}"#).unwrap();
    assert_eq!(evictor.status, 200);
    let again = client::submit(&addr, EP_BENCH).unwrap();
    assert_eq!(again.header("x-cache"), Some("miss"), "evicted ⇒ recompute");
    assert_eq!(cold.body, again.body, "recompute must be byte-identical");
    let st = stats(&addr);
    assert!(cache_counter(&st, "evictions") >= 1);
    assert_eq!(cache_counter(&st, "runs"), 3);
    handle.shutdown();
}

#[test]
fn disk_tier_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("apserve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk_cfg = || Config {
        cache_dir: Some(PathBuf::from(&dir)),
        ..cfg()
    };
    let (handle, addr) = test_server(disk_cfg());
    let cold = client::submit(&addr, EP_BENCH).unwrap();
    assert_eq!(cold.header("x-cache"), Some("miss"));
    handle.shutdown();

    // A brand-new server over the same cache directory: cold memory,
    // warm disk.
    let (handle, addr) = test_server(disk_cfg());
    let warm = client::submit(&addr, EP_BENCH).unwrap();
    assert_eq!(
        warm.header("x-cache"),
        Some("disk-hit"),
        "{}",
        warm.body_str()
    );
    assert_eq!(cold.body, warm.body, "disk tier returns the exact bytes");
    let st = stats(&addr);
    assert_eq!(cache_counter(&st, "disk_hits"), 1);
    assert_eq!(cache_counter(&st, "runs"), 0, "no simulation after restart");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_inputs_get_structured_errors() {
    let (handle, addr) = test_server(cfg());
    // (body, expected named field)
    for (body, field) in [
        ("this is not json", "body"),
        (r#"{"apps":["EP"]}"#, "kind"),
        (r#"{"kind":"warpdrive"}"#, "kind"),
        (r#"{"kind":"bench","bogus":1}"#, "bogus"),
        (r#"{"kind":"bench","scale":"huge"}"#, "scale"),
        (r#"{"kind":"remodel","trace":"../../etc/passwd"}"#, "trace"),
    ] {
        let resp = client::submit(&addr, body).unwrap();
        assert_eq!(resp.status, 400, "{body}");
        let doc = Json::parse(&resp.body_str()).unwrap();
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("bad_request"));
        assert_eq!(
            doc.get("field").and_then(Json::as_str),
            Some(field),
            "{body} -> {}",
            resp.body_str()
        );
    }
    // Too-deep JSON is rejected as a structured error, not a crash.
    let deep = format!(r#"{{"kind":{}1{}}}"#, "[".repeat(500), "]".repeat(500));
    let resp = client::submit(&addr, &deep).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body_str().contains("rejected"), "{}", resp.body_str());

    // Unknown route, wrong method, oversized body.
    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(&addr, "/submit").unwrap().status, 405);
    let huge = vec![b' '; apserve::MAX_BODY_BYTES + 1];
    let resp = client::request(&addr, "POST", "/submit", &huge).unwrap();
    assert_eq!(resp.status, 413);

    // None of that counts as cache traffic.
    let st = stats(&addr);
    assert_eq!(cache_counter(&st, "misses"), 0);
    assert_eq!(cache_counter(&st, "runs"), 0);
    handle.shutdown();
}

#[test]
fn streaming_submits_narrate_then_report() {
    let (handle, addr) = test_server(cfg());
    let job = r#"{"kind":"sleep","ms":50,"stream":true}"#;
    let mut lines = Vec::new();
    let report = client::submit_stream(&addr, job, |line| lines.push(line.to_string())).unwrap();
    // Progress lines arrived before the report line.
    let progress: Vec<String> = lines
        .iter()
        .filter_map(|l| {
            Json::parse(l)
                .ok()
                .and_then(|d| d.get("progress").and_then(Json::as_str).map(str::to_string))
        })
        .collect();
    assert!(progress.iter().any(|p| p == "queued"), "{lines:?}");
    assert!(progress.iter().any(|p| p == "done"), "{lines:?}");
    let doc = Json::parse(&report).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("ap1000plus.sleep")
    );

    // A streamed repeat is a hit: no progress, just the report line —
    // byte-identical to the cold report.
    let mut lines2 = Vec::new();
    let report2 = client::submit_stream(&addr, job, |l| lines2.push(l.to_string())).unwrap();
    assert_eq!(lines2.len(), 1, "a hit streams exactly the report line");
    assert_eq!(report, report2);
    handle.shutdown();
}

/// End-to-end through the binaries: `repro serve` on an ephemeral port,
/// `repro submit` as the client — the exact workflow CI's serve-smoke
/// job drives.
#[test]
fn repro_serve_and_submit_round_trip() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let mut server = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--addr", "127.0.0.1:0", "--allow-sleep"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("start repro serve");
    let stdout = server.stdout.take().unwrap();
    let mut first_line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("read bind line");
    let addr = first_line
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected bind line {first_line:?}"))
        .to_string();

    let submit = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["submit", "--addr", &addr])
            .args(extra)
            .output()
            .expect("run repro submit")
    };

    let job = r#"{"kind":"sleep","ms":5}"#;
    let cold = submit(&["--job", job]);
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert!(String::from_utf8_lossy(&cold.stderr).contains("x-cache: miss"));
    let warm = submit(&["--job", job]);
    assert!(warm.status.success());
    assert!(String::from_utf8_lossy(&warm.stderr).contains("x-cache: hit"));
    assert_eq!(cold.stdout, warm.stdout, "cached bytes identical via CLI");

    let stats_out = submit(&["--stats"]);
    assert!(stats_out.status.success());
    let st = Json::parse(String::from_utf8_lossy(&stats_out.stdout).trim()).unwrap();
    assert_eq!(
        st.get("schema").and_then(Json::as_str),
        Some("ap1000plus.servestats")
    );

    // A malformed job exits 2 with the field named on stderr.
    let bad = submit(&["--job", r#"{"kind":"bench","bogus":1}"#]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("bogus"));

    // `--stream` injects the transport flag itself: progress narration
    // lands on stderr, the report alone on stdout.
    let streamed = submit(&["--stream", "--job", r#"{"kind":"sleep","ms":40}"#]);
    assert!(streamed.status.success());
    let err = String::from_utf8_lossy(&streamed.stderr);
    assert!(err.contains(r#"{"progress":"queued"}"#), "{err}");
    assert!(err.contains(r#"{"progress":"done"}"#), "{err}");
    let out = String::from_utf8_lossy(&streamed.stdout);
    assert!(
        out.trim().starts_with(r#"{"schema":"ap1000plus.sleep""#),
        "{out}"
    );

    // A failed streamed job exits 1 and keeps stdout clean.
    let failed = submit(&[
        "--stream",
        "--job",
        r#"{"kind":"bench","apps":["NoSuchApp"],"scale":"test"}"#,
    ]);
    assert_eq!(failed.status.code(), Some(1));
    assert!(
        failed.stdout.is_empty(),
        "no report on stdout for a failure"
    );
    assert!(String::from_utf8_lossy(&failed.stderr).contains("job_failed"));

    // Remote shutdown stops the foreground server process.
    let down = submit(&["--shutdown"]);
    assert!(down.status.success());
    let status = server.wait().expect("server exits after /shutdown");
    assert!(status.success());
}

/// `repro submit --retry N` rides out 429 backpressure: without the
/// flag a full queue is exit 3; with it the client honours
/// `Retry-After` (capped exponential backoff) and eventually lands.
#[test]
fn submit_retry_rides_out_backpressure() {
    let (handle, addr) = test_server(Config {
        workers: 1,
        queue_cap: 1,
        ..cfg()
    });
    // Occupy the single worker and the single queue slot.
    let slow: Vec<_> = [800u64, 801]
        .into_iter()
        .map(|ms| {
            let addr = addr.clone();
            let t = std::thread::spawn(move || {
                client::submit(&addr, &format!(r#"{{"kind":"sleep","ms":{ms}}}"#)).unwrap()
            });
            std::thread::sleep(std::time::Duration::from_millis(120));
            t
        })
        .collect();

    let submit = |extra: &[&str]| {
        std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["submit", "--addr", &addr, "--job", r#"{"kind":"sleep","ms":5}"#])
            .args(extra)
            .output()
            .expect("run repro submit")
    };

    // No retries: backpressure is a distinct exit code (3).
    let bounced = submit(&[]);
    assert_eq!(bounced.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&bounced.stderr).contains("queue_full"));

    // With retries the client waits out Retry-After and succeeds once
    // the slow jobs drain.
    let retried = submit(&["--retry", "5"]);
    assert!(
        retried.status.success(),
        "{}",
        String::from_utf8_lossy(&retried.stderr)
    );
    let stderr = String::from_utf8_lossy(&retried.stderr);
    assert!(stderr.contains("429"), "{stderr}");
    assert!(stderr.contains("retry 1/5"), "{stderr}");

    for t in slow {
        assert_eq!(t.join().unwrap().status, 200);
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Sandbox failure matrix
// ---------------------------------------------------------------------------

/// A sandboxed config whose children run `repro job-exec`. The `tag`
/// rides along as an ignored argv marker so concurrent tests can tell
/// their children apart in `/proc`.
fn sandbox_cfg(tag: &str) -> Config {
    let mut sb = SandboxConfig::new(vec![
        env!("CARGO_BIN_EXE_repro").to_string(),
        "job-exec".to_string(),
        format!("--tag={tag}"),
    ]);
    sb.retry_backoff_ms = 10;
    Config {
        sandbox: Some(sb),
        ..cfg()
    }
}

fn gauge(st: &Json, name: &str) -> u64 {
    st.get("gauges")
        .and_then(|g| g.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("gauge {name} missing from {st}"))
}

/// Every live process whose cmdline carries the given tag marker.
#[cfg(target_os = "linux")]
fn pids_with_marker(marker: &str) -> Vec<u32> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return out;
    };
    for e in entries.flatten() {
        let Some(pid) = e.file_name().to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(cmd) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        if String::from_utf8_lossy(&cmd).replace('\0', " ").contains(marker) {
            out.push(pid);
        }
    }
    out
}

#[cfg(target_os = "linux")]
fn wait_for_marker(marker: &str) -> u32 {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if let Some(&pid) = pids_with_marker(marker).first() {
            return pid;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no child tagged {marker} appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn sandboxed_crash_is_structured_and_the_server_survives() {
    let (handle, addr) = test_server(sandbox_cfg("crash"));

    // A panicking child: retried once, then reported as a structured
    // 500 with the exit status and a stderr tail.
    let resp = client::submit(&addr, r#"{"kind":"sleep","ms":1,"crash":"panic"}"#).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body_str());
    let doc = Json::parse(&resp.body_str()).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("job_crashed"));
    assert!(
        doc.get("exit_status").and_then(Json::as_str).is_some(),
        "{doc}"
    );
    let tail = doc.get("stderr_tail").and_then(Json::as_str).unwrap();
    assert!(tail.contains("injected panic"), "{tail}");

    // An aborting child dies on SIGABRT — also contained.
    let resp = client::submit(&addr, r#"{"kind":"sleep","ms":1,"crash":"abort"}"#).unwrap();
    assert_eq!(resp.status, 500);
    let doc = Json::parse(&resp.body_str()).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("job_crashed"));
    assert!(
        doc.get("exit_status")
            .and_then(Json::as_str)
            .unwrap()
            .contains("signal"),
        "{doc}"
    );

    // The server is unharmed: a real simulation still runs to 200.
    let ok = client::submit(&addr, EP_BENCH).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body_str());

    let st = stats(&addr);
    assert_eq!(cache_counter(&st, "crashed"), 4, "2 jobs × (run + retry)");
    assert_eq!(cache_counter(&st, "job_retries"), 2);
    assert_eq!(gauge(&st, "poisoned_keys"), 2);
    assert_eq!(
        st.get("gauges").and_then(|g| g.get("sandbox")),
        Some(&Json::Bool(true))
    );
    handle.shutdown();
}

#[test]
fn deadline_overrun_is_killed_and_reported_as_504() {
    let mut c = sandbox_cfg("deadline");
    c.sandbox.as_mut().unwrap().job_timeout_ms = 200;
    let (handle, addr) = test_server(c);

    let resp = client::submit(&addr, r#"{"kind":"sleep","ms":30000}"#).unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body_str());
    let doc = Json::parse(&resp.body_str()).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("job_timeout"));
    assert_eq!(doc.get("deadline_ms").and_then(Json::as_u64), Some(200));

    // Timeouts are not retried and do not poison the key.
    let st = stats(&addr);
    assert_eq!(cache_counter(&st, "timeouts"), 1);
    assert_eq!(cache_counter(&st, "kills"), 1);
    assert_eq!(cache_counter(&st, "job_retries"), 0);
    assert_eq!(gauge(&st, "poisoned_keys"), 0);

    // And the server keeps answering.
    let ok = client::submit(&addr, r#"{"kind":"sleep","ms":1}"#).unwrap();
    assert_eq!(ok.status, 200);
    handle.shutdown();
}

#[test]
fn crash_looping_key_is_poisoned_and_never_cached() {
    let (handle, addr) = test_server(sandbox_cfg("poison"));
    let job = r#"{"kind":"sleep","ms":2,"crash":"panic"}"#;

    // First submission crashes through its retry: 500.
    let first = client::submit(&addr, job).unwrap();
    assert_eq!(first.status, 500, "{}", first.body_str());

    // Every later submission of the same key is refused up front: 422,
    // no execution, no cache entry, no X-Cache header.
    for _ in 0..2 {
        let resp = client::submit(&addr, job).unwrap();
        assert_eq!(resp.status, 422, "{}", resp.body_str());
        let doc = Json::parse(&resp.body_str()).unwrap();
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("job_poisoned"));
        assert_eq!(doc.get("crashes").and_then(Json::as_u64), Some(2));
        assert_eq!(resp.header("x-cache"), None, "a poisoned key is not cache traffic");
    }

    let st = stats(&addr);
    assert_eq!(cache_counter(&st, "poison_rejects"), 2);
    assert_eq!(cache_counter(&st, "hits"), 0, "failures are never cached");
    assert_eq!(cache_counter(&st, "crashed"), 2, "poison gate stops re-execution");
    handle.shutdown();
}

#[test]
fn sandboxed_report_is_byte_identical_to_in_process() {
    let (sb_handle, sb_addr) = test_server(sandbox_cfg("cmp"));
    let (ip_handle, ip_addr) = test_server(cfg());

    let sandboxed = client::submit(&sb_addr, EP_BENCH).unwrap();
    let inproc = client::submit(&ip_addr, EP_BENCH).unwrap();
    assert_eq!(sandboxed.status, 200, "{}", sandboxed.body_str());
    assert_eq!(inproc.status, 200, "{}", inproc.body_str());
    assert_eq!(
        sandboxed.body, inproc.body,
        "process isolation must not change a single byte"
    );
    assert_eq!(sandboxed.header("x-key"), inproc.header("x-key"));
    sb_handle.shutdown();
    ip_handle.shutdown();
}

/// `kill -9` straight at the worker process mid-job: the caller gets a
/// structured crash, nothing is cached (not even partially, on disk),
/// no child survives, and the server keeps serving.
#[cfg(target_os = "linux")]
#[test]
fn sigkilled_job_leaves_no_orphan_and_no_partial_disk_entry() {
    let dir = std::env::temp_dir().join(format!("apserve-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut c = sandbox_cfg("kill9");
    c.sandbox.as_mut().unwrap().retries = 0; // the kill is the whole story
    c.cache_dir = Some(PathBuf::from(&dir));
    let (handle, addr) = test_server(c);

    let t = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            client::submit(&addr, r#"{"kind":"sleep","ms":30000}"#).unwrap()
        })
    };
    let pid = wait_for_marker("--tag=kill9");
    let killed = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success());

    let resp = t.join().unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body_str());
    let doc = Json::parse(&resp.body_str()).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("job_crashed"));
    assert!(
        doc.get("exit_status")
            .and_then(Json::as_str)
            .unwrap()
            .contains("signal 9"),
        "{doc}"
    );

    // The child was reaped — no orphan, no zombie with our tag.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !pids_with_marker("--tag=kill9").is_empty() {
        assert!(std::time::Instant::now() < deadline, "orphaned job-exec child");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // No partial disk-cache entry: the directory holds nothing at all
    // (results are written atomically, and only for successes).
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "partial disk entries: {leftovers:?}");

    // The server shrugs it off.
    let ok = client::submit(&addr, r#"{"kind":"sleep","ms":1}"#).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body_str());
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain: shutdown fails the in-flight sandboxed job as
/// `job_canceled`, kills its child within the drain deadline, and
/// leaves no process behind.
#[cfg(target_os = "linux")]
#[test]
fn shutdown_drains_and_kills_in_flight_children() {
    let mut c = sandbox_cfg("drain");
    c.drain_ms = 100;
    let (handle, addr) = test_server(c);

    let t = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            client::submit(&addr, r#"{"kind":"sleep","ms":30000}"#).unwrap()
        })
    };
    wait_for_marker("--tag=drain");
    handle.shutdown();

    let resp = t.join().unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    let doc = Json::parse(&resp.body_str()).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("job_canceled"));
    assert!(
        pids_with_marker("--tag=drain").is_empty(),
        "drain left a job-exec child running"
    );
}

//! Negative CLI tests: malformed flags must produce structured usage
//! errors that name the offending flag and exit with the usage status
//! (2) — never a panic, and never a silent fallback to a default.
//!
//! Every case here exits during argument validation, before any
//! simulation work, so the whole suite runs in milliseconds.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro")
}

fn tracecat(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tracecat"))
        .args(args)
        .output()
        .expect("run tracecat")
}

/// Asserts: exit code 2, stderr names `flag`, and no panic backtrace.
fn assert_usage_error(out: std::process::Output, flag: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected usage exit for {flag}; stderr: {stderr}"
    );
    assert!(stderr.contains(flag), "stderr must name {flag}: {stderr}");
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}

#[test]
fn bad_scale_is_a_named_error_not_a_panic() {
    assert_usage_error(repro(&["table2", "--scale", "huge"]), "--scale");
    assert_usage_error(
        repro(&["sweep", "--bench-out", "/tmp/x.json", "--scale", "gigantic"]),
        "--scale",
    );
    // Dangling `--scale` (no value) is also an error, not a default.
    assert_usage_error(repro(&["table2", "--scale"]), "--scale");
}

#[test]
fn bad_numeric_flags_name_the_flag() {
    assert_usage_error(repro(&["fig7", "--bytes", "many"]), "--bytes");
    assert_usage_error(repro(&["fig7", "--bytes", "0"]), "--bytes");
    assert_usage_error(
        repro(&["compare", "a.json", "b.json", "--threshold", "ten"]),
        "--threshold",
    );
    assert_usage_error(repro(&["replay", "t.evtrace", "--at", "noon"]), "--at");
    assert_usage_error(
        repro(&["sweep", "--bench-out", "/tmp/x.json", "--threads", "lots"]),
        "--threads",
    );
    assert_usage_error(
        repro(&["sweep", "--bench-out", "/tmp/x.json", "--sizes", "4,big"]),
        "--sizes",
    );
    assert_usage_error(
        repro(&[
            "sweep",
            "--bench-out",
            "/tmp/x.json",
            "--factors",
            "0.5,fast",
        ]),
        "--factors",
    );
    assert_usage_error(repro(&["fault", "--fault-seed", "lucky"]), "--fault-seed");
    assert_usage_error(repro(&["table2", "--sim-threads", "0"]), "--sim-threads");
    assert_usage_error(
        repro(&["table2", "--metrics-interval", "soon"]),
        "--metrics-interval",
    );
}

#[test]
fn serve_and_submit_validate_their_flags() {
    assert_usage_error(repro(&["serve", "--workers", "0"]), "--workers");
    assert_usage_error(repro(&["serve", "--queue-cap", "none"]), "--queue-cap");
    assert_usage_error(
        repro(&["serve", "--cache-entries", "-3"]),
        "--cache-entries",
    );
    // submit without --addr is a usage error.
    assert_usage_error(repro(&["submit", "--job", "{}"]), "--addr");
    // submit with neither --job nor --job-file (and no query flag).
    let out = repro(&["submit", "--addr", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--job"));
}

#[test]
fn sandbox_flags_validate_their_preconditions() {
    // The per-job knobs only mean something in sandbox mode.
    for flag in ["--job-timeout", "--job-mem-mb", "--job-retries"] {
        let out = repro(&["serve", flag, "1"]);
        assert_eq!(out.status.code(), Some(2), "{flag} without --sandbox");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--sandbox"), "{flag}: {stderr}");
    }
    // And their values must parse as positive numbers.
    assert_usage_error(
        repro(&["serve", "--sandbox", "--job-timeout", "0"]),
        "--job-timeout",
    );
    assert_usage_error(
        repro(&["serve", "--sandbox", "--job-mem-mb", "lots"]),
        "--job-mem-mb",
    );
    assert_usage_error(
        repro(&["serve", "--sandbox", "--job-retries", "-1"]),
        "--job-retries",
    );
    // A disk byte budget needs a disk tier to govern.
    assert_usage_error(
        repro(&["serve", "--disk-cache-bytes", "1000000"]),
        "--cache-dir",
    );
    assert_usage_error(
        repro(&["serve", "--cache-dir", "/tmp/x", "--disk-cache-bytes", "0"]),
        "--disk-cache-bytes",
    );
    // Client-side retry count must be a number.
    assert_usage_error(
        repro(&["submit", "--addr", "127.0.0.1:1", "--job", "{}", "--retry", "soon"]),
        "--retry",
    );
}

#[test]
fn tracecat_validates_before_reading_the_trace() {
    // The flag error must surface even though the trace file does not
    // exist — validation happens before the (possibly expensive) read.
    assert_usage_error(
        tracecat(&["stats", "no-such-file.evtrace", "--min-ratio", "high"]),
        "--min-ratio",
    );
    assert_usage_error(
        tracecat(&["stats", "no-such-file.evtrace", "--min-ratio", "NaN"]),
        "--min-ratio",
    );
    // Unknown subcommands are usage errors before the read, too.
    let out = tracecat(&["frobnicate", "no-such-file.evtrace"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_trace_file_is_a_clean_failure() {
    let out = tracecat(&["stats", "no-such-file.evtrace"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-file.evtrace"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

//! Component micro-benchmarks: host-side cost of the simulator's hot
//! paths, plus simulated-latency checks of the §4.1 hardware claims
//! (PUT issue ≈ a few stores, stride vs element-wise transfer, queue
//! spill behaviour).

use apcore::{run_with, MachineConfig, StrideSpec, VAddr};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("apsim/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = apsim::EventQueue::new();
            for i in 0..1000u64 {
                q.push(aputil::SimTime::from_nanos(i * 37 % 500), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_torus(c: &mut Criterion) {
    let t = apnet::Torus::new(32, 32);
    c.bench_function("apnet/torus_route_32x32", |b| {
        b.iter(|| {
            let mut h = 0u32;
            for s in 0..64u32 {
                h += t.hops(aputil::CellId::new(s), aputil::CellId::new(1023 - s));
            }
            black_box(h)
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    let mut mmu = apmem::Mmu::new(64 << 20);
    let base = mmu.map_anywhere(1 << 20).unwrap();
    c.bench_function("apmem/tlb_translate_hit", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for off in (0..4096u64).step_by(64) {
                acc += mmu.translate(base + off).unwrap().paddr.as_u64();
            }
            black_box(acc)
        })
    });
}

fn bench_stride_gather(c: &mut Criterion) {
    let mut mmu = apmem::Mmu::new(64 << 20);
    let mut mem = apmem::Memory::new(64 << 20);
    let base = mmu.map_anywhere(2 << 20).unwrap();
    apmsc::dma::write_virtual(&mut mmu, &mut mem, base, &vec![7u8; 2 << 20]).unwrap();
    let spec = apmsc::StrideSpec::new(8, 512, 2056);
    c.bench_function("apmsc/stride_gather_512x8B", |b| {
        b.iter(|| black_box(apmsc::stride::gather(&mut mmu, &mem, base, spec).unwrap()))
    });
}

fn bench_hwqueue_spill(c: &mut Criterion) {
    c.bench_function("apmsc/hwqueue_spill_100", |b| {
        b.iter(|| {
            let mut q: apmsc::HwQueue<u64> = apmsc::HwQueue::new("bench", 8);
            for i in 0..100 {
                q.push(i);
            }
            let mut acc = 0;
            while let Some(v) = q.pop() {
                acc += v;
            }
            black_box(acc)
        })
    });
}

fn bench_emulator_put_roundtrip(c: &mut Criterion) {
    // Host cost of a full simulated PUT + flag wait between two cells.
    c.bench_function("apcore/put_roundtrip_host_cost", |b| {
        b.iter(|| {
            run_with(MachineConfig::new(2).with_trace(false), |cell| {
                let buf = cell.alloc::<f64>(8);
                let flag = cell.alloc_flag();
                cell.barrier();
                if cell.id() == 0 {
                    cell.put(1, buf, buf, 64, VAddr::NULL, flag, false);
                } else {
                    cell.wait_flag(flag, 1);
                }
                cell.barrier();
            })
            .unwrap()
        })
    });
}

fn bench_reduction(c: &mut Criterion) {
    c.bench_function("apcore/scalar_reduction_16cells", |b| {
        b.iter(|| {
            run_with(MachineConfig::new(16).with_trace(false), |cell| {
                cell.reduce_sum_f64(cell.id() as f64)
            })
            .unwrap()
        })
    });
}

/// Ablation: simulated latency of a strided column transfer vs the same
/// bytes element by element (the §5.4 claim in a benchmark).
fn bench_stride_ablation(c: &mut Criterion) {
    let run = |stride: bool| {
        let r = run_with(MachineConfig::new(2).with_trace(false), move |cell| {
            let src = cell.alloc::<f64>(256 * 2);
            let dst = cell.alloc::<f64>(256);
            let flag = cell.alloc_flag();
            cell.barrier();
            if cell.id() == 0 {
                if stride {
                    let send = StrideSpec::new(8, 256, 16);
                    let recv = StrideSpec::contiguous(2048);
                    cell.put_stride(1, dst, src, send, recv, VAddr::NULL, flag, false);
                } else {
                    for i in 0..256u64 {
                        cell.put(1, dst + i * 8, src + i * 16, 8, VAddr::NULL, flag, false);
                    }
                }
            } else {
                cell.wait_flag(flag, if stride { 1 } else { 256 });
            }
            cell.barrier();
        })
        .unwrap();
        r.total_time
    };
    let t_stride = run(true);
    let t_elem = run(false);
    assert!(t_elem > t_stride, "stride hardware must win");
    eprintln!(
        "simulated 256-item column: stride {} vs element-wise {} ({:.1}x)",
        t_stride,
        t_elem,
        t_elem.as_nanos() as f64 / t_stride.as_nanos() as f64
    );
    c.bench_function("ablation/stride_column_host_cost", |b| {
        b.iter(|| black_box(run(true)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_torus,
    bench_tlb,
    bench_stride_gather,
    bench_hwqueue_spill,
    bench_emulator_put_roundtrip,
    bench_reduction,
    bench_stride_ablation,
);
criterion_main!(benches);

//! End-to-end workload benchmarks: host cost of emulating each test-scale
//! application, and of replaying its trace through MLSim — the two halves
//! of the reproduction pipeline.

use apapps::{standard_suite, Scale};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlsim::{replay, ModelParams};

fn bench_emulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulate");
    g.sample_size(10);
    for w in standard_suite(Scale::Test) {
        g.bench_function(w.name(), |b| b.iter(|| black_box(w.run().unwrap())));
    }
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlsim_replay");
    let traces: Vec<(String, aptrace::Trace)> = standard_suite(Scale::Test)
        .iter()
        .map(|w| (w.name().to_string(), w.run().unwrap().trace))
        .collect();
    for (name, trace) in &traces {
        g.bench_function(name, |b| {
            b.iter(|| {
                for m in [
                    ModelParams::ap1000(),
                    ModelParams::ap1000_star(),
                    ModelParams::ap1000_plus(),
                ] {
                    black_box(replay(trace, &m).unwrap());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_emulation, bench_replay);
criterion_main!(benches);

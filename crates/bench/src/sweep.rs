//! `apsweep` — the parallel parameter-sweep driver behind `repro sweep`.
//!
//! Evaluating the paper's design space means more than the eight Table-2
//! points: Figure 6's models are parameterized by a `computation_factor`,
//! and every application runs at multiple machine sizes. This module fans
//! an app × machine-size × computation-factor grid across host worker
//! threads — each grid point is a fully independent simulation — and
//! merges the results **deterministically in grid order**, so the merged
//! report is byte-identical no matter how many threads ran it or in what
//! order they finished. The output is the same `ap1000plus.bench` v1
//! document `repro bench` emits, so `repro compare` gates sweeps too.

use crate::ExperimentRow;
use apapps::{Scale, Workload};
use aptrace::AppStats;
use mlsim::{replay, ModelParams};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// CLI names of the sweepable applications, in Table-2 order. `TCst` and
/// `TCnost` are the space-free spellings of "TC st" / "TC no st".
pub const SWEEP_APPS: &[&str] = &["EP", "CG", "FT", "SP", "TCst", "TCnost", "MatMul", "SCG"];

/// One grid point: an application at a machine size under a scaled
/// computation factor.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Application name (one of [`SWEEP_APPS`]).
    pub app: String,
    /// PE-count override (`None` = the scale's default size).
    pub pe: Option<u32>,
    /// Multiplier applied to each model's `computation_factor`.
    pub factor: f64,
}

impl SweepPoint {
    /// The point's row label, e.g. `"CG pe16 cf0.50"` (`pedef` when the
    /// scale default size is used — the resolved size still lands in the
    /// row's `pe` field).
    pub fn label(&self) -> String {
        let pe = match self.pe {
            Some(p) => format!("pe{p}"),
            None => "pedef".to_string(),
        };
        format!("{} {pe} cf{:.2}", self.app, self.factor)
    }
}

/// What to sweep and how wide to fan out.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Problem-size preset each workload is built at.
    pub scale: Scale,
    /// Applications to sweep (subset of [`SWEEP_APPS`]).
    pub apps: Vec<String>,
    /// Machine sizes; `None` keeps the scale's default PE count.
    pub sizes: Vec<Option<u32>>,
    /// `computation_factor` multipliers.
    pub factors: Vec<f64>,
    /// Host worker threads (clamped to `[1, grid size]`).
    pub threads: usize,
}

impl SweepConfig {
    /// The grid in its canonical order: apps outermost, then sizes, then
    /// factors. Merged output follows this order exactly.
    pub fn grid(&self) -> Vec<SweepPoint> {
        let mut g = Vec::new();
        for app in &self.apps {
            for &pe in &self.sizes {
                for &factor in &self.factors {
                    g.push(SweepPoint {
                        app: app.clone(),
                        pe,
                        factor,
                    });
                }
            }
        }
        g
    }
}

/// A finished sweep: rows in grid order, plus the grid points that
/// panicked (label + panic message), also in grid order.
pub struct SweepOutcome {
    /// One row per successful grid point, in [`SweepConfig::grid`] order.
    pub rows: Vec<ExperimentRow>,
    /// `"<label>: <panic message>"` per failed grid point.
    pub failures: Vec<String>,
}

/// Builds the named workload at `scale`, overriding its PE count when
/// `pe` is given. Errors on unknown names.
pub fn build_workload(
    name: &str,
    scale: Scale,
    pe: Option<u32>,
) -> Result<Box<dyn Workload>, String> {
    // Each arm sets the override on the concrete struct; the trait object
    // exposes no mutable size.
    macro_rules! built {
        ($w:expr) => {{
            let mut w = $w;
            if let Some(p) = pe {
                w.pe = p;
            }
            Box::new(w) as Box<dyn Workload>
        }};
    }
    Ok(match name {
        "EP" => built!(apapps::ep::Ep::new(scale)),
        "CG" => built!(apapps::cg::Cg::new(scale)),
        "FT" => built!(apapps::ft::Ft::new(scale)),
        "SP" => built!(apapps::sp::Sp::new(scale)),
        "TCst" | "TC st" => built!(apapps::tomcatv::Tomcatv::new(scale, true)),
        "TCnost" | "TC no st" => built!(apapps::tomcatv::Tomcatv::new(scale, false)),
        "MatMul" => built!(apapps::matmul::MatMul::new(scale)),
        "SCG" => built!(apapps::scg::Scg::new(scale)),
        other => {
            return Err(format!(
                "unknown sweep app '{other}' (expected one of {SWEEP_APPS:?})"
            ))
        }
    })
}

/// Runs one grid point: emulate once, then replay the trace under the
/// three models with each `computation_factor` scaled by the point's
/// multiplier. Panics on failure (the sweep driver catches and reports).
fn run_point(scale: Scale, p: &SweepPoint) -> ExperimentRow {
    let label = p.label();
    let w = build_workload(&p.app, scale, p.pe).unwrap_or_else(|e| panic!("{e}"));
    let report = w
        .run()
        .unwrap_or_else(|e| panic!("{label} failed on the emulator: {e}"));
    let stats = AppStats::from_trace(&report.trace).to_row();
    let run = |mut m: ModelParams| {
        m.computation_factor *= p.factor;
        replay(&report.trace, &m)
            .unwrap_or_else(|e| panic!("{label} failed replay under {}: {e}", m.name))
    };
    let ap1000 = run(ModelParams::ap1000());
    let star = run(ModelParams::ap1000_star());
    let plus = run(ModelParams::ap1000_plus());
    let mut timeline = report.timeline;
    timeline.source = label.clone();
    ExperimentRow {
        name: label,
        pe: w.pe(),
        stats,
        ap1000,
        star,
        plus,
        emulator_total: report.total_time,
        counters: report.counters,
        timeline,
        critpath: None,
        divergence: None,
        host_ms: None,
        metrics: report.metrics,
    }
}

/// Fans the grid across `cfg.threads` workers and merges the results in
/// grid order. Simulated numbers are independent of the thread count;
/// `run_sweep` with 1 thread and with N threads serialize to the same
/// bytes.
pub fn run_sweep(cfg: &SweepConfig) -> SweepOutcome {
    let grid = cfg.grid();
    let workers = cfg.threads.clamp(1, grid.len().max(1));
    let next = AtomicUsize::new(0);
    let scale = cfg.scale;
    let mut collected: Vec<(usize, Result<ExperimentRow, String>)> = std::thread::scope(|s| {
        let grid = &grid;
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(p) = grid.get(i) else { break };
                        let r =
                            catch_unwind(AssertUnwindSafe(|| run_point(scale, p))).map_err(|e| {
                                let msg = e
                                    .downcast_ref::<String>()
                                    .map(String::as_str)
                                    .or_else(|| e.downcast_ref::<&str>().copied())
                                    .unwrap_or("panic (non-string payload)");
                                format!("{}: {msg}", p.label())
                            });
                        out.push((i, r));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    collected.sort_by_key(|&(i, _)| i);
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (_, r) in collected {
        match r {
            Ok(row) => rows.push(row),
            Err(f) => failures.push(f),
        }
    }
    SweepOutcome { rows, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_report;

    fn small_cfg(threads: usize) -> SweepConfig {
        SweepConfig {
            scale: Scale::Test,
            apps: vec!["EP".into(), "MatMul".into()],
            sizes: vec![None, Some(4)],
            factors: vec![0.5, 1.0],
            threads,
        }
    }

    #[test]
    fn grid_is_in_canonical_nested_order() {
        let cfg = small_cfg(1);
        let labels: Vec<String> = cfg.grid().iter().map(SweepPoint::label).collect();
        assert_eq!(
            labels,
            [
                "EP pedef cf0.50",
                "EP pedef cf1.00",
                "EP pe4 cf0.50",
                "EP pe4 cf1.00",
                "MatMul pedef cf0.50",
                "MatMul pedef cf1.00",
                "MatMul pe4 cf0.50",
                "MatMul pe4 cf1.00",
            ]
        );
    }

    #[test]
    fn sweep_output_is_byte_identical_across_thread_counts() {
        let serial = run_sweep(&small_cfg(1));
        let parallel = run_sweep(&small_cfg(4));
        assert!(serial.failures.is_empty(), "{:?}", serial.failures);
        assert!(parallel.failures.is_empty(), "{:?}", parallel.failures);
        let a = bench_report(&serial.rows, Scale::Test, Some("sweep")).to_string();
        let b = bench_report(&parallel.rows, Scale::Test, Some("sweep")).to_string();
        assert_eq!(a, b, "sweep report must not depend on the thread count");
    }

    #[test]
    fn factor_scales_model_times() {
        let cfg = SweepConfig {
            scale: Scale::Test,
            apps: vec!["EP".into()],
            sizes: vec![None],
            factors: vec![0.5, 1.0],
            threads: 2,
        };
        let out = run_sweep(&cfg);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.rows.len(), 2);
        // EP is pure computation: halving the computation factor halves
        // the replayed total (emulator time is untouched by the factor).
        let half = out.rows[0].plus.total.as_nanos() as f64;
        let full = out.rows[1].plus.total.as_nanos() as f64;
        assert!(
            (half * 2.0 - full).abs() / full < 0.01,
            "cf0.5 {half} vs cf1.0 {full}"
        );
        assert_eq!(
            out.rows[0].emulator_total, out.rows[1].emulator_total,
            "the factor is a model parameter, not an emulator one"
        );
    }

    #[test]
    fn unknown_app_is_a_reported_failure_not_a_crash() {
        let cfg = SweepConfig {
            scale: Scale::Test,
            apps: vec!["NoSuchApp".into()],
            sizes: vec![None],
            factors: vec![1.0],
            threads: 1,
        };
        let out = run_sweep(&cfg);
        assert!(out.rows.is_empty());
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("NoSuchApp"), "{:?}", out.failures);
    }
}

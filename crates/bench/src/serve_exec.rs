//! The apserve [`Executor`] backed by the real simulators — the bridge
//! `repro serve` injects so the service crate stays simulator-agnostic
//! (and dependency-cycle-free: `apserve` never depends on this crate).
//!
//! Every job kind maps onto an existing deterministic driver, and every
//! produced report is one the CLI already emits:
//!
//! - `bench` / `sweep` → [`run_sweep`] → the `ap1000plus.bench` document;
//! - `fault` → [`run_fault_sweep`] → the text fault report, wrapped in a
//!   one-line `ap1000plus.faultreport` JSON envelope (NDJSON-streamable);
//! - `remodel` → [`remodel_rows`] over a recorded `.evtrace` → the
//!   `ap1000plus.bench` document.
//!
//! Caching correctness rides on what these drivers already guarantee:
//! results merge in deterministic grid order whatever the host thread
//! count, and reports carry no wall-clock — so the bytes are a pure
//! function of the canonical request.

use std::sync::Arc;

use apserve::{CanonRequest, Executor, Kind};
use aputil::Json;

use crate::{
    bench_report, fault_sweep_text, record, run_fault_sweep, run_sweep, FaultSweepConfig,
    SweepConfig,
};

fn str_list(req: &CanonRequest, field: &str) -> Vec<String> {
    req.field(field)
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

fn scale_of(req: &CanonRequest) -> Result<apapps::Scale, String> {
    let label = req
        .field("scale")
        .and_then(Json::as_str)
        .ok_or("canonical request lost its scale")?;
    record::parse_scale_label(label)
}

fn factors_of(req: &CanonRequest) -> Vec<f64> {
    req.field("factors")
        .and_then(Json::as_arr)
        .map(|items| items.iter().filter_map(Json::as_f64).collect())
        .unwrap_or_else(|| vec![1.0])
}

fn rev_of(req: &CanonRequest) -> Option<String> {
    req.field("rev").and_then(Json::as_str).map(str::to_string)
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn run_bench_like(req: &CanonRequest) -> Result<String, String> {
    let sizes: Vec<Option<u32>> = req
        .field("sizes")
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .map(|s| s.as_u64().map(|pe| pe as u32)) // "default" -> None
                .collect()
        })
        .unwrap_or_else(|| vec![None]);
    let cfg = SweepConfig {
        scale: scale_of(req)?,
        apps: str_list(req, "apps"),
        sizes,
        factors: factors_of(req),
        threads: threads(),
    };
    let out = run_sweep(&cfg);
    if !out.failures.is_empty() {
        return Err(format!(
            "{} grid point(s) failed: {}",
            out.failures.len(),
            out.failures.join("; ")
        ));
    }
    Ok(bench_report(&out.rows, cfg.scale, rev_of(req).as_deref()).to_string())
}

fn run_fault(req: &CanonRequest) -> Result<String, String> {
    let scale = scale_of(req)?;
    let apps = str_list(req, "apps");
    let seed = req
        .field("fault_seed")
        .and_then(Json::as_u64)
        .ok_or("canonical request lost its fault_seed")?;
    // Same seed-derivation rule as `repro fault --fault-seed`: draw cell
    // ids for the largest selected machine; survivable schedules only.
    let max_pe = apps
        .iter()
        .filter_map(|a| crate::sweep::build_workload(a, scale, None).ok())
        .map(|w| w.pe())
        .max()
        .ok_or_else(|| format!("no runnable app among {apps:?}"))?;
    let cfg = FaultSweepConfig {
        scale,
        apps,
        spec: apcore::FaultSpec::random(seed, max_pe, true),
        threads: threads(),
    };
    let out = run_fault_sweep(&cfg);
    if !out.failures.is_empty() {
        return Err(format!(
            "{} app(s) failed under faults: {}",
            out.failures.len(),
            out.failures.join("; ")
        ));
    }
    // The fault report is multi-line text; the envelope makes it one
    // JSON line, so it caches and streams like every other report.
    Ok(Json::obj([
        ("schema", Json::from("ap1000plus.faultreport")),
        ("version", Json::from(1u64)),
        ("report", Json::from(fault_sweep_text(&cfg, &out))),
    ])
    .to_string())
}

fn run_remodel(req: &CanonRequest) -> Result<String, String> {
    let path = req
        .field("trace")
        .and_then(Json::as_str)
        .ok_or("canonical request lost its trace path")?;
    let doc = aptrace::EvTrace::read_file(std::path::Path::new(path))
        .map_err(|e| format!("{path}: {e}"))?;
    let rows = record::remodel_rows(&doc, &factors_of(req)).map_err(|e| format!("{path}: {e}"))?;
    let scale = record::parse_scale_label(&doc.header.scale)?;
    Ok(bench_report(&rows, scale, rev_of(req).as_deref()).to_string())
}

/// Builds the executor `repro serve` hands to [`apserve::serve`].
pub fn simulator_executor() -> Executor {
    Arc::new(|req: &CanonRequest| match req.kind {
        Kind::Bench | Kind::Sweep => run_bench_like(req),
        Kind::Fault => run_fault(req),
        Kind::Remodel => run_remodel(req),
        // The service intercepts sleep jobs before the executor.
        Kind::Sleep => Err("sleep jobs never reach the simulator executor".to_string()),
    })
}

/// The hidden `repro job-exec` worker mode: reads one canonical request
/// document from stdin, executes it, writes the versioned result
/// envelope on stdout, and exits 0 — for both success and *clean*
/// failure (the envelope says which). Any other death — panic, abort,
/// rlimit, SIGKILL — reaches the supervisor as a nonzero/signal exit
/// and becomes a structured `job_crashed`.
///
/// Sleep jobs are executed here without a policy check: the server
/// enforces `--allow-sleep` *before* spawning the child, so by the time
/// a sleep request reaches this process it has been approved. The
/// `crash` field is honoured literally (`panic!` / `abort`) — that is
/// the test matrix's way of making a worker die on demand.
pub fn job_exec_main() -> ! {
    let mut input = String::new();
    if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin(), &mut input) {
        eprintln!("job-exec: cannot read request from stdin: {e}");
        std::process::exit(1);
    }
    let result = match apserve::parse_request(input.trim_end().as_bytes()) {
        Err(e) => Err(format!("job-exec: invalid canonical request: {e}")),
        Ok(req) if req.kind == Kind::Sleep => run_sleep(&req),
        Ok(req) => (simulator_executor())(&req),
    };
    println!("{}", apserve::result_envelope(&result));
    std::process::exit(0);
}

fn run_sleep(req: &CanonRequest) -> Result<String, String> {
    let ms = req.field("ms").and_then(Json::as_u64).unwrap_or(0);
    std::thread::sleep(std::time::Duration::from_millis(ms));
    match req.field("crash").and_then(Json::as_str) {
        Some("panic") => panic!("injected panic (crash=\"panic\")"),
        Some("abort") => std::process::abort(),
        _ => {}
    }
    Ok(apserve::sleep_report(ms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apserve::parse_request;

    #[test]
    fn bench_request_produces_a_versioned_report() {
        let req = parse_request(br#"{"kind":"bench","apps":["EP"],"scale":"test"}"#).unwrap();
        let exec = simulator_executor();
        let body = exec(&req).unwrap();
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(crate::BENCH_SCHEMA)
        );
        // Byte-reproducible: the same canonical request yields the same
        // bytes on a second, completely independent execution.
        assert_eq!(exec(&req).unwrap(), body);
    }

    #[test]
    fn unknown_app_is_an_error_not_a_panic() {
        let req =
            parse_request(br#"{"kind":"bench","apps":["NoSuchApp"],"scale":"test"}"#).unwrap();
        let e = (simulator_executor())(&req).unwrap_err();
        assert!(e.contains("NoSuchApp"), "{e}");
    }

    #[test]
    fn fault_request_produces_the_envelope() {
        let req = parse_request(br#"{"kind":"fault","scale":"test","fault_seed":1}"#).unwrap();
        let body = (simulator_executor())(&req).unwrap();
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ap1000plus.faultreport")
        );
        let text = doc.get("report").and_then(Json::as_str).unwrap();
        assert!(text.starts_with("ap1000plus fault sweep v1"));
    }
}

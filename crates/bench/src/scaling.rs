//! PDES scaling measurement and the versioned `ap1000plus.scaling` artifact.
//!
//! The windowed engine (DESIGN.md §10) parallelizes a *single* simulation
//! run across `--sim-threads` host threads without moving a simulated
//! nanosecond. This module measures what that buys in host wall-clock:
//! it records the same workload once per (machine size × sim-thread
//! count) grid point, byte-compares every recording against the grid
//! row's first (serial) recording, and serializes the resulting curve
//! under a versioned schema.
//!
//! Unlike the `ap1000plus.bench` report — which strips host wall-clock so
//! baselines diff byte-for-byte — the scaling artifact exists *only* to
//! carry host wall-clock, so it also records `host_threads` (the
//! machine's available parallelism): a speedup curve is meaningless
//! without knowing how many cores the host could actually run. CI treats
//! the checked-in `results/SCALING_baseline.json` as documentation of a
//! measured curve, never as a byte-compared gate.

use crate::record::record_app;
use crate::sweep::build_workload;
use apapps::Scale;
use aputil::{ApError, Json};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Schema identifier stamped into every scaling artifact.
pub const SCALING_SCHEMA: &str = "ap1000plus.scaling";
/// Current schema version. Bump on breaking layout changes.
pub const SCALING_SCHEMA_VERSION: u64 = 1;

/// One scaling run: a workload recorded once per machine size per
/// sim-thread count. The first entry of `sim_threads` is the baseline
/// the other entries are byte-compared and speedup-normalized against
/// (conventionally 1, the serial engine).
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// Workload name (`CG`, `FT`, ... — anything `build_workload` takes).
    pub app: String,
    /// Problem scale.
    pub scale: Scale,
    /// Machine sizes to sweep; `None` is the workload's default size.
    pub sizes: Vec<Option<u32>>,
    /// Sim-thread counts to sweep, baseline first.
    pub sim_threads: Vec<u32>,
    /// Recordings per grid point; the reported wall-clock is the best of
    /// these (min, the standard noise filter for timing runs).
    pub repeats: u32,
}

/// One measured grid point of the scaling curve.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Cells in the simulated machine.
    pub cells: u32,
    /// Sim-thread count the run was recorded under.
    pub sim_threads: u32,
    /// Best-of-`repeats` host wall-clock for the recording.
    pub wall: Duration,
    /// Events the recording encodes.
    pub events: u64,
    /// Final simulated time in nanoseconds.
    pub total_ns: u64,
    /// Baseline wall / this wall for the same machine size.
    pub speedup: f64,
    /// Whether the trace bytes equal the baseline recording's — the
    /// engine's byte-identity contract, re-checked on every point.
    pub identical: bool,
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "apbench-scaling-{}-{tag}.evtrace",
        std::process::id()
    ))
}

/// Records the whole grid. Mutates the process-global sim-thread default
/// per point and restores the caller's default before returning — do not
/// run machines concurrently with this on other threads of the process.
pub fn run_scaling(cfg: &ScalingConfig) -> Result<Vec<ScalingPoint>, ApError> {
    let prior = apcore::sim_threads_default();
    let result = run_grid(cfg);
    apcore::set_sim_threads_default(prior);
    result
}

fn run_grid(cfg: &ScalingConfig) -> Result<Vec<ScalingPoint>, ApError> {
    if cfg.sim_threads.is_empty() {
        return Err(ApError::InvalidArg(
            "scaling needs at least one sim-thread count".into(),
        ));
    }
    let mut points = Vec::new();
    for &size in &cfg.sizes {
        let cells = build_workload(&cfg.app, cfg.scale, size)
            .map_err(ApError::InvalidArg)?
            .pe();
        // (bytes, wall) of this machine size's first recording.
        let mut baseline: Option<(Vec<u8>, Duration)> = None;
        for &threads in &cfg.sim_threads {
            apcore::set_sim_threads_default(threads);
            let path = scratch(&format!("{cells}c-t{threads}"));
            let mut best = Duration::MAX;
            let mut rec = None;
            for _ in 0..cfg.repeats.max(1) {
                let t0 = Instant::now();
                let r = record_app(&cfg.app, cfg.scale, size, None, &path, false)?;
                best = best.min(t0.elapsed());
                rec = Some(r);
            }
            let rec = rec.expect("repeats.max(1) recorded at least once");
            let bytes =
                std::fs::read(&path).map_err(|e| ApError::io(path.display().to_string(), e))?;
            let _ = std::fs::remove_file(&path);
            let (identical, speedup) = match &baseline {
                None => {
                    baseline = Some((bytes, best));
                    (true, 1.0)
                }
                Some((want, serial_wall)) => (
                    bytes == *want,
                    serial_wall.as_secs_f64() / best.as_secs_f64().max(f64::EPSILON),
                ),
            };
            points.push(ScalingPoint {
                cells,
                sim_threads: threads,
                wall: best,
                events: rec.events,
                total_ns: rec.total.as_nanos(),
                speedup,
                identical,
            });
        }
    }
    Ok(points)
}

/// Builds the versioned scaling artifact for a measured grid.
pub fn scaling_report(cfg: &ScalingConfig, points: &[ScalingPoint], rev: Option<&str>) -> Json {
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut members = vec![
        ("schema", Json::from(SCALING_SCHEMA)),
        ("version", Json::from(SCALING_SCHEMA_VERSION)),
        ("app", Json::from(cfg.app.as_str())),
        (
            "scale",
            Json::from(format!("{:?}", cfg.scale).to_ascii_lowercase()),
        ),
        ("host_threads", Json::from(host_threads)),
        ("repeats", Json::from(cfg.repeats.max(1))),
    ];
    if let Some(rev) = rev {
        members.push(("rev", Json::from(rev)));
    }
    members.push((
        "points",
        Json::Arr(
            points
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("cells", Json::from(p.cells)),
                        ("sim_threads", Json::from(p.sim_threads)),
                        ("wall_ms", Json::from(p.wall.as_secs_f64() * 1e3)),
                        ("events", Json::from(p.events)),
                        ("sim_total_ns", Json::from(p.total_ns)),
                        ("speedup", Json::from(p.speedup)),
                        ("identical", Json::from(p.identical)),
                    ])
                })
                .collect(),
        ),
    ));
    Json::obj(members)
}

/// Renders the measured curve as a plain-text table.
pub fn scaling_text(points: &[ScalingPoint]) -> String {
    let mut out =
        String::from("  cells  sim-threads    wall [s]  speedup    events/s  identical\n");
    for p in points {
        let secs = p.wall.as_secs_f64();
        out.push_str(&format!(
            "{:>7}  {:>11}  {:>10.3}  {:>7.2}  {:>10.0}  {}\n",
            p.cells,
            p.sim_threads,
            secs,
            p.speedup,
            p.events as f64 / secs.max(f64::EPSILON),
            if p.identical { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_measures_and_byte_checks_every_point() {
        let cfg = ScalingConfig {
            app: "CG".into(),
            scale: Scale::Test,
            sizes: vec![None],
            sim_threads: vec![1, 2],
            repeats: 1,
        };
        let prior = apcore::sim_threads_default();
        let points = run_scaling(&cfg).expect("scaling run");
        assert_eq!(apcore::sim_threads_default(), prior, "default restored");
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.identical), "byte-identity holds");
        assert_eq!(points[0].total_ns, points[1].total_ns);
        assert_eq!(points[0].events, points[1].events);
        assert_eq!(points[0].speedup, 1.0);
        assert!(points[1].speedup > 0.0);

        let doc = scaling_report(&cfg, &points, Some("test-rev"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SCALING_SCHEMA)
        );
        assert_eq!(
            doc.get("version").and_then(Json::as_u64),
            Some(SCALING_SCHEMA_VERSION)
        );
        assert_eq!(doc.get("rev").and_then(Json::as_str), Some("test-rev"));
        let pts = doc.get("points").and_then(Json::as_arr).expect("points");
        assert_eq!(pts.len(), 2);
        let p0 = &pts[0];
        assert_eq!(p0.get("sim_threads").and_then(Json::as_u64), Some(1));
        assert!(p0.get("wall_ms").and_then(Json::as_f64).is_some());
        // The artifact round-trips through the parser it will be read with.
        let text = doc.to_string();
        let back = Json::parse(&text).expect("self-parse");
        assert_eq!(
            back.get("points").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );

        let table = scaling_text(&points);
        assert!(table.contains("speedup"), "{table}");
        assert_eq!(table.lines().count(), 3);
    }
}

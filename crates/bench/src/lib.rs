//! Shared harness for regenerating the paper's tables and figures.
//!
//! The flow mirrors §5: run each application on the machine emulator
//! (collecting its probe trace and verifying its numerical result), then
//! replay the trace under the three MLSim parameter files. Table 2 is the
//! speedup column pair, Table 3 the trace statistics, Figure 8 the
//! normalized time breakdown.

use apapps::{standard_suite, Scale, Workload};
use apobs::{Counters, CritPath, Timeline};
use aptrace::{AppStats, StatsRow};
use aputil::Json;
use mlsim::{
    fig8_rows, replay, replay_observed, speedup, DivergenceReport, Fig8Row, ModelParams,
    ReplayResult,
};

pub mod fault;
pub mod record;
pub mod report;
pub mod scaling;
pub mod serve_exec;
pub mod sweep;
pub use fault::{
    fault_sweep_text, run_fault_sweep, FaultOutcome, FaultRow, FaultSweepConfig, FAULT_APPS,
};
pub use record::{
    conformance, record_app, remodel_rows, remodel_text, seek_report, trace_stats, Conformance,
    RecordedTrace, ReplayMode, TraceStats,
};
pub use report::{
    bench_report, compare_reports, markdown_report, write_bench_report, CompareReport, Regression,
    BENCH_SCHEMA, BENCH_SCHEMA_VERSION,
};
pub use scaling::{
    run_scaling, scaling_report, scaling_text, ScalingConfig, ScalingPoint, SCALING_SCHEMA,
    SCALING_SCHEMA_VERSION,
};
pub use serve_exec::{job_exec_main, simulator_executor};
pub use sweep::{run_sweep, SweepConfig, SweepOutcome, SweepPoint, SWEEP_APPS};

/// Everything measured for one application.
pub struct ExperimentRow {
    /// Table row label (a Table-2 name, or a sweep point label like
    /// `"CG pe16 cf0.50"`).
    pub name: String,
    /// PE count.
    pub pe: u32,
    /// Table-3 statistics from the trace.
    pub stats: StatsRow,
    /// MLSim replay under the AP1000 parameters.
    pub ap1000: ReplayResult,
    /// MLSim replay under the AP1000★ (SuperSPARC + software handling)
    /// parameters.
    pub star: ReplayResult,
    /// MLSim replay under the AP1000+ parameters.
    pub plus: ReplayResult,
    /// Total simulated time reported by the machine emulator itself
    /// (hardware-level cross-check of the AP1000+ replay).
    pub emulator_total: aputil::SimTime,
    /// Unified hardware counters from the emulator run.
    pub counters: Counters,
    /// Emulator event timeline, labeled with the workload name (empty
    /// unless timeline recording was enabled, e.g. via `--trace-out`).
    pub timeline: Timeline,
    /// Critical path extracted from the emulator timeline (`None` unless
    /// timeline recording was enabled).
    pub critpath: Option<CritPath>,
    /// Emulator-vs-MLSim(AP1000+) per-op divergence (`None` unless
    /// timeline recording was enabled).
    pub divergence: Option<DivergenceReport>,
    /// Host wall-clock milliseconds spent on this experiment (emulate +
    /// replays). Filled by [`run_suite`], left `None` by the sweep
    /// driver. Informational only: it appears in `--json` output but is
    /// stripped from the versioned bench report so baselines and sweep
    /// outputs stay byte-reproducible; `repro compare` never reads it.
    pub host_ms: Option<f64>,
    /// Sampled telemetry from the emulator run (`None` unless metrics
    /// sampling was enabled, e.g. via `--metrics-out`). Exported through
    /// the separate `ap1000plus.metrics` artifact, never serialized into
    /// the bench report — its host-profiling block would break the
    /// report's byte-reproducibility.
    pub metrics: Option<Box<apmon::RunMetrics>>,
}

impl ExperimentRow {
    /// Table 2's two columns: speedup of the AP1000+ and of the AP1000★
    /// over the AP1000.
    pub fn table2(&self) -> (f64, f64) {
        (
            speedup(&self.ap1000, &self.plus),
            speedup(&self.ap1000, &self.star),
        )
    }

    /// Figure 8's two bars (AP1000+ = 100%, then AP1000★).
    pub fn fig8(&self) -> (Fig8Row, Fig8Row) {
        let rows = fig8_rows(&self.plus, &[&self.plus, &self.star]);
        (rows[0], rows[1])
    }

    /// Machine-readable form of everything in this row.
    pub fn to_json(&self) -> Json {
        self.to_json_with_host(true)
    }

    /// [`to_json`](Self::to_json) with `host_ms` optionally left out —
    /// the versioned bench report strips it so baselines and sweep
    /// outputs are byte-reproducible across machines and runs.
    pub(crate) fn to_json_with_host(&self, include_host: bool) -> Json {
        let (sp_plus, sp_star) = self.table2();
        let (f8_plus, f8_star) = self.fig8();
        let fig8_json = |r: &Fig8Row| {
            Json::obj(vec![
                ("exec", Json::F(r.exec)),
                ("rts", Json::F(r.rts)),
                ("overhead", Json::F(r.overhead)),
                ("idle", Json::F(r.idle)),
                ("total", Json::F(r.total)),
            ])
        };
        let replay_json = |r: &ReplayResult| {
            Json::obj(vec![
                ("model", Json::Str(r.model.clone())),
                ("total_ns", Json::U(r.total.as_nanos())),
            ])
        };
        let mut members = vec![
            ("app", Json::Str(self.name.clone())),
            ("pe", Json::U(self.pe as u64)),
            (
                "stats",
                Json::obj(vec![
                    ("send", Json::F(self.stats.send)),
                    ("gop", Json::F(self.stats.gop)),
                    ("vgop", Json::F(self.stats.vgop)),
                    ("sync", Json::F(self.stats.sync)),
                    ("put", Json::F(self.stats.put)),
                    ("puts", Json::F(self.stats.puts)),
                    ("get", Json::F(self.stats.get)),
                    ("gets", Json::F(self.stats.gets)),
                    ("msg_size", Json::F(self.stats.msg_size)),
                ]),
            ),
            ("speedup_plus", Json::F(sp_plus)),
            ("speedup_star", Json::F(sp_star)),
            ("fig8_plus", fig8_json(&f8_plus)),
            ("fig8_star", fig8_json(&f8_star)),
            (
                "models",
                Json::Arr(vec![
                    replay_json(&self.ap1000),
                    replay_json(&self.star),
                    replay_json(&self.plus),
                ]),
            ),
            ("emulator_total_ns", Json::U(self.emulator_total.as_nanos())),
            ("counters", self.counters.to_json()),
        ];
        if let Some(cp) = &self.critpath {
            members.push(("critical_path", cp.to_json()));
        }
        if let Some(d) = &self.divergence {
            members.push(("divergence", d.to_json()));
        }
        if include_host {
            if let Some(ms) = self.host_ms {
                members.push(("host_ms", Json::F(ms)));
            }
        }
        Json::obj(members)
    }
}

/// JSON array of [`ExperimentRow::to_json`] for a whole suite run.
pub fn suite_json(rows: &[ExperimentRow]) -> Json {
    Json::Arr(rows.iter().map(|r| r.to_json()).collect())
}

/// Runs one workload end-to-end (emulate → verify → replay×3).
///
/// # Panics
///
/// Panics if the workload fails to verify or its trace fails to replay —
/// both indicate bugs worth failing loudly on in a harness.
pub fn run_experiment(w: &dyn Workload) -> ExperimentRow {
    let report = w
        .run()
        .unwrap_or_else(|e| panic!("{} failed on the emulator: {e}", w.name()));
    let stats = AppStats::from_trace(&report.trace).to_row();
    let run = |m: ModelParams| {
        replay(&report.trace, &m)
            .unwrap_or_else(|e| panic!("{} failed replay under {}: {e}", w.name(), m.name))
    };
    let ap1000 = run(ModelParams::ap1000());
    let star = run(ModelParams::ap1000_star());
    // If the emulator recorded its timeline, have the AP1000+ replay record
    // one too so the run can be analyzed (critical path, divergence).
    let analyze = !report.timeline.events.is_empty();
    let plus = if analyze {
        replay_observed(&report.trace, &ModelParams::ap1000_plus(), true)
            .unwrap_or_else(|e| panic!("{} failed replay under ap1000+: {e}", w.name()))
    } else {
        run(ModelParams::ap1000_plus())
    };
    let mut timeline = report.timeline;
    timeline.source = w.name().to_string();
    let critpath = analyze.then(|| apobs::critical_path(&timeline));
    let divergence = analyze
        .then(|| mlsim::divergence(&timeline, &plus.timeline, &report.counters, &plus.counters));
    ExperimentRow {
        name: w.name().to_string(),
        pe: w.pe(),
        stats,
        ap1000,
        star,
        plus,
        emulator_total: report.total_time,
        counters: report.counters,
        timeline,
        critpath,
        divergence,
        host_ms: None,
        metrics: report.metrics,
    }
}

/// Runs the full suite at `scale`, fanning the workloads across host
/// threads (each simulation is fully independent). Rows come back in
/// Table-2 order regardless of completion order, and every simulated
/// number is identical to a serial run — only host wall-clock changes.
pub fn run_suite(scale: Scale) -> Vec<ExperimentRow> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let suite = standard_suite(scale);
    let n = suite.len();
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(n)
        .max(1);
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, ExperimentRow)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(w) = suite.get(i) else { break };
                        let t0 = std::time::Instant::now();
                        let mut row = run_experiment(w.as_ref());
                        row.host_ms = Some(t0.elapsed().as_secs_f64() * 1e3);
                        out.push((i, row));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("suite worker panicked"))
            .collect()
    });
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Renders Table 1 (AP1000+ specifications).
pub fn table1() -> String {
    let mut s = String::new();
    s.push_str("Table 1: AP1000+ specifications\n");
    s.push_str("--------------------------------------------------------\n");
    s.push_str("Processor               SuperSPARC (50 MHz)\n");
    s.push_str("Processor performance   50 MFLOPS\n");
    s.push_str("Memory per cell         16, 64 megabytes\n");
    s.push_str("Cache per cell          36 kilobytes, write-through\n");
    s.push_str("System configuration    4 - 1024 cells\n");
    s.push_str("System performance      0.2 - 51.2 GFLOPS\n");
    s.push_str("T-net                   25 MB/s/channel, 2-D torus\n");
    s.push_str("B-net                   50 MB/s broadcast\n");
    s.push_str("S-net                   hardware barrier tree\n");
    s
}

/// Renders Figure 6 (both MLSim parameter files).
pub fn fig6() -> String {
    format!(
        "{}\n{}\n{}",
        ModelParams::ap1000().to_figure6(),
        ModelParams::ap1000_star().to_figure6(),
        ModelParams::ap1000_plus().to_figure6()
    )
}

/// Renders Figure 7 (the PUT communication model): the overhead chains of
/// one PUT of `bytes` under both models.
pub fn fig7(bytes: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 7: PUT communication model ({bytes}-byte message)\n"
    ));
    for m in [ModelParams::ap1000(), ModelParams::ap1000_plus()] {
        let send = m.send_cpu_overhead(bytes);
        let net = m.network_prolog
            + m.network_delay * 4
            + m.network_msg_per_byte.saturating_mul(bytes + 32);
        let recv = m.recv_cpu_overhead(bytes);
        let hw_send = m.send_hw_latency(bytes);
        let hw_recv = m.recv_hw_latency(bytes);
        out.push_str(&format!(
            "  {:8}  send-CPU {:>10}   send-HW {:>10}   network(4 hops) {:>10}   \
             recv-CPU {:>10}   recv-HW {:>10}   end-to-end {:>10}\n",
            m.name,
            send.to_string(),
            hw_send.to_string(),
            net.to_string(),
            recv.to_string(),
            hw_recv.to_string(),
            (send + hw_send + net + recv + hw_recv).to_string(),
        ));
    }
    out
}

/// Renders Table 2 from experiment rows.
pub fn table2(rows: &[ExperimentRow]) -> String {
    let mut s = String::new();
    s.push_str("Table 2: Performance simulation: speedup compared to AP1000\n");
    s.push_str(&format!(
        "{:10} {:>4} {:>9} {:>9}\n",
        "App", "PE", "AP1000+", "AP1000*"
    ));
    for r in rows {
        let (plus, star) = r.table2();
        s.push_str(&format!(
            "{:10} {:>4} {:>9.2} {:>9.2}\n",
            r.name, r.pe, plus, star
        ));
    }
    s
}

/// Renders Table 3 from experiment rows.
pub fn table3(rows: &[ExperimentRow]) -> String {
    let mut s = String::new();
    s.push_str("Table 3: Application statistics (per PE)\n");
    s.push_str(&format!(
        "{:10} {:>4} {:>8} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8} {:>7} {:>9}\n",
        "App", "PE", "SEND", "Gop", "VGop", "Sync", "PUT", "PUTS", "GET", "GETS", "MsgBytes"
    ));
    for r in rows {
        let t = &r.stats;
        s.push_str(&format!(
            "{:10} {:>4} {:>8.1} {:>7.1} {:>7.1} {:>7.1} {:>8.1} {:>8.1} {:>8.1} {:>7.1} {:>9.1}\n",
            r.name, r.pe, t.send, t.gop, t.vgop, t.sync, t.put, t.puts, t.get, t.gets, t.msg_size
        ));
    }
    s
}

/// Renders Figure 8 from experiment rows.
pub fn fig8(rows: &[ExperimentRow]) -> String {
    let mut s = String::new();
    s.push_str("Figure 8: Effect of PUT/GET hardware support\n");
    s.push_str("(normalized to AP1000+ = 100; components are means over PEs)\n");
    s.push_str(&format!(
        "{:10} {:8} {:>7} {:>6} {:>9} {:>6} {:>7}\n",
        "App", "Model", "Exec", "RTS", "Overhead", "Idle", "Total"
    ));
    for r in rows {
        let (p, st) = r.fig8();
        for (label, row) in [("AP1000+", p), ("AP1000*", st)] {
            s.push_str(&format!(
                "{:10} {:8} {:>7.1} {:>6.1} {:>9.1} {:>6.1} {:>7.1}\n",
                r.name, label, row.exec, row.rts, row.overhead, row.idle, row.total
            ));
        }
    }
    s
}

/// Renders Figure 8 as horizontal ASCII stacked bars, one pair of bars
/// per application, built from [`mlsim::fig8_rows`] percentages. The
/// tallest bar spans the full width; everything else scales to it.
pub fn fig8_ascii(rows: &[ExperimentRow]) -> String {
    const WIDTH: f64 = 60.0;
    let mut s = String::new();
    s.push_str("Figure 8 (ASCII): normalized execution-time breakdown\n");
    s.push_str("legend: #=exec r=rts o=overhead .=idle  (AP1000+ = 100)\n");
    let tallest = rows
        .iter()
        .map(|r| {
            let (p, st) = r.fig8();
            p.stack().max(st.stack())
        })
        .fold(100.0_f64, f64::max);
    let scale = WIDTH / tallest;
    for r in rows {
        let (p, st) = r.fig8();
        for (label, row) in [("AP1000+", p), ("AP1000*", st)] {
            let mut bar = String::new();
            for (ch, val) in [
                ('#', row.exec),
                ('r', row.rts),
                ('o', row.overhead),
                ('.', row.idle),
            ] {
                let cols = (val * scale).round() as usize;
                bar.extend(std::iter::repeat_n(ch, cols));
            }
            s.push_str(&format!(
                "{:10} {:8} {:<62} {:>6.1}\n",
                r.name,
                label,
                bar,
                row.stack()
            ));
        }
    }
    s
}

/// Renders the emulator-vs-MLSim cross-check.
pub fn crosscheck(rows: &[ExperimentRow]) -> String {
    let mut s = String::new();
    s.push_str("Cross-check: machine emulator vs MLSim(AP1000+) total time\n");
    s.push_str(&format!(
        "{:10} {:>14} {:>14} {:>7}\n",
        "App", "Emulator", "MLSim", "ratio"
    ));
    for r in rows {
        let ratio = r.emulator_total.as_nanos() as f64 / r.plus.total.as_nanos().max(1) as f64;
        s.push_str(&format!(
            "{:10} {:>14} {:>14} {:>7.2}\n",
            r.name,
            r.emulator_total.to_string(),
            r.plus.total.to_string(),
            ratio
        ));
    }
    s
}

/// Runs the design-choice ablations called out in DESIGN.md §4 and
/// renders the results.
///
/// 1. **Ring-reduction streaming** (CG): §4.5's ring-buffer reduction can
///    store-and-forward the whole vector per hop (our conservative
///    default, matching Table 3's one SEND per hop) or stream it in
///    chunks ("the receiving cell executes the data of the ring buffer
///    directly"). Streaming is what recovers the paper's CG speedups.
/// 2. **Combined flag update vs separate flag message** (§1.2): sending
///    the completion flag as a second message doubles the message count
///    and delays completion detection.
/// 3. **T-net contention**: the pure-latency network model (what MLSim
///    uses) vs serializing each cell's injection/ejection channels vs a
///    full per-link wormhole model with head-of-line blocking.
pub fn ablations(scale: Scale) -> String {
    use apcore::{run_with, MachineConfig, VAddr};
    let mut s = String::new();

    // --- 1. CG ring streaming -----------------------------------------
    s.push_str("Ablation 1: CG vector-reduction ring — store-and-forward vs streamed\n");
    for streamed in [false, true] {
        let cg = apapps::cg::Cg {
            streamed_ring: streamed,
            ..apapps::cg::Cg::new(scale)
        };
        let report = cg.run().expect("CG failed");
        let plus = replay(&report.trace, &ModelParams::ap1000_plus()).expect("replay");
        let old = replay(&report.trace, &ModelParams::ap1000()).expect("replay");
        s.push_str(&format!(
            "  {:18} emulator {:>12}  AP1000+ {:>12}  speedup vs AP1000 {:>5.2}\n",
            if streamed {
                "streamed ring"
            } else {
                "store-and-forward"
            },
            report.total_time.to_string(),
            plus.total.to_string(),
            speedup(&old, &plus)
        ));
    }

    // --- 2. flag update combined with data vs separate ------------------
    s.push_str("\nAblation 2: flag update combined with data transfer vs separate flag message\n");
    let msgs = 32u64;
    let run_flags = |combined: bool| {
        let r = run_with(MachineConfig::new(2).with_trace(false), move |cell| {
            let data = cell.alloc_bytes(msgs * 1024);
            let token = cell.alloc::<f64>(1);
            let flag = cell.alloc_flag();
            cell.barrier();
            if cell.id() == 0 {
                for i in 0..msgs {
                    let slot = data + i * 1024;
                    if combined {
                        // §1.2: "flag updating should be combined with the
                        // completion of data transfer".
                        cell.put(1, slot, slot, 1024, VAddr::NULL, flag, false);
                    } else {
                        // Data first, then a separate flag message.
                        cell.put(1, slot, slot, 1024, VAddr::NULL, VAddr::NULL, false);
                        cell.put(1, token, token, 8, VAddr::NULL, flag, false);
                    }
                }
            } else {
                cell.wait_flag(flag, msgs as u32);
            }
            cell.barrier();
        })
        .expect("flag ablation failed");
        (r.total_time, r.tnet.messages)
    };
    let (t_comb, m_comb) = run_flags(true);
    let (t_sep, m_sep) = run_flags(false);
    s.push_str(&format!(
        "  combined : {:>12} ({m_comb} messages)\n  separate : {:>12} ({m_sep} messages, {:.2}x slower)\n",
        t_comb.to_string(),
        t_sep.to_string(),
        t_sep.as_nanos() as f64 / t_comb.as_nanos() as f64
    ));

    // --- 3. network contention model -----------------------------------
    s.push_str("\nAblation 3: T-net model — pure latency vs injection/ejection port contention\n");
    for contention in [
        apnet::Contention::None,
        apnet::Contention::Ports,
        apnet::Contention::Links,
    ] {
        let r = run_with(
            MachineConfig::new(8)
                .with_contention(contention)
                .with_trace(false),
            |cell| {
                // All-to-all burst: worst case for port serialization.
                let n = cell.ncells();
                let buf = cell.alloc_bytes(n as u64 * 4096);
                let flag = cell.alloc_flag();
                cell.barrier();
                for k in 1..n {
                    let dst = (cell.id() + k) % n;
                    let slot = buf + cell.id() as u64 * 4096;
                    cell.put(dst, slot, slot, 4096, VAddr::NULL, flag, false);
                }
                cell.wait_flag(flag, (n - 1) as u32);
                cell.barrier();
            },
        )
        .expect("contention ablation failed");
        s.push_str(&format!(
            "  {:?}: all-to-all of 4 KB completes at {}\n",
            contention, r.total_time
        ));
    }
    s
}

/// Parses `--scale test|paper` style args (default paper). An unknown
/// scale is a structured error naming the flag, not a panic — the CLIs
/// print it and exit with the usage status.
pub fn parse_scale(args: &[String]) -> Result<Scale, String> {
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("test") => Ok(Scale::Test),
            Some("paper") => Ok(Scale::Paper),
            Some(other) => Err(format!("--scale takes test|paper, got '{other}'")),
            None => Err("--scale takes test|paper, got nothing".to_string()),
        },
        None => Ok(Scale::Paper),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_renders_contain_key_facts() {
        assert!(table1().contains("50 MFLOPS"));
        assert!(fig6().contains("put_prolog_time"));
        let f7 = fig7(1024);
        assert!(f7.contains("AP1000+") && f7.contains("AP1000 "));
    }

    #[test]
    fn ep_experiment_shape() {
        let row = run_experiment(&apapps::ep::Ep::new(Scale::Test));
        let (plus, star) = row.table2();
        // No communication: both models speed up by the processor factor.
        assert!((plus - 8.0).abs() < 0.2, "EP AP1000+ speedup {plus}");
        assert!((star - 8.0).abs() < 0.2, "EP AP1000* speedup {star}");
    }

    #[test]
    fn fig8_ascii_bars_scale_with_totals() {
        let row = run_experiment(&apapps::ep::Ep::new(Scale::Test));
        let art = fig8_ascii(std::slice::from_ref(&row));
        assert!(art.contains("legend"));
        let bars: Vec<&str> = art.lines().skip(2).collect();
        assert_eq!(bars.len(), 2, "one AP1000+ and one AP1000* bar");
        // EP is compute-bound: the exec run dominates both bars.
        for bar in bars {
            let hashes = bar.matches('#').count();
            let others = bar.matches('o').count() + bar.matches('.').count();
            assert!(hashes > others, "EP bar should be mostly exec: {bar}");
        }
    }

    #[test]
    fn experiment_row_serializes_to_json() {
        let row = run_experiment(&apapps::ep::Ep::new(Scale::Test));
        let json = suite_json(std::slice::from_ref(&row)).to_string();
        let parsed = aputil::Json::parse(&json).expect("row JSON parses");
        let arr = parsed.as_arr().expect("array of rows");
        let first = &arr[0];
        assert_eq!(first.get("app").and_then(|j| j.as_str()), Some("EP"));
        assert!(first.get("speedup_plus").is_some());
        assert!(first.get("counters").is_some());
    }

    #[test]
    fn tomcatv_critical_path_covers_the_whole_run() {
        // Acceptance: with timelines on, the reported critical path's total
        // equals the run's simulated total time, and the bench report
        // carries critical-path + per-segment latency + Figure-8 data.
        apcore::set_timeline_default(true);
        let row = run_experiment(&apapps::tomcatv::Tomcatv::new(Scale::Test, true));
        let cp = row.critpath.as_ref().expect("critical path computed");
        assert_eq!(
            cp.total, row.emulator_total,
            "critical-path total must equal the emulator's simulated time"
        );
        assert!(!cp.steps.is_empty());
        let d = row.divergence.as_ref().expect("divergence computed");
        assert!(d.model_total.as_nanos() > 0);

        let doc = bench_report(std::slice::from_ref(&row), Scale::Test, Some("deadbeef"));
        let parsed = Json::parse(&doc.to_string()).expect("bench report parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(report::BENCH_SCHEMA)
        );
        assert_eq!(parsed.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("rev").and_then(Json::as_str), Some("deadbeef"));
        let app = &parsed.get("apps").and_then(Json::as_arr).unwrap()[0];
        assert!(app.get("fig8_plus").is_some());
        assert!(app.get("critical_path").is_some());
        assert!(app.get("divergence").is_some());
        let put = app
            .get("counters")
            .and_then(|c| c.get("put_latency"))
            .expect("per-segment put latency");
        let total_hist = put.get("total").expect("total segment");
        assert!(total_hist.get("p50_ns").is_some() && total_hist.get("p99_ns").is_some());
    }

    #[test]
    fn markdown_tables_are_gfm() {
        let row = run_experiment(&apapps::ep::Ep::new(Scale::Test));
        let md = markdown_report(std::slice::from_ref(&row), Scale::Test);
        assert!(md.contains("## Table 2"));
        assert!(md.contains("| App | PE | AP1000+ | AP1000* |"));
        assert!(md.contains("| EP |"));
        assert!(md.contains("| --- |"));
    }

    #[test]
    fn scale_parsing() {
        let args: Vec<String> = vec!["--scale".into(), "test".into()];
        assert_eq!(parse_scale(&args), Ok(Scale::Test));
        assert_eq!(parse_scale(&[]), Ok(Scale::Paper));
        let bad: Vec<String> = vec!["--scale".into(), "huge".into()];
        assert!(parse_scale(&bad).unwrap_err().contains("--scale"));
        let dangling: Vec<String> = vec!["--scale".into()];
        assert!(parse_scale(&dangling).is_err());
    }
}

//! Record/replay engine behind `repro record`, `repro replay`, and
//! `repro remodel`.
//!
//! **Record** runs a workload on the machine emulator with full event
//! tracing and writes one compact binary `.evtrace` file (format:
//! DESIGN.md §9): the merged event timeline, the probe-op trace MLSim
//! replays, sampled counter ticks when telemetry is on, and the injected
//! fault schedule when the run was faulted. Machines past 1024 cells
//! stream events straight to disk through [`aptrace::StreamWriter`]
//! instead of holding the timeline in memory.
//!
//! **Replay** re-executes the recorded workload — the emulator is
//! deterministic, so a healthy tree reproduces the recording event for
//! event — and gates the new run against the file. Strict mode fails on
//! the first mismatching event with a two-sided context window; lenient
//! mode only compares final simulated times. `--at` skips re-execution
//! entirely and reconstructs machine state (in-flight transfers, queue
//! depths, blocked cells) at a recorded sim-time: time-travel debugging
//! from the trace alone.
//!
//! **Remodel** replays the recorded traffic under scaled
//! [`ModelParams`] via [`mlsim::remodel`] — no emulator, seconds instead
//! of minutes — and emits a normal versioned `ap1000plus.bench` report.

use crate::sweep::build_workload;
use crate::ExperimentRow;
use apapps::Scale;
use apobs::{Bucket, Timeline, TimelineEvent, Unit};
use aptrace::{AppStats, CounterTicks, EvHeader, EvTrace, StreamWriter};
use aputil::{ApError, SimTime};
use mlsim::ModelParams;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Writes `contents` to `path` atomically (temp file + rename, via
/// [`aputil::write_atomic`]), wrapping failure as [`ApError::Io`] so the
/// message names the path (a full disk or a bad `--out` directory is
/// diagnosable without a backtrace). Atomicity matters because these are
/// baseline and report files CI diffs byte-for-byte: a crash mid-write
/// must leave the old bytes or nothing, never a truncated document.
pub fn write_file(path: &Path, contents: &[u8]) -> Result<(), ApError> {
    aputil::write_atomic(path, contents).map_err(|e| ApError::io(path.display().to_string(), e))
}

/// The scale label recorded in (and parsed back from) a trace header.
pub fn scale_label(scale: Scale) -> String {
    format!("{scale:?}").to_ascii_lowercase()
}

/// Inverse of [`scale_label`]; unknown labels error rather than guess.
pub fn parse_scale_label(label: &str) -> Result<Scale, String> {
    match label {
        "test" => Ok(Scale::Test),
        "paper" => Ok(Scale::Paper),
        other => Err(format!("unknown scale label '{other}' in trace header")),
    }
}

/// Sorts events into the canonical total order used for conformance:
/// the timeline sort key `(cell, unit, start, end)` extended to a total
/// order, so two identically-evented recordings compare equal no matter
/// what order their sections were written in (buffered recordings are
/// pre-sorted; streamed ones arrive in engine order).
pub fn canonical(mut events: Vec<TimelineEvent>) -> Vec<TimelineEvent> {
    events.sort_by_key(|e| {
        (
            e.cell,
            e.unit.index(),
            e.start,
            e.end(),
            e.name,
            e.bucket.index(),
            e.arg,
            e.tid,
        )
    });
    events
}

/// Flattens sampled telemetry into the delta-friendly column series the
/// counters section stores (one named series per gauge, one value per
/// tick, [`apmon::MetricsSample::COLUMNS`] order).
pub fn counter_ticks(m: &apmon::RunMetrics) -> CounterTicks {
    let s = &m.series.samples;
    let col = |f: &dyn Fn(&apmon::MetricsSample) -> u64| -> Vec<u64> { s.iter().map(f).collect() };
    CounterTicks {
        interval_ns: m.series.interval.as_nanos(),
        series: vec![
            ("t_ns".into(), col(&|x| x.t.as_nanos())),
            ("events".into(), col(&|x| x.events)),
            ("msgs".into(), col(&|x| x.msgs)),
            ("bytes".into(), col(&|x| x.bytes)),
            ("puts_inflight".into(), col(&|x| x.puts_inflight as u64)),
            ("gets_inflight".into(), col(&|x| x.gets_inflight as u64)),
            ("cells_blocked".into(), col(&|x| x.cells_blocked as u64)),
            ("barrier_waiting".into(), col(&|x| x.barrier_waiting as u64)),
            ("queue_depth".into(), col(&|x| x.queue_depth)),
            ("queue_depth_max".into(), col(&|x| x.queue_depth_max)),
            ("send_dma_busy".into(), col(&|x| x.send_dma_busy as u64)),
            ("recv_dma_busy".into(), col(&|x| x.recv_dma_busy as u64)),
            ("link_busy_ns".into(), col(&|x| x.link_busy_ns)),
            ("retries".into(), col(&|x| x.retries)),
            ("detours".into(), col(&|x| x.detours)),
        ],
    }
}

/// What one `repro record` run produced.
#[derive(Clone, Debug)]
pub struct RecordedTrace {
    /// Workload name as recorded in the header.
    pub app: String,
    /// Where the trace landed.
    pub path: PathBuf,
    /// Events encoded.
    pub events: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Final simulated time of the recorded run.
    pub total: SimTime,
}

fn evtrace_err(e: aptrace::EvError) -> ApError {
    match e {
        aptrace::EvError::Io { path, detail } => ApError::Io { path, detail },
        other => ApError::InvalidArg(other.to_string()),
    }
}

fn finalize_writer<W: Write>(
    sw: &mut StreamWriter<W>,
    report: &apcore::RunReport<()>,
    fault: Option<&apcore::FaultSpec>,
) -> Result<u64, ApError> {
    if report.trace.total_ops() > 0 {
        sw.append_ops(&report.trace);
    }
    if let Some(m) = &report.metrics {
        sw.append_counters(&counter_ticks(m));
    }
    if let Some(spec) = fault {
        sw.append_fault_ron(&apfault::to_ron(spec));
    }
    let events = sw.events_written();
    sw.finish(report.total_time.as_nanos())
        .map_err(evtrace_err)?;
    Ok(events)
}

/// Records one workload run into `out`.
///
/// Machines past 1024 cells (or any size with `stream` set) write
/// through the process-global streaming sink — events go to disk as they
/// happen and never accumulate in memory, which is the only way machines
/// past the in-memory timeline refusal can record. Streaming installs a
/// process-wide sink, so streamed recordings must not run concurrently
/// with other machine-building work in the same process; the `repro
/// record` driver serializes them. Buffered recordings (the default at
/// small scale) write the post-run *sorted* timeline, making the file
/// byte-reproducible for a given workload regardless of host threads.
pub fn record_app(
    app: &str,
    scale: Scale,
    size: Option<u32>,
    fault: Option<&apcore::FaultSpec>,
    out: &Path,
    stream: bool,
) -> Result<RecordedTrace, ApError> {
    let w = build_workload(app, scale, size).map_err(ApError::InvalidArg)?;
    apcore::set_timeline_default(true);
    let header = EvHeader::new(w.pe(), w.name(), &scale_label(scale));
    let path_str = out.display().to_string();
    let file = File::create(out).map_err(|e| ApError::io(path_str.clone(), e))?;
    let bufw = BufWriter::new(file);
    let run = || match fault {
        Some(spec) => w.run_faulted(spec),
        None => w.run(),
    };
    let events;
    let total;
    if stream || w.pe() > 1024 {
        let writer = Arc::new(Mutex::new(StreamWriter::new(bufw, &path_str, &header)));
        apcore::set_evtrace_sink(Some(writer.clone() as apobs::SharedSink));
        let result = run();
        apcore::set_evtrace_sink(None);
        let report = result?;
        let mut sw = writer.lock().expect("stream writer poisoned");
        events = finalize_writer(&mut sw, &report, fault)?;
        total = report.total_time;
    } else {
        let report = run()?;
        let mut sw = StreamWriter::new(bufw, &path_str, &header);
        sw.write_events("emulator", &report.timeline.events);
        events = finalize_writer(&mut sw, &report, fault)?;
        total = report.total_time;
    }
    let bytes = std::fs::metadata(out)
        .map_err(|e| ApError::io(path_str, e))?
        .len();
    Ok(RecordedTrace {
        app: w.name().to_string(),
        path: out.to_path_buf(),
        events,
        bytes,
        total,
    })
}

// ---------------------------------------------------------------------------
// Replay conformance.
// ---------------------------------------------------------------------------

/// How hard `repro replay` gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// Event-for-event identity; the first mismatch fails with a
    /// two-sided context window.
    Strict,
    /// Final-sim-time identity only; event counts are reported as a
    /// divergence summary but do not fail the gate.
    Lenient,
}

/// Outcome of gating a re-executed run against a recording.
#[derive(Clone, Debug)]
pub struct Conformance {
    /// Workload that was replayed.
    pub app: String,
    /// Mode the gate ran in.
    pub mode: ReplayMode,
    /// Events in the recording / in the fresh run.
    pub recorded_events: usize,
    /// Events the re-executed run produced.
    pub replayed_events: usize,
    /// Final simulated time the recording declares.
    pub recorded_total_ns: u64,
    /// Final simulated time of the fresh run.
    pub replayed_total_ns: u64,
    /// Rendered first-mismatch context window (strict mode only).
    pub mismatch: Option<String>,
}

impl Conformance {
    /// True when the gate passes under its mode.
    pub fn passed(&self) -> bool {
        match self.mode {
            ReplayMode::Strict => {
                self.mismatch.is_none() && self.recorded_total_ns == self.replayed_total_ns
            }
            ReplayMode::Lenient => self.recorded_total_ns == self.replayed_total_ns,
        }
    }

    /// Human rendering: verdict line, totals, divergence summary, and
    /// the mismatch window when there is one.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} replay of {}: {}\n  recorded: {} events, final time {} ns\n  replayed: {} events, final time {} ns\n",
            match self.mode {
                ReplayMode::Strict => "strict",
                ReplayMode::Lenient => "lenient",
            },
            self.app,
            if self.passed() { "PASS" } else { "FAIL" },
            self.recorded_events,
            self.recorded_total_ns,
            self.replayed_events,
            self.replayed_total_ns,
        );
        if self.recorded_total_ns != self.replayed_total_ns {
            let d = self.replayed_total_ns as i128 - self.recorded_total_ns as i128;
            s.push_str(&format!("  divergence: final time {d:+} ns\n"));
        }
        if let Some(m) = &self.mismatch {
            s.push_str(m);
        }
        s
    }
}

/// One line of the mismatch context window.
pub fn fmt_event(e: &TimelineEvent) -> String {
    let dur = match e.dur {
        Some(d) => format!("+{}", d.as_nanos()),
        None => "instant".to_string(),
    };
    format!(
        "cell {:>4} {:?}/{:?} {} @{} {} arg={} tid={}",
        e.cell,
        e.unit,
        e.bucket,
        e.name,
        e.start.as_nanos(),
        dur,
        e.arg,
        e.tid
    )
}

/// Renders the two-sided context window around the first mismatch: three
/// events of context either side, `>` marking the diverging index, and
/// an explicit end marker when one stream is shorter.
fn render_mismatch(rec: &[TimelineEvent], rep: &[TimelineEvent], i: usize) -> String {
    let lo = i.saturating_sub(3);
    let hi = i + 4;
    let mut s = format!(
        "  first mismatch at event {i} ({} recorded / {} replayed):\n",
        rec.len(),
        rep.len()
    );
    for (label, side) in [("recorded", rec), ("replayed", rep)] {
        s.push_str(&format!("  {label}:\n"));
        for (k, e) in side.iter().enumerate().take(hi.min(side.len())).skip(lo) {
            let mark = if k == i { '>' } else { ' ' };
            s.push_str(&format!("  {mark} {k:>8}  {}\n", fmt_event(e)));
        }
        if side.len() <= i {
            s.push_str(&format!("  > {:>8}  (stream ends here)\n", side.len()));
        }
    }
    s
}

/// Re-executes the workload a trace records and gates the fresh run
/// against it. Faulted recordings re-run under the recorded schedule.
///
/// # Errors
///
/// Errors when the header names an unknown app or scale, the fault RON
/// fails to parse, or the re-executed run itself fails.
pub fn conformance(doc: &EvTrace, mode: ReplayMode) -> Result<Conformance, ApError> {
    let scale = parse_scale_label(&doc.header.scale).map_err(ApError::InvalidArg)?;
    let w = build_workload(&doc.header.app, scale, Some(doc.header.ncells))
        .map_err(ApError::InvalidArg)?;
    apcore::set_timeline_default(true);
    let fault = doc
        .fault_ron
        .as_deref()
        .map(apfault::from_ron)
        .transpose()
        .map_err(|e| ApError::InvalidArg(format!("recorded fault schedule: {e}")))?;
    let report = match &fault {
        Some(spec) => w.run_faulted(spec)?,
        None => w.run()?,
    };
    let rec = canonical(doc.all_events());
    let rep = canonical(report.timeline.events.clone());
    let mismatch = match mode {
        ReplayMode::Lenient => None,
        ReplayMode::Strict => {
            let i = rec
                .iter()
                .zip(rep.iter())
                .position(|(a, b)| a != b)
                .or((rec.len() != rep.len()).then(|| rec.len().min(rep.len())));
            i.map(|i| render_mismatch(&rec, &rep, i))
        }
    };
    Ok(Conformance {
        app: doc.header.app.clone(),
        mode,
        recorded_events: rec.len(),
        replayed_events: rep.len(),
        recorded_total_ns: doc.summary.total_ns,
        replayed_total_ns: report.total_time.as_nanos(),
        mismatch,
    })
}

// ---------------------------------------------------------------------------
// Time-travel seek.
// ---------------------------------------------------------------------------

/// Reconstructs machine state at sim-time `at_ns` from the recorded
/// events alone (no re-execution): in-flight DMA/network transfers
/// (duration spans covering the instant), per-cell MSC+ queue depths
/// (the last queue-unit event at or before it carries the depth in
/// `arg`), and blocked cells (idle spans covering it, barrier waiters
/// called out). `cell` narrows the dump to one cell.
pub fn seek_report(doc: &EvTrace, at_ns: u64, cell: Option<u32>) -> String {
    const MAX_LINES: usize = 64;
    let t = SimTime::from_nanos(at_ns);
    let events = canonical(doc.all_events());
    let want = |c: u32| cell.is_none_or(|only| c == only);
    let covers = |e: &TimelineEvent| e.dur.is_some() && e.start <= t && t < e.end();

    let mut s = format!(
        "state at t={at_ns} ns (app {}, {} cells, run ends at {} ns)\n",
        doc.header.app, doc.header.ncells, doc.summary.total_ns
    );
    if at_ns > doc.summary.total_ns {
        s.push_str("  (seek time is past the end of the recording)\n");
    }

    let mut inflight = Vec::new();
    let mut blocked = Vec::new();
    let mut barrier_waiters = Vec::new();
    // Last queue-unit event at or before t per cell: canonical order is
    // (cell, unit, start, …), so a plain scan keeps the latest one.
    let mut queue_depth: Vec<(u32, u64)> = Vec::new();
    for e in &events {
        if !want(e.cell) {
            continue;
        }
        if e.unit == Unit::Queue && e.start <= t {
            match queue_depth.last_mut() {
                Some((c, d)) if *c == e.cell => *d = e.arg,
                _ => queue_depth.push((e.cell, e.arg)),
            }
        }
        if !covers(e) {
            continue;
        }
        match e.unit {
            Unit::SendDma | Unit::RecvDma | Unit::Net => inflight.push(e),
            Unit::Cpu if e.bucket == Bucket::Idle => {
                if e.name == "barrier" {
                    barrier_waiters.push(e.cell);
                }
                blocked.push(e);
            }
            _ => {}
        }
    }

    s.push_str(&format!("  in-flight transfers ({}):\n", inflight.len()));
    for e in inflight.iter().take(MAX_LINES) {
        let span = e.end().as_nanos() - e.start.as_nanos();
        let pct = ((at_ns - e.start.as_nanos()) * 100)
            .checked_div(span)
            .unwrap_or(100);
        s.push_str(&format!("    {} ({pct}% elapsed)\n", fmt_event(e)));
    }
    if inflight.len() > MAX_LINES {
        s.push_str(&format!("    … and {} more\n", inflight.len() - MAX_LINES));
    }

    let nonzero: Vec<&(u32, u64)> = queue_depth.iter().filter(|(_, d)| *d > 0).collect();
    s.push_str(&format!("  queue depths (nonzero: {}):\n", nonzero.len()));
    for (c, d) in nonzero.iter().take(MAX_LINES) {
        s.push_str(&format!("    cell {c:>4}: {d}\n"));
    }

    s.push_str(&format!(
        "  blocked cells ({}, {} in barrier):\n",
        blocked.len(),
        barrier_waiters.len()
    ));
    for e in blocked.iter().take(MAX_LINES) {
        s.push_str(&format!(
            "    cell {:>4} idle in {} since {} ns\n",
            e.cell,
            e.name,
            e.start.as_nanos()
        ));
    }
    if blocked.len() > MAX_LINES {
        s.push_str(&format!("    … and {} more\n", blocked.len() - MAX_LINES));
    }
    s
}

// ---------------------------------------------------------------------------
// Trace-driven re-modeling.
// ---------------------------------------------------------------------------

/// Replays a recording's traffic under each `computation_factor`
/// multiple of all three paper models and shapes the results as
/// [`ExperimentRow`]s, so [`crate::bench_report`] emits the same
/// versioned `ap1000plus.bench` document a live run would — without
/// touching the emulator.
///
/// # Errors
///
/// Errors when the trace has no ops section or a replay rejects it.
pub fn remodel_rows(doc: &EvTrace, factors: &[f64]) -> Result<Vec<ExperimentRow>, String> {
    let trace = doc
        .ops
        .as_ref()
        .ok_or("trace has no ops section (recorded without probe tracing?)")?;
    let stats = AppStats::from_trace(trace).to_row();
    let replay_grid = |base: ModelParams| {
        mlsim::remodel(trace, &mlsim::factor_grid(&base, factors))
            .map_err(|e| format!("remodel under {}: {e}", base.name))
    };
    let ap1000 = replay_grid(ModelParams::ap1000())?;
    let star = replay_grid(ModelParams::ap1000_star())?;
    let plus = replay_grid(ModelParams::ap1000_plus())?;
    let mut rows = Vec::new();
    for (i, &f) in factors.iter().enumerate() {
        rows.push(ExperimentRow {
            name: format!("{} cf{f:.2}", doc.header.app),
            pe: doc.header.ncells,
            stats,
            ap1000: ap1000[i].1.clone(),
            star: star[i].1.clone(),
            plus: plus[i].1.clone(),
            emulator_total: SimTime::from_nanos(doc.summary.total_ns),
            counters: apobs::Counters::new(),
            timeline: Timeline::new("remodel"),
            critpath: None,
            divergence: None,
            host_ms: None,
            metrics: None,
        });
    }
    Ok(rows)
}

/// Plain-text remodel summary: one line per factor point with all three
/// model totals and the Table-2 speedup pair.
pub fn remodel_text(rows: &[ExperimentRow]) -> String {
    let mut s = String::new();
    s.push_str("Trace-driven remodel (recorded traffic, scaled models)\n");
    s.push_str(&format!(
        "{:20} {:>4} {:>14} {:>14} {:>14} {:>9} {:>9}\n",
        "Point", "PE", "AP1000", "AP1000*", "AP1000+", "spd+", "spd*"
    ));
    for r in rows {
        let (plus, star) = r.table2();
        s.push_str(&format!(
            "{:20} {:>4} {:>14} {:>14} {:>14} {:>9.2} {:>9.2}\n",
            r.name,
            r.pe,
            r.ap1000.total.to_string(),
            r.star.total.to_string(),
            r.plus.total.to_string(),
            plus,
            star
        ));
    }
    s
}

// ---------------------------------------------------------------------------
// Inspection (`tracecat`).
// ---------------------------------------------------------------------------

/// Size accounting for `tracecat stats`: the binary recording vs the
/// same data serialized the pre-binary way (Chrome-trace JSON for the
/// timeline, the versioned JSON op codec for the probe trace).
#[derive(Clone, Copy, Debug)]
pub struct TraceStats {
    /// Bytes of the binary `.evtrace` file.
    pub binary_bytes: u64,
    /// Bytes of the equivalent Chrome-trace JSON timeline.
    pub json_timeline_bytes: u64,
    /// Bytes of the equivalent JSON op-trace document (0 if no ops).
    pub json_ops_bytes: u64,
    /// Events across all streams.
    pub events: u64,
}

impl TraceStats {
    /// Total JSON-equivalent size.
    pub fn json_bytes(&self) -> u64 {
        self.json_timeline_bytes + self.json_ops_bytes
    }

    /// Compression ratio (JSON bytes per binary byte).
    pub fn ratio(&self) -> f64 {
        self.json_bytes() as f64 / self.binary_bytes.max(1) as f64
    }
}

struct CountWriter(u64);

impl Write for CountWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Measures a decoded trace against its JSON-equivalent serializations
/// without materializing them (`binary_bytes` comes from the file).
pub fn trace_stats(doc: &EvTrace, binary_bytes: u64) -> TraceStats {
    let tl = Timeline::from_events(doc.header.app.clone(), doc.all_events());
    let mut cw = CountWriter(0);
    apobs::stream_chrome_trace(&mut cw, &[&tl], &[]).expect("counting writer cannot fail");
    let json_ops_bytes = doc
        .ops
        .as_ref()
        .map_or(0, |t| t.to_json_string().len() as u64);
    TraceStats {
        binary_bytes,
        json_timeline_bytes: cw.0,
        json_ops_bytes,
        events: doc.streams.iter().map(|s| s.events.len() as u64).sum(),
    }
}

/// Renders a trace's header, section inventory, and trailer for
/// `tracecat header`.
pub fn header_text(doc: &EvTrace) -> String {
    let mut s = format!(
        "ap1000plus.evtrace v{}\n  app: {}\n  scale: {}\n  cells: {}\n",
        aptrace::evtrace::VERSION,
        doc.header.app,
        doc.header.scale,
        doc.header.ncells
    );
    for st in &doc.streams {
        s.push_str(&format!(
            "  events[{}]: {} events\n",
            st.label,
            st.events.len()
        ));
    }
    match &doc.ops {
        Some(t) => s.push_str(&format!(
            "  ops: {} cells, {} ops\n",
            t.ncells(),
            t.total_ops()
        )),
        None => s.push_str("  ops: absent\n"),
    }
    match &doc.counters {
        Some(c) => s.push_str(&format!(
            "  counters: {} series x {} ticks every {} ns\n",
            c.series.len(),
            c.series.first().map_or(0, |(_, v)| v.len()),
            c.interval_ns
        )),
        None => s.push_str("  counters: absent\n"),
    }
    match &doc.fault_ron {
        Some(r) => s.push_str(&format!("  fault schedule: {} bytes of RON\n", r.len())),
        None => s.push_str("  fault schedule: absent\n"),
    }
    s.push_str(&format!(
        "  summary: {} events, final time {} ns\n",
        doc.summary.events, doc.summary.total_ns
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("apbench-record-{}-{name}", std::process::id()))
    }

    #[test]
    fn record_then_strict_replay_passes_and_mutation_fails() {
        let path = tmp("ep.evtrace");
        let rec = record_app("EP", Scale::Test, None, None, &path, false).expect("record EP");
        assert!(rec.events > 0 && rec.bytes > 0);
        let mut doc = EvTrace::read_file(&path).expect("decode recording");
        assert_eq!(doc.header.app, "EP");
        assert_eq!(doc.summary.total_ns, rec.total.as_nanos());

        let ok = conformance(&doc, ReplayMode::Strict).expect("replay EP");
        assert!(ok.passed(), "{}", ok.render());
        assert!(ok.mismatch.is_none());

        // A single mutated event must fail strict with a context window
        // but leave the lenient (sim-time) gate green.
        let k = doc.streams[0].events.len() / 2;
        doc.streams[0].events[k].arg ^= 1;
        let bad = conformance(&doc, ReplayMode::Strict).expect("replay mutated");
        assert!(!bad.passed());
        let window = bad.mismatch.as_deref().expect("context window");
        assert!(
            window.contains("first mismatch") && window.contains('>'),
            "{window}"
        );
        assert!(bad.render().contains("FAIL"));
        let lenient = conformance(&doc, ReplayMode::Lenient).expect("lenient replay");
        assert!(lenient.passed(), "{}", lenient.render());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn seek_reconstructs_midrun_state() {
        let path = tmp("cg-seek.evtrace");
        let rec = record_app("CG", Scale::Test, None, None, &path, false).expect("record CG");
        let doc = EvTrace::read_file(&path).expect("decode");
        let dump = seek_report(&doc, rec.total.as_nanos() / 2, None);
        assert!(dump.contains("in-flight transfers"), "{dump}");
        assert!(dump.contains("queue depths"), "{dump}");
        assert!(dump.contains("blocked cells"), "{dump}");
        // Narrowing to one cell never widens the dump.
        let narrowed = seek_report(&doc, rec.total.as_nanos() / 2, Some(0));
        assert!(narrowed.len() <= dump.len());
        let _ = std::fs::remove_file(&path);
    }

    /// The indexed seek path (partial decode through the v2 footer) and
    /// the full linear decode reconstruct identical state at every probe
    /// time, streamed or buffered.
    #[test]
    fn indexed_seek_matches_full_decode() {
        for stream in [false, true] {
            let path = tmp(if stream {
                "cg-idx-s.evtrace"
            } else {
                "cg-idx-b.evtrace"
            });
            let rec = record_app("CG", Scale::Test, None, None, &path, stream).expect("record CG");
            let full = EvTrace::read_file(&path).expect("full decode");
            let total = rec.total.as_nanos();
            for at in [0, total / 7, total / 2, total - 1, total + 5] {
                let fast = EvTrace::read_file_at(&path, at).expect("seek decode");
                assert_eq!(
                    seek_report(&fast, at, None),
                    seek_report(&full, at, None),
                    "seek at {at} ns diverged (streamed: {stream})"
                );
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn remodel_rows_scale_with_factors_and_serialize() {
        let path = tmp("ep-remodel.evtrace");
        record_app("EP", Scale::Test, None, None, &path, false).expect("record EP");
        let doc = EvTrace::read_file(&path).expect("decode");
        let rows = remodel_rows(&doc, &[0.5, 1.0]).expect("remodel");
        assert_eq!(rows.len(), 2);
        // EP is compute-bound: halving the computation factor halves the
        // modeled total.
        let half = rows[0].plus.total.as_nanos() as f64;
        let full = rows[1].plus.total.as_nanos() as f64;
        assert!((half * 2.0 - full).abs() / full < 0.01, "{half} vs {full}");
        let doc = crate::bench_report(&rows, Scale::Test, Some("remodel"));
        let parsed = aputil::Json::parse(&doc.to_string()).expect("report parses");
        assert_eq!(
            parsed.get("schema").and_then(aputil::Json::as_str),
            Some(crate::BENCH_SCHEMA)
        );
        assert!(remodel_text(&rows).contains("cf0.50"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_show_binary_wins_over_json() {
        let path = tmp("ep-stats.evtrace");
        record_app("EP", Scale::Test, None, None, &path, false).expect("record EP");
        let doc = EvTrace::read_file(&path).expect("decode");
        let st = trace_stats(&doc, std::fs::metadata(&path).unwrap().len());
        assert!(st.events > 0);
        assert!(
            st.ratio() >= 5.0,
            "binary must be >=5x smaller than JSON, got {:.1}x ({} vs {} bytes)",
            st.ratio(),
            st.json_bytes(),
            st.binary_bytes
        );
        assert!(header_text(&doc).contains("ap1000plus.evtrace v2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_file_errors_name_the_path() {
        let err = write_file(Path::new("/nonexistent-dir/x/y.json"), b"hi").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("/nonexistent-dir/x/y.json") && msg.contains("i/o error"),
            "{msg}"
        );
    }

    #[test]
    fn scale_labels_round_trip() {
        for s in [Scale::Test, Scale::Paper] {
            assert_eq!(parse_scale_label(&scale_label(s)).unwrap(), s);
        }
        assert!(parse_scale_label("huge").is_err());
    }
}

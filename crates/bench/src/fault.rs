//! `repro fault` — application runs under deterministic fault injection.
//!
//! Runs each selected workload through [`apapps::Workload::run_faulted`]
//! with one shared [`FaultSpec`], fanning the apps across host threads
//! exactly like [`crate::run_sweep`], and renders one merged text report
//! **deterministically in app order** — byte-identical for any thread
//! count, which is what the CI `fault-smoke` job asserts. A grid point
//! whose schedule is unsurvivable (or whose workload has no fault
//! support) becomes a structured failure line, never a hang.

use crate::sweep::build_workload;
use apapps::Scale;
use apcore::FaultSpec;
use aputil::{FaultReport, SimTime};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applications with fault-recovery support, in Table-2 order. CG — the
/// paper's communication worst case — is the reference workload.
pub const FAULT_APPS: &[&str] = &["CG"];

/// What to run and under which schedule.
#[derive(Clone, Debug)]
pub struct FaultSweepConfig {
    /// Problem-size preset each workload is built at.
    pub scale: Scale,
    /// Applications to run (names from [`crate::SWEEP_APPS`]).
    pub apps: Vec<String>,
    /// The fault schedule every app runs under.
    pub spec: FaultSpec,
    /// Host worker threads (clamped to `[1, app count]`).
    pub threads: usize,
}

/// One surviving app run.
pub struct FaultRow {
    /// Application name.
    pub app: String,
    /// PE count it ran at.
    pub pe: u32,
    /// Total simulated time of the faulted run.
    pub total: SimTime,
    /// The recovery protocol's report.
    pub report: FaultReport,
}

/// A finished fault sweep: rows and failures, both in app order.
pub struct FaultOutcome {
    /// One row per app that survived with a verified result.
    pub rows: Vec<FaultRow>,
    /// `"<app>: <error>"` per app that aborted (structured fault error,
    /// verification failure, or missing fault support).
    pub failures: Vec<String>,
}

fn run_app(scale: Scale, app: &str, spec: &FaultSpec) -> Result<FaultRow, String> {
    let w = build_workload(app, scale, None)?;
    let report = catch_unwind(AssertUnwindSafe(|| w.run_faulted(spec)))
        .map_err(|e| {
            let msg = e
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| e.downcast_ref::<&str>().copied())
                .unwrap_or("panic (non-string payload)");
            format!("verification panicked: {msg}")
        })?
        .map_err(|e| e.to_string())?;
    let fault = report
        .fault
        .ok_or_else(|| "faulted run carried no fault report".to_string())?;
    Ok(FaultRow {
        app: app.to_string(),
        pe: w.pe(),
        total: report.total_time,
        report: fault,
    })
}

/// Fans `cfg.apps` across `cfg.threads` workers. Simulated results are
/// independent of the thread count: [`fault_sweep_text`] over the outcome
/// serializes to the same bytes for any `threads`.
pub fn run_fault_sweep(cfg: &FaultSweepConfig) -> FaultOutcome {
    let workers = cfg.threads.clamp(1, cfg.apps.len().max(1));
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, Result<FaultRow, String>)> = std::thread::scope(|s| {
        let apps = &cfg.apps;
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(app) = apps.get(i) else { break };
                        let r =
                            run_app(cfg.scale, app, &cfg.spec).map_err(|e| format!("{app}: {e}"));
                        out.push((i, r));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fault sweep worker panicked"))
            .collect()
    });
    collected.sort_by_key(|&(i, _)| i);
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (_, r) in collected {
        match r {
            Ok(row) => rows.push(row),
            Err(f) => failures.push(f),
        }
    }
    FaultOutcome { rows, failures }
}

/// Canonical text rendering of a fault sweep: the schedule (in RON), then
/// one section per surviving app with its simulated total and the full
/// [`FaultReport::render`], then the failure lines. Every byte is a
/// function of (config, simulated events) only.
pub fn fault_sweep_text(cfg: &FaultSweepConfig, out: &FaultOutcome) -> String {
    let mut s = String::new();
    s.push_str("ap1000plus fault sweep v1\n");
    s.push_str(&format!("scale: {:?}\n", cfg.scale));
    s.push_str("spec:\n");
    for line in apfault::to_ron(&cfg.spec).lines() {
        s.push_str(&format!("    {line}\n"));
    }
    for row in &out.rows {
        s.push_str(&format!(
            "\n== {} (pe {}) ==\ntotal: {}\n{}\n",
            row.app,
            row.pe,
            row.total,
            row.report.render()
        ));
    }
    if !out.failures.is_empty() {
        s.push_str("\nfailures:\n");
        for f in &out.failures {
            s.push_str(&format!("  {f}\n"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcore::{CellId, FaultEvent, FaultKind, RecoveryParams};

    fn survivable_cfg(threads: usize) -> FaultSweepConfig {
        FaultSweepConfig {
            scale: Scale::Test,
            apps: vec!["CG".into()],
            spec: FaultSpec {
                seed: Some(42),
                recovery: RecoveryParams::default(),
                events: vec![
                    FaultEvent {
                        from: SimTime::ZERO,
                        until: SimTime::from_nanos(5_000_000),
                        kind: FaultKind::LinkDown {
                            from: CellId::new(1),
                            to: CellId::new(0),
                        },
                    },
                    FaultEvent {
                        from: SimTime::ZERO,
                        until: SimTime::from_nanos(1_000_000_000),
                        kind: FaultKind::Corrupt {
                            src: CellId::new(0),
                            dst: CellId::new(1),
                            count: 1,
                        },
                    },
                ],
            },
            threads,
        }
    }

    #[test]
    fn fault_sweep_text_is_byte_identical_across_thread_counts() {
        let cfg1 = survivable_cfg(1);
        let cfg2 = survivable_cfg(2);
        let a = fault_sweep_text(&cfg1, &run_fault_sweep(&cfg1));
        let b = fault_sweep_text(&cfg2, &run_fault_sweep(&cfg2));
        assert_eq!(a, b);
        assert!(a.contains("== CG"), "{a}");
        assert!(a.contains("retries"), "{a}");
    }

    #[test]
    fn unsupported_app_is_a_reported_failure_not_a_crash() {
        let cfg = FaultSweepConfig {
            scale: Scale::Test,
            apps: vec!["EP".into()],
            spec: FaultSpec::quiet(),
            threads: 1,
        };
        let out = run_fault_sweep(&cfg);
        assert!(out.rows.is_empty());
        assert_eq!(out.failures.len(), 1);
        assert!(
            out.failures[0].contains("not wired up"),
            "{:?}",
            out.failures
        );
        assert!(fault_sweep_text(&cfg, &out).contains("failures:"));
    }
}
